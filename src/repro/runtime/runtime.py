"""The sharded streaming ingestion runtime.

Turns the StoryPivot library into a long-running service.  Snippets are
routed by a stable hash of their *source id* to shard workers; because
story identification is strictly per-source, shards run identification
with zero coordination, and only the (much rarer) cross-source alignment
cycle needs a global view.  The cross-shard cycle is stop-the-world over
the shard locks: with ``realign_every`` accepted snippets between cycles,
workers spend a fraction of their time paused and the live alignment view
stays fresh.

Two executors, both ``concurrent.futures``-based:

* ``thread`` (default) — shard loops on a ``ThreadPoolExecutor``, with the
  full feature set: bounded queues with backpressure, supervision with
  capped-backoff restarts, WAL + checkpoint durability, periodic
  realignment.  Under CPython's GIL this prioritizes isolation and
  liveness over parallel speed-up.
* ``process`` — one single-worker ``ProcessPoolExecutor`` per shard, each
  child owning its shard's pivot; snippets travel in batches.  This is
  the throughput configuration: identification runs genuinely in
  parallel, scaling near-linearly with shards until alignment dominates.

Determinism: each source's snippets flow through exactly one shard in
offer order, so the per-source story sets are a pure function of the
per-source input sequences — identical to a single-threaded
:class:`~repro.core.streaming.StreamProcessor` run, whatever the shard
count or executor.  Cross-source alignment is recomputed at flush over
the merged state.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.alignment import Alignment, StoryAligner
from repro.core.config import StoryPivotConfig
from repro.core.persistence import dumps_state, load_state
from repro.core.pipeline import PivotResult, StoryPivot
from repro.errors import ConfigurationError, DuplicateSnippetError
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet
from repro.obs.decisions import DecisionLog
from repro.obs.trace import NULL_TRACER, Envelope, Span, current_span
from repro.resilience.dlq import DeadLetterQueue
from repro.resilience.policies import RetryPolicy
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.queues import BACKPRESSURE_POLICIES, BoundedQueue, QueueClosed
from repro.runtime.shard import DEFAULT_SHARD_RETRY, POISON_POLICIES, STOP, Shard
from repro.runtime.supervisor import BackoffPolicy, Supervisor
from repro.runtime.wal import CheckpointStore

EXECUTORS = ("thread", "process")

#: DLQ error prefix marking records turned away at admission (never
#: integrated), as opposed to snippets quarantined by a failing shard.
#: Their stored snippet is an audit shell of the raw payload, so health
#: reporting and DLQ replay must not treat them as poisoned-but-valid.
REJECTED_PREFIX = "rejected: "


@dataclass(frozen=True)
class RuntimeOptions:
    """Knobs of the ingestion runtime (pipeline knobs live in
    :class:`~repro.core.config.StoryPivotConfig`)."""

    num_shards: int = 4
    executor: str = "thread"
    queue_capacity: int = 2048
    policy: str = "block"
    sample_every: int = 10
    put_timeout: Optional[float] = None
    realign_every: int = 0  # 0 disables the periodic cross-shard cycle
    dedup_capacity: int = 100_000
    wal_dir: Optional[str] = None
    checkpoint_every: int = 0  # accepted snippets per shard; 0 = manual only
    wal_keep_segments: int = 6  # sealed WAL segments retained per shard
    fsync: bool = False
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    batch_size: int = 64  # process executor: snippets per IPC batch
    max_outstanding: int = 4  # process executor: in-flight batches per shard
    poison_policy: str = "quarantine"  # or "supervise": escalate snippet errors
    retry: RetryPolicy = DEFAULT_SHARD_RETRY  # per-snippet retry schedule

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if self.poison_policy not in POISON_POLICIES:
            raise ConfigurationError(
                f"unknown poison policy {self.poison_policy!r}; "
                f"choose from {POISON_POLICIES}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; choose from {EXECUTORS}"
            )
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; "
                f"choose from {BACKPRESSURE_POLICIES}"
            )
        if self.realign_every < 0 or self.checkpoint_every < 0:
            raise ConfigurationError("cadences must be non-negative")
        if self.executor == "process" and self.wal_dir is not None:
            raise ConfigurationError(
                "WAL/checkpointing requires the thread executor; the "
                "process executor is the throughput configuration"
            )
        if self.executor == "process" and self.policy != "block":
            raise ConfigurationError(
                "the process executor only supports the block policy"
            )


def shard_of(source_id: str, num_shards: int) -> int:
    """Stable source→shard routing (crc32 — not the salted ``hash()``).

    Stability across processes matters: WAL and checkpoint files are per
    shard, so a resumed runtime must route every source exactly as the
    killed one did.
    """
    return zlib.crc32(source_id.encode("utf-8")) % num_shards


# -- process-executor child-side state (one pivot per worker process) -------

_PROCESS_PIVOT: Optional[StoryPivot] = None


def _process_shard_init(config_values: Dict[str, object]) -> None:
    global _PROCESS_PIVOT
    _PROCESS_PIVOT = StoryPivot(StoryPivotConfig(**config_values))


def _process_shard_ingest(snippets: List[Snippet]):
    accepted = duplicates = 0
    started = time.perf_counter()
    for snippet in snippets:
        try:
            _PROCESS_PIVOT.add_snippet(snippet)
            accepted += 1
        except DuplicateSnippetError:
            duplicates += 1
    return accepted, duplicates, time.perf_counter() - started


def _process_shard_dump() -> str:
    return dumps_state(_PROCESS_PIVOT)


class ShardedRuntime:
    """Long-running sharded ingestion over StoryPivot."""

    #: replication role reported in /healthz; followers (which duck-type
    #: this runtime's read surface) report "follower"
    role = "leader"

    def __init__(
        self,
        config: Optional[StoryPivotConfig] = None,
        options: Optional[RuntimeOptions] = None,
        tracer=None,
        decisions=None,
        **overrides,
    ) -> None:
        self.config = config if config is not None else StoryPivotConfig()
        options = options if options is not None else RuntimeOptions()
        if overrides:
            options = replace(options, **overrides)
        self.options = options
        self.metrics = MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled and self.tracer.metrics is None:
            self.tracer.metrics = self.metrics
        # the decision log is always on: it is how `storypivot explain`
        # answers "why does this story look like this", tracing or not
        if decisions is None:
            decisions_path = (
                os.path.join(options.wal_dir, "decisions.jsonl")
                if options.wal_dir is not None
                else None
            )
            decisions = DecisionLog(path=decisions_path)
        self.decisions = decisions
        self._recent_traces: Deque[str] = deque(maxlen=32)
        self._aligner = StoryAligner(self.config)
        self._started = False
        self._stopped = False
        self._lock = threading.Lock()
        self._accepted_total = 0
        self._live_alignment: Optional[Alignment] = None
        self._result: Optional[PivotResult] = None
        self._flushed_at = -1
        # pre-register the metrics operators expect in every export
        self._arrived = self.metrics.counter("ingest.arrived")
        self._dropped = self.metrics.counter("ingest.dropped")
        self.metrics.counter("ingest.accepted")
        self.metrics.counter("ingest.duplicates")
        self.metrics.counter("ingest.rejected")
        self.metrics.histogram("ingest.offer_latency_seconds")
        self.metrics.histogram("realign.duration_seconds")
        self.metrics.histogram("flush.duration_seconds")
        self.metrics.histogram("checkpoint.duration_seconds")
        self.metrics.counter("realign.count")
        self.metrics.counter("checkpoint.count")
        self.metrics.counter("checkpoint.bytes")
        self.metrics.counter("shard.retries")
        self.metrics.counter("shard.retry_successes")
        self.metrics.counter("dlq.records")
        self.metrics.counter("wal.torn_records")
        self.metrics.counter("supervisor.crash_loops")
        self.metrics.gauge("shards.dead")
        self.metrics.gauge("shards.failed")
        for shard_id in range(options.num_shards):
            self.metrics.gauge("queue.depth", shard=shard_id)
        # populated by start()
        self._shards: List[Shard] = []
        self._store: Optional[CheckpointStore] = None
        self._restored: List[Optional[StoryPivot]] = [None] * options.num_shards
        self._executor = None
        self._supervisor: Optional[Supervisor] = None
        self._worker_stop = threading.Event()
        self._realign_event = threading.Event()
        self._realign_stop = threading.Event()
        self._realign_thread: Optional[threading.Thread] = None
        self._proc_executors: List[ProcessPoolExecutor] = []
        self._buffers: List[List[Snippet]] = []
        self._outstanding: List[List[Future]] = []
        self._batch_traces: List[List[str]] = [
            [] for _ in range(options.num_shards)
        ]

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def resume(
        cls,
        wal_dir: str,
        config: Optional[StoryPivotConfig] = None,
        options: Optional[RuntimeOptions] = None,
        tracer=None,
        decisions=None,
        **overrides,
    ) -> "ShardedRuntime":
        """Recover a runtime from its WAL directory.

        The manifest pins shard count and pipeline config (routing and
        identification must match the killed run); each shard loads its
        last checkpoint and replays its WAL tail through ordinary
        identification, so the recovered state is exactly the accepted
        prefix of the killed run.
        """
        store = CheckpointStore(wal_dir)
        manifest = store.read_manifest()
        if manifest is None:
            raise ConfigurationError(f"no runtime manifest in {wal_dir!r}")
        num_shards = int(manifest["num_shards"])
        if config is None:
            config = StoryPivotConfig(**manifest["config"])
        options = options if options is not None else RuntimeOptions()
        overrides.setdefault("wal_dir", wal_dir)
        overrides["num_shards"] = num_shards
        runtime = cls(
            config, options, tracer=tracer, decisions=decisions, **overrides
        )
        for shard_id in range(num_shards):
            pivot, _ = store.recover_shard(
                shard_id, config, metrics=runtime.metrics
            )
            runtime._restored[shard_id] = pivot
        return runtime.start()

    def start(self) -> "ShardedRuntime":
        if self._started:
            return self
        self._started = True
        if self.options.executor == "process":
            self._start_process_shards()
        else:
            self._start_thread_shards()
        return self

    def _start_thread_shards(self) -> None:
        options = self.options
        if options.wal_dir is not None:
            self._store = CheckpointStore(options.wal_dir)
            self._store.write_manifest(options.num_shards, self.config)
        for shard_id in range(options.num_shards):
            queue = BoundedQueue(
                capacity=options.queue_capacity,
                policy=options.policy,
                sample_every=options.sample_every,
                put_timeout=options.put_timeout,
            )
            wal = (
                self._store.wal(
                    shard_id, fsync=options.fsync,
                    keep_segments=options.wal_keep_segments,
                )
                if self._store is not None
                else None
            )
            # quarantine persists next to the WAL when one is configured;
            # otherwise it is memory-only but still audited via metrics
            dlq = (
                self._store.dlq(shard_id)
                if self._store is not None
                else DeadLetterQueue()
            )
            shard = Shard(
                shard_id,
                self.config,
                queue,
                self.metrics,
                wal=wal,
                dedup_capacity=options.dedup_capacity,
                checkpoint_every=options.checkpoint_every,
                checkpoint_fn=self._checkpoint_shard,
                on_accepted=self._on_accepted,
                poison_policy=options.poison_policy,
                retry=options.retry,
                dlq=dlq,
                tracer=self.tracer,
                decisions=self.decisions,
            )
            restored = self._restored[shard_id]
            if restored is not None:
                shard.restore(restored)
                with self._lock:
                    self._accepted_total += restored.num_snippets
            self._shards.append(shard)
        self._executor = ThreadPoolExecutor(
            max_workers=options.num_shards,
            thread_name_prefix="storypivot-shard",
        )
        self._supervisor = Supervisor(
            self._executor, self.metrics, options.backoff
        )
        self._supervisor.start(self._shards, self._worker_stop)
        if options.realign_every:
            self._realign_thread = threading.Thread(
                target=self._realign_loop,
                name="storypivot-realigner",
                daemon=True,
            )
            self._realign_thread.start()

    def _start_process_shards(self) -> None:
        from repro.core.persistence import config_record

        values = config_record(self.config)
        for shard_id in range(self.options.num_shards):
            self._proc_executors.append(
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_process_shard_init,
                    initargs=(values,),
                )
            )
            self._buffers.append([])
            self._outstanding.append([])
        # worker processes spawn lazily on first submit; force them up now
        # so start() returning means the runtime is actually ready
        for executor in self._proc_executors:
            executor.submit(_process_shard_ingest, []).result()

    def __enter__(self) -> "ShardedRuntime":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------

    def offer(self, snippet: Snippet) -> bool:
        """Route one snippet to its shard; True if it was enqueued.

        False means the backpressure policy shed it (or its shard is
        dead).  Acceptance vs duplicate is decided asynchronously by the
        shard worker and visible in the metrics/stats.

        With tracing enabled the snippet travels wrapped in an
        :class:`~repro.obs.trace.Envelope` carrying its root span; the
        shard worker ends the root when processing completes.  An
        ambient ``ingest`` root (from :meth:`consume`) is reused,
        otherwise a fresh one is started here.
        """
        if not self._started:
            self.start()
        self._arrived.inc()
        shard_id = shard_of(snippet.source_id, self.options.num_shards)
        if not self.tracer.enabled:
            if self.options.executor == "process":
                return self._offer_process(shard_id, snippet)
            return self._offer_plain(shard_id, snippet)
        root = current_span()
        if root is None:
            root = self.tracer.start_trace("ingest")
        if root.sampled:  # identity attrs are export-only; skip off-sample
            root.set(snippet=snippet.snippet_id, source=snippet.source_id)
        return self._offer_traced(shard_id, snippet, root)

    def _offer_plain(self, shard_id: int, snippet: Snippet) -> bool:
        shard = self._shards[shard_id]
        if shard.dead:
            self._dropped.inc()
            return False
        try:
            enqueued = shard.queue.put(snippet)
        except QueueClosed:
            self._dropped.inc()
            return False
        if not enqueued:
            self._dropped.inc()
        return enqueued

    def _offer_traced(self, shard_id: int, snippet: Snippet, root: Span) -> bool:
        if self.options.executor == "process":
            # Spans cannot cross pickling into the worker process: the
            # ingest trace ends at the batch boundary and the batch span
            # links back to it by trace id (graceful degradation).
            if root.sampled:
                self._batch_traces[shard_id].append(root.trace_id)
                self._recent_traces.append(root.trace_id)
            ok = self._offer_process(shard_id, snippet)
            root.set(shard=shard_id, outcome="batched")
            root.end()
            return ok
        shard = self._shards[shard_id]
        root.set(shard=shard_id)

        def drop(reason: str) -> bool:
            self._dropped.inc()
            root.add_event("dropped", reason=reason)
            root.set(outcome="dropped")
            root.end()
            return False

        if shard.dead:
            return drop("shard_dead")
        envelope = Envelope(snippet, root)
        try:
            enqueued = shard.queue.put(envelope)
        except QueueClosed:
            return drop("queue_closed")
        if not enqueued:
            return drop("backpressure")
        if root.sampled:
            self._recent_traces.append(root.trace_id)
        return True

    def reject(self, snippet: Snippet, reason: str, detail: str = "") -> None:
        """Quarantine an inadmissible input without offering it to a shard.

        The admission layer (:mod:`repro.connect`) calls this for raw
        records that failed normalization: they never count as arrived —
        they were turned away at the door — but they must not vanish
        either, so each lands in its routed shard's dead-letter queue
        with the rejection reason, and ``ingest.rejected`` carries the
        extra term of the accounting invariant
        (``arrived = accepted + dup + dropped + quarantined + rejected``).
        """
        if not self._started:
            self.start()
        self.metrics.counter("ingest.rejected").inc()
        if self.options.executor != "thread" or not self._shards:
            return
        shard_id = shard_of(snippet.source_id, self.options.num_shards)
        shard = self._shards[shard_id]
        if shard.dlq is not None:
            error = REJECTED_PREFIX + reason + (f" ({detail})" if detail else "")
            shard.dlq.append(
                snippet, error=error, attempts=0, shard_id=shard_id
            )

    def consume(self, snippets: Iterable[Snippet]) -> "ShardedRuntime":
        if not self.tracer.enabled:
            for snippet in snippets:
                self.offer(snippet)
            return self
        # traced feed: each pulled snippet gets its own ingest root so a
        # sampled trace shows feed.pull -> queue.wait -> shard.integrate
        iterator = iter(snippets)
        while True:
            root = self.tracer.start_trace("ingest")
            with self.tracer.attach(root):
                # sp-lint: disable=SP301 -- pull ends on every branch below; `with` cannot express the discard path
                pull = self.tracer.span("feed.pull")
                try:
                    snippet = next(iterator)
                except StopIteration:
                    pull.discard()
                    root.discard()
                    break
                except BaseException as exc:
                    pull.record_error(exc)
                    pull.end()
                    root.record_error(exc)
                    root.end()
                    raise
                pull.end()
                self.offer(snippet)
        return self

    def consume_corpus(self, corpus: Corpus) -> "ShardedRuntime":
        """Replay a corpus in publication order (the live delivery order)."""
        return self.consume(corpus.snippets_by_publication())

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait until every enqueued snippet has been processed."""
        if not self._started:
            return
        if self.options.executor == "process":
            self._drain_process()
            return
        for shard in self._shards:
            if shard.dead:
                shard.queue.purge()
                continue
            shard.queue.join(timeout)

    # -- process-executor internals ----------------------------------------

    def _offer_process(self, shard_id: int, snippet: Snippet) -> bool:
        buffer = self._buffers[shard_id]
        buffer.append(snippet)
        if len(buffer) >= self.options.batch_size:
            self._submit_batch(shard_id)
        return True

    def _submit_batch(self, shard_id: int) -> None:
        buffer = self._buffers[shard_id]
        if not buffer:
            return
        outstanding = self._outstanding[shard_id]
        while len(outstanding) >= self.options.max_outstanding:
            self._reap(shard_id, outstanding.pop(0))  # block: backpressure
        batch = list(buffer)
        buffer.clear()
        future = self._proc_executors[shard_id].submit(
            _process_shard_ingest, batch
        )
        future._storypivot_batch = len(batch)
        if self.tracer.enabled:
            # new root on this side of the process boundary; the ingest
            # traces it continues are attached as links
            links = self._batch_traces[shard_id][:64]
            self._batch_traces[shard_id].clear()
            span = self.tracer.start_trace(
                "shard.batch", shard=shard_id, batch=len(batch)
            )
            if links:
                span.set(links=links)
            future._storypivot_span = span
        outstanding.append(future)
        self.metrics.gauge("queue.depth", shard=shard_id).set(
            len(outstanding)
        )

    def _reap(self, shard_id: int, future: Future) -> None:
        accepted, duplicates, elapsed = future.result()
        batch = getattr(future, "_storypivot_batch", accepted + duplicates)
        span = getattr(future, "_storypivot_span", None)
        if span is not None:
            span.set(accepted=accepted, duplicates=duplicates)
            span.end()
        self.metrics.counter("ingest.accepted").inc(accepted)
        self.metrics.counter("ingest.duplicates").inc(duplicates)
        if batch:
            self.metrics.histogram("ingest.offer_latency_seconds").observe(
                elapsed / batch
            )
        with self._lock:
            self._accepted_total += accepted

    def _drain_process(self) -> None:
        for shard_id in range(self.options.num_shards):
            self._submit_batch(shard_id)
            outstanding = self._outstanding[shard_id]
            while outstanding:
                self._reap(shard_id, outstanding.pop(0))
            self.metrics.gauge("queue.depth", shard=shard_id).set(0)

    # -- cross-shard alignment cycle ---------------------------------------

    def _on_accepted(self) -> None:
        realign_every = self.options.realign_every
        with self._lock:
            self._accepted_total += 1
            trigger = bool(
                realign_every and self._accepted_total % realign_every == 0
            )
        if trigger:
            self._realign_event.set()

    def _realign_loop(self) -> None:
        while not self._realign_stop.is_set():
            if not self._realign_event.wait(timeout=0.1):
                continue
            self._realign_event.clear()
            if self._realign_stop.is_set():
                return
            self.realign()

    def realign(self) -> Alignment:
        """Stop-the-world cross-shard alignment over the live story sets.

        Pauses every shard (lock acquisition in shard order), aligns the
        union of their story sets, and publishes the result as the live
        view.  Identification state is *not* mutated — refinement feedback
        runs only at :meth:`flush`, keeping per-source stories a pure
        function of the input sequences (which is what makes kill/resume
        recovery exact).
        """
        if self.options.executor == "process":
            raise ConfigurationError(
                "periodic realignment requires the thread executor"
            )
        self.start()
        with self.tracer.span("realign", shards=len(self._shards)) as span:
            with ExitStack() as stack:
                for shard in self._shards:
                    stack.enter_context(shard.lock)
                with self.metrics.timer("realign.duration_seconds"):
                    story_sets = {}
                    for shard in self._shards:
                        story_sets.update(shard.pivot.story_sets())
                    alignment = self._aligner.align(story_sets)
            span.set(stories=sum(len(s) for s in story_sets.values()),
                     integrated=len(alignment))
        self._live_alignment = alignment
        self.metrics.counter("realign.count").inc()
        return alignment

    @property
    def live_alignment(self) -> Optional[Alignment]:
        """Latest periodic cross-shard alignment (None before the first)."""
        return self._live_alignment

    # -- views -------------------------------------------------------------

    def merged_pivot(self) -> StoryPivot:
        """A standalone pivot holding every shard's stories.

        Stories are *rebuilt* (sharing the immutable snippets) rather than
        referenced, so downstream refinement cannot mutate shard state.
        """
        self.start()
        with self.tracer.span("shards.merge"):
            if self.options.executor == "process":
                return self._merged_pivot_process()
            with ExitStack() as stack:
                for shard in self._shards:
                    stack.enter_context(shard.lock)
                story_sets = {}
                for shard in self._shards:
                    story_sets.update(shard.pivot.story_sets())
                merged = StoryPivot(self.config)
                for source_id in sorted(story_sets):
                    for story in story_sets[source_id]:
                        merged.restore_story(
                            source_id, story.story_id, story.snippets()
                        )
            return merged

    def _merged_pivot_process(self) -> StoryPivot:
        self._drain_process()
        merged = StoryPivot(self.config)
        for shard_id in range(self.options.num_shards):
            text = self._proc_executors[shard_id].submit(
                _process_shard_dump
            ).result()
            shard_pivot = load_state(text)
            for source_id in sorted(shard_pivot.source_ids):
                story_set = shard_pivot.story_sets()[source_id]
                for story in story_set:
                    merged.restore_story(
                        source_id, story.story_id, story.snippets()
                    )
        return merged

    def flush(self) -> PivotResult:
        """Drain, merge all shards, and run alignment (+refinement)."""
        self.drain()
        with self.tracer.span("flush"), \
                self.metrics.timer("flush.duration_seconds"):
            merged = self.merged_pivot()
            # refinement decisions on the merged view belong to the same
            # lineage as the shard-side identification decisions
            merged.refiner.decisions = self.decisions
            result = merged.finish()
            self.decisions.note_alignment(result.alignment)
        self._live_alignment = result.alignment
        self._result = result
        with self._lock:
            self._flushed_at = self._accepted_total
        self.metrics.counter("realign.count").inc()
        self.metrics.histogram("realign.duration_seconds").observe(
            result.timings.get("alignment", 0.0)
        )
        return result

    def result(self) -> PivotResult:
        """Last flushed view, refreshed if arrivals happened since."""
        with self._lock:
            stale = (
                self._result is None
                or self._flushed_at != self._accepted_total
            )
        if stale:
            return self.flush()
        return self._result

    def dumps_state(self) -> str:
        """Canonical checkpoint text of the merged identification state.

        Uses canonical (content-derived) story ids, so two equivalent
        runtimes — e.g. a killed-and-resumed run and an uninterrupted one
        — serialize byte-identically.
        """
        return dumps_state(self.merged_pivot(), canonical_ids=True)

    # -- durability --------------------------------------------------------

    def _checkpoint_shard(self, shard: Shard) -> int:
        if self._store is None:
            raise ConfigurationError("runtime has no wal_dir configured")
        with self.tracer.span("checkpoint", shard=shard.shard_id) as span, \
                shard.lock:
            with self.metrics.timer("checkpoint.duration_seconds"):
                # sp-lint: disable=SP201 -- checkpoint must capture the shard frozen; holding its lock across the save is the consistency contract
                size = self._store.save(shard.shard_id, shard.pivot)
                if shard.wal is not None:
                    # rotate, not truncate: the sealed segment is the
                    # replication shipping unit; sequence numbers keep
                    # counting so follower cursors stay meaningful
                    shard.wal.rotate()
            span.set(bytes=size)
        self.metrics.counter("checkpoint.count").inc()
        self.metrics.counter("checkpoint.bytes").inc(size)
        self.metrics.gauge("checkpoint.last_bytes").set(size)
        return size

    def checkpoint(self) -> int:
        """Compact every shard's WAL into a full checkpoint; total bytes."""
        self.start()
        if self.options.executor == "process":
            raise ConfigurationError(
                "checkpointing requires the thread executor"
            )
        return sum(self._checkpoint_shard(shard) for shard in self._shards)

    # -- shutdown ----------------------------------------------------------

    def stop(
        self, drain: bool = True, checkpoint: Optional[bool] = None
    ) -> None:
        """Stop workers and release resources.

        ``drain=False`` abandons queued (not yet processed) snippets —
        the kill path; accepted work is still recoverable from the WAL.
        ``checkpoint`` defaults to True when a WAL directory is
        configured and the runtime drained cleanly.
        """
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        if self.options.executor == "process":
            if drain:
                self._drain_process()
            for executor in self._proc_executors:
                executor.shutdown(wait=True)
            return
        if drain:
            self.drain()
        if checkpoint is None:
            checkpoint = drain and self._store is not None
        if checkpoint and self._store is not None:
            for shard in self._shards:
                self._checkpoint_shard(shard)
        self._realign_stop.set()
        self._realign_event.set()
        self._worker_stop.set()
        for shard in self._shards:
            shard.queue.close()
        if self._supervisor is not None:
            self._supervisor.stop()
        if self._realign_thread is not None:
            self._realign_thread.join(timeout=5.0)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for shard in self._shards:
            if shard.wal is not None:
                shard.wal.close()
            if shard.dlq is not None:
                shard.dlq.close()
        self.decisions.close()

    def kill(self) -> None:
        """Abrupt shutdown: no drain, no checkpoint (crash simulation)."""
        self.stop(drain=False, checkpoint=False)

    # -- dead-letter replay ------------------------------------------------

    def replay_dlq(self) -> Dict[str, int]:
        """Re-offer every quarantined snippet through normal ingestion.

        The DLQ files are drained first; snippets that fail again are
        re-quarantined by their shard workers, so replay converges and
        is safe to repeat.  Records rejected at admission stay behind:
        their stored snippet is an audit shell of raw input that never
        passed normalization, so re-offering it would inject garbage.
        Returns counts: ``{"replayed": offered, "requeued": still
        quarantined after, "held": rejected records left in place}``.
        """
        self.start()
        if self.options.executor == "process":
            raise ConfigurationError(
                "DLQ replay requires the thread executor"
            )
        letters = []
        held = 0
        for shard in self._shards:
            if shard.dlq is None:
                continue
            for letter in shard.dlq.take_all():
                if letter.error.startswith(REJECTED_PREFIX):
                    shard.dlq.append(
                        letter.snippet, error=letter.error,
                        attempts=letter.attempts, shard_id=letter.shard_id,
                    )
                    held += 1
                else:
                    letters.append(letter)
        for letter in letters:
            self.offer(letter.snippet)
        self.drain()
        requeued = sum(
            len(shard.dlq) for shard in self._shards if shard.dlq is not None
        ) - held
        return {"replayed": len(letters), "requeued": requeued, "held": held}

    # -- health ------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Component health: ``ok`` / ``degraded`` / ``unhealthy``.

        Degraded means the runtime is still making progress with reduced
        capacity (some shards parked/dead, or snippets in quarantine);
        unhealthy means no shard is processing at all.
        """
        if self.options.executor == "process" or not self._shards:
            status = "ok" if self._started and not self._stopped else "unhealthy"
            return {"status": status, "executor": self.options.executor}
        alive = [s for s in self._shards if not s.dead]
        failed = [s.shard_id for s in self._shards if s.failed]
        dead = [s.shard_id for s in self._shards if s.dead and not s.failed]
        # the DLQ holds two populations: snippets a shard failed to
        # integrate (quarantined — the runtime is losing capacity) and
        # records turned away at admission (rejected — the feed is
        # hostile, the runtime is fine); only the former degrades health
        quarantined = 0
        rejected = 0
        for s in self._shards:
            if s.dlq is not None:
                for letter in s.dlq.records():
                    if letter.error.startswith(REJECTED_PREFIX):
                        rejected += 1
                    else:
                        quarantined += 1
        if not alive or self._stopped:
            status = "unhealthy"
        elif failed or dead or quarantined:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "shards": len(self._shards),
            "shards_alive": len(alive),
            "shards_failed": failed,
            "shards_dead": dead,
            "quarantined": quarantined,
            "rejected": rejected,
            "queue_depth": sum(len(s.queue) for s in self._shards),
        }

    # -- replication (leader side) -----------------------------------------

    def shard_wal(self, shard_id: int):
        """The live :class:`~repro.runtime.wal.ShardWal` of one shard.

        Raises when the runtime has no WAL configured — replication
        ships WAL segments, so a WAL-less runtime cannot lead.
        """
        if self._store is None or not self._shards:
            raise ConfigurationError(
                "replication requires a thread-executor runtime with "
                "wal_dir configured"
            )
        return self._shards[shard_id].wal

    def shard_snapshot(self, shard_id: int) -> "Tuple[str, int]":
        """(serialized shard state, WAL position it covers) — atomic.

        Taken under the shard lock, so the text and the position always
        agree: a follower that loads the text and tails records from the
        position materializes exactly the leader's state.
        """
        shard = self._shards[shard_id]
        wal = self.shard_wal(shard_id)
        with shard.lock:
            text = dumps_state(shard.pivot)
            position = wal.position
        return text, position

    def wal_positions(self) -> List[int]:
        """Per-shard cumulative WAL positions (the replication cursors)."""
        return [
            self.shard_wal(shard_id).position
            for shard_id in range(self.options.num_shards)
        ]

    # -- introspection -----------------------------------------------------

    @property
    def accepted(self) -> int:
        with self._lock:
            return self._accepted_total

    def recent_traces(self) -> List[str]:
        """Trace ids of recently sampled ingests (view-refresh links)."""
        return list(self._recent_traces)

    def stats(self) -> Dict[str, int]:
        """Operational counters (queue drops, dedup hits, realigns...)."""
        snap = self.metrics.snapshot()

        def value(name: str) -> int:
            return int(snap.get(name, {}).get("value", 0))

        return {
            "arrived": value("ingest.arrived"),
            "accepted": value("ingest.accepted"),
            "duplicates": value("ingest.duplicates"),
            "dropped": value("ingest.dropped"),
            "realignments": value("realign.count"),
            "checkpoints": value("checkpoint.count"),
            "restarts": value("supervisor.restarts"),
            "failures": value("shard.failures"),
            "retries": value("shard.retries"),
            "quarantined": value("dlq.records"),
            "rejected": value("ingest.rejected"),
            "torn_wal_records": value("wal.torn_records"),
            "crash_loops": value("supervisor.crash_loops"),
        }

    def metrics_json(self, indent: int = 2) -> str:
        return self.metrics.to_json(indent=indent)
