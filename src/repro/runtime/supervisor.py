"""Worker supervision: restart crashed shard loops with capped backoff.

A long-running ingest must survive a worker dying on unexpected input.
The supervisor watches every shard-loop future; when one crashes it
resubmits the loop after an exponential backoff (``base * factor^n``,
capped at ``max_delay``).  Two terminal outcomes, kept distinct because
they mean different things to an operator:

* **crash-looping** — the *same* exception ``crash_loop_threshold``
  times in a row.  Restarting cannot help (the input or code is
  deterministically broken), so the shard is parked as ``failed``
  immediately instead of grinding through the rest of the restart
  budget at max backoff.  Counted in ``supervisor.crash_loops`` and the
  ``shards.failed`` gauge.
* **dead** — more than ``max_restarts`` consecutive crashes of varying
  shape (flaky infrastructure, not one poison cause).

Either way the shard's queue is purged (items counted as dropped) and
closed so producers and the drain barrier never hang on it.  A
successful spell of processing resets the crash streak.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import (
    CancelledError,
    Executor,
    Future,
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.runtime.metrics import MetricsRegistry
from repro.runtime.shard import Shard, ShardCrashed

logger = logging.getLogger("repro.runtime.supervisor")


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff between restarts of one shard."""

    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    max_restarts: int = 5
    #: identical consecutive exceptions before parking the shard as failed
    crash_loop_threshold: int = 3

    def delay(self, restarts: int) -> float:
        return min(self.base_delay * (self.factor ** restarts), self.max_delay)


def _crash_signature(exc: BaseException) -> str:
    """A stable identity for 'the same crash': type + message of the cause."""
    if isinstance(exc, ShardCrashed):
        exc = exc.cause
    return f"{type(exc).__name__}: {exc}"


class Supervisor:
    """Keeps shard worker loops alive on a shared executor."""

    def __init__(
        self,
        executor: Executor,
        metrics: MetricsRegistry,
        policy: Optional[BackoffPolicy] = None,
    ) -> None:
        self._executor = executor
        self._policy = policy if policy is not None else BackoffPolicy()
        self._restart_counter = metrics.counter("supervisor.restarts")
        self._crash_loop_counter = metrics.counter("supervisor.crash_loops")
        self._dead_gauge = metrics.gauge("shards.dead")
        self._failed_gauge = metrics.gauge("shards.failed")
        self._stop_event = threading.Event()
        self._wake = threading.Event()
        self._lock = threading.Lock()
        self._crashes: Dict[int, int] = {}
        self._last_signature: Dict[int, str] = {}
        self._signature_streak: Dict[int, int] = {}
        self._futures: Dict[int, Future] = {}
        self._shards: Dict[int, Shard] = {}
        self._worker_stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, shards: List[Shard], worker_stop: threading.Event) -> None:
        self._worker_stop = worker_stop
        for shard in shards:
            self._shards[shard.shard_id] = shard
            self._crashes[shard.shard_id] = 0
            self._submit(shard)
        self._thread = threading.Thread(
            target=self._run, name="storypivot-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
        self._reap_workers(timeout)

    def wait_workers(self, timeout: Optional[float] = None) -> None:
        """Block until every live worker loop has returned."""
        self._reap_workers(timeout)

    def _reap_workers(self, timeout: Optional[float]) -> None:
        """Join worker futures, keeping crash handling in one place.

        A :class:`ShardCrashed` here was already counted and restarted
        (or parked) by the supervision loop; a slow worker at shutdown
        is logged rather than blocking teardown forever.  Anything else
        escaping a worker loop is a supervisor bug — record it loudly
        before moving on to the next future.
        """
        for shard_id, future in list(self._futures.items()):
            try:
                future.result(timeout=timeout)
            except ShardCrashed:
                pass  # counted, restarted or parked by _run already
            except FuturesTimeoutError:
                logger.warning(
                    "shard %d: worker still running after %.1fs at "
                    "shutdown; abandoning the join", shard_id,
                    timeout if timeout is not None else -1.0,
                )
            except CancelledError:
                pass  # executor shut down before the loop started
            except Exception as exc:
                logger.error(
                    "shard %d: worker loop died outside the ShardCrashed "
                    "protocol: %s: %s", shard_id, type(exc).__name__, exc,
                )

    # -- supervision -------------------------------------------------------

    def _submit(self, shard: Shard) -> None:
        future = self._executor.submit(shard.run_loop, self._worker_stop)
        self._futures[shard.shard_id] = future
        future.add_done_callback(lambda f, sid=shard.shard_id: self._on_done(sid, f))

    def _on_done(self, shard_id: int, future: Future) -> None:
        if future.exception() is None:
            return  # clean exit (stop/close)
        self._wake.set()

    def _run(self) -> None:
        while not self._stop_event.is_set():
            self._wake.wait(timeout=0.1)
            self._wake.clear()
            for shard_id, future in list(self._futures.items()):
                if not future.done() or future.exception() is None:
                    continue
                shard = self._shards[shard_id]
                signature = _crash_signature(future.exception())
                with self._lock:
                    self._crashes[shard_id] += 1
                    crashes = self._crashes[shard_id]
                    if self._last_signature.get(shard_id) == signature:
                        self._signature_streak[shard_id] += 1
                    else:
                        self._signature_streak[shard_id] = 1
                    self._last_signature[shard_id] = signature
                    streak = self._signature_streak[shard_id]
                if streak >= self._policy.crash_loop_threshold:
                    self._park_failed(shard, signature, streak)
                    continue
                if crashes > self._policy.max_restarts:
                    self._declare_dead(shard)
                    continue
                delay = self._policy.delay(crashes - 1)
                if self._stop_event.wait(timeout=delay):
                    return
                self._restart_counter.inc()
                self._submit(shard)

    def _retire(self, shard: Shard) -> None:
        shard.dead = True
        self._futures.pop(shard.shard_id, None)
        shard.queue.purge()
        shard.queue.close()

    def _declare_dead(self, shard: Shard) -> None:
        logger.error(
            "shard %d: exceeded %d restarts; declaring dead",
            shard.shard_id, self._policy.max_restarts,
        )
        self._retire(shard)
        self._dead_gauge.add(1)

    def _park_failed(self, shard: Shard, signature: str, streak: int) -> None:
        """Crash loop: same exception every restart — parking cannot lose
        more than restarting forever would, and it frees the operator
        signal from the noise of doomed retries."""
        logger.error(
            "shard %d: crash-looping (%d consecutive identical crashes: "
            "%s); parking as failed", shard.shard_id, streak, signature,
        )
        shard.failed = True
        self._retire(shard)
        self._crash_loop_counter.inc()
        self._failed_gauge.add(1)

    # -- introspection -----------------------------------------------------

    def restarts(self, shard_id: int) -> int:
        with self._lock:
            return max(0, self._crashes.get(shard_id, 0))

    def note_progress(self, shard_id: int) -> None:
        """Reset the crash streak after healthy processing."""
        with self._lock:
            self._crashes[shard_id] = 0
            self._signature_streak[shard_id] = 0
            self._last_signature.pop(shard_id, None)
