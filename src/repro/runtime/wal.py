"""Incremental durability: per-shard write-ahead logs and checkpoints.

Layered on :mod:`repro.core.persistence`.  Each shard owns one append-only
JSON-lines WAL: every *accepted* snippet is logged after identification
integrates it.  Periodically the shard compacts — its full
:class:`~repro.core.pipeline.StoryPivot` state is written as a checkpoint
(atomic temp-file + rename) and the WAL is truncated.  Recovery loads the
last checkpoint and replays the WAL tail through ordinary identification,
so a killed runtime resumes *exactly*: replay is idempotent (records
already present in the checkpoint are skipped), and a torn final line —
the expected artifact of a kill mid-append — is tolerated.

Shard files are named by shard index; a ``manifest.json`` pins the shard
count and pipeline config, because source→shard routing depends on the
shard count: resuming with a different count would replay snippets into
the wrong shards.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import StoryPivotConfig
from repro.core.persistence import (
    config_record,
    dump_state,
    load_state,
    snippet_from_record,
    snippet_record,
)
from repro.core.pipeline import StoryPivot
from repro.errors import DataFormatError
from repro.obs.trace import add_event
from repro.eventdata.models import Snippet

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

logger = logging.getLogger("repro.runtime.wal")


class ShardWal:
    """Append-only snippet log for one shard."""

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._handle = None
        self._sequence = 0
        #: torn/corrupt records skipped by the last :meth:`replay`
        self.torn_records = 0

    def _ensure_open(self) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, snippet: Snippet) -> int:
        """Log one accepted snippet; returns bytes written."""
        self._ensure_open()
        record = snippet_record(snippet)
        record["kind"] = "wal-entry"
        record["seq"] = self._sequence
        self._sequence += 1
        line = json.dumps(record) + "\n"
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        return len(line.encode("utf-8"))

    def replay(self) -> List[Snippet]:
        """Logged snippets in append order; torn records are skipped.

        A record can be torn by a kill mid-append (the classic truncated
        final line) or by a torn write mid-file (crash between ``write``
        and ``fsync``, or injected chaos) that merges two records into
        one garbage line.  Either way the damage is *local*: the bad
        line is skipped with a warning and counted in
        :attr:`torn_records`, and every decodable record before and
        after it is recovered.  Raising here would poison restart
        forever — a corrupt byte must cost one record, not the shard.
        """
        self.torn_records = 0
        if not os.path.exists(self.path):
            return []
        snippets: List[Snippet] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("kind") != "wal-entry":
                        raise DataFormatError("not a wal entry")
                    snippets.append(snippet_from_record(record))
                except (ValueError, KeyError, TypeError, AttributeError,
                        DataFormatError) as exc:
                    self.torn_records += 1
                    add_event(
                        "wal.torn_record", path=self.path, line=line_no,
                        error=str(exc),
                    )
                    logger.warning(
                        "%s:%d: skipping torn/corrupt WAL record (%s)",
                        self.path, line_no, exc,
                    )
        self._sequence = len(snippets)
        return snippets

    def reset(self) -> None:
        """Truncate after a checkpoint has durably captured the state."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass
        self._sequence = 0

    def size_bytes(self) -> int:
        if self._handle is not None:
            self._handle.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CheckpointStore:
    """Directory layout + atomic save/load for per-shard state."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def checkpoint_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:03d}.ckpt.jsonl")

    def wal_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:03d}.wal.jsonl")

    def wal(self, shard_id: int, fsync: bool = False) -> ShardWal:
        return ShardWal(self.wal_path(shard_id), fsync=fsync)

    def dlq_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:03d}.dlq.jsonl")

    def dlq(self, shard_id: int):
        from repro.resilience.dlq import DeadLetterQueue

        return DeadLetterQueue(self.dlq_path(shard_id))

    # -- manifest ----------------------------------------------------------

    def write_manifest(self, num_shards: int, config: StoryPivotConfig) -> None:
        manifest = {
            "kind": "storypivot-runtime-manifest",
            "version": MANIFEST_VERSION,
            "num_shards": num_shards,
            "config": config_record(config),
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(tmp, path)

    def read_manifest(self) -> Optional[Dict[str, object]]:
        path = os.path.join(self.directory, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("kind") != "storypivot-runtime-manifest":
            raise DataFormatError(f"{path}: not a runtime manifest")
        if manifest.get("version") != MANIFEST_VERSION:
            raise DataFormatError(
                f"{path}: unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        return manifest

    # -- checkpoints -------------------------------------------------------

    def save(self, shard_id: int, pivot: StoryPivot) -> int:
        """Atomically write one shard's checkpoint; returns bytes written."""
        path = self.checkpoint_path(shard_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            dump_state(pivot, handle)
            handle.flush()
            os.fsync(handle.fileno())
        size = os.path.getsize(tmp)
        os.replace(tmp, path)
        return size

    def load(self, shard_id: int) -> Optional[StoryPivot]:
        path = self.checkpoint_path(shard_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return load_state(handle)

    def recover_shard(
        self, shard_id: int, config: StoryPivotConfig, metrics=None
    ) -> Tuple[StoryPivot, int]:
        """(restored pivot, WAL records replayed) for one shard.

        Loads the last checkpoint (or a fresh pivot) and replays the WAL
        tail through normal identification.  Records the checkpoint
        already holds are skipped, which makes a crash between
        checkpoint-write and WAL-truncate harmless.  Torn WAL records
        are skipped (see :meth:`ShardWal.replay`) and counted into the
        ``wal.torn_records`` metric when a registry is supplied.
        """
        pivot = self.load(shard_id)
        if pivot is None:
            pivot = StoryPivot(config)
        replayed = 0
        wal = self.wal(shard_id)
        for snippet in wal.replay():
            if pivot.has_snippet(snippet.snippet_id):
                continue
            pivot.add_snippet(snippet)
            replayed += 1
        if wal.torn_records and metrics is not None:
            metrics.counter("wal.torn_records").inc(wal.torn_records)
        return pivot, replayed
