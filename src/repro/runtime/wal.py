"""Incremental durability: per-shard write-ahead logs and checkpoints.

Layered on :mod:`repro.core.persistence`.  Each shard owns one append-only
JSON-lines WAL: every *accepted* snippet is logged after identification
integrates it.  Periodically the shard compacts — its full
:class:`~repro.core.pipeline.StoryPivot` state is written as a checkpoint
(atomic temp-file + rename) and the WAL is truncated.  Recovery loads the
last checkpoint and replays the WAL tail through ordinary identification,
so a killed runtime resumes *exactly*: replay is idempotent (records
already present in the checkpoint are skipped), and a torn final line —
the expected artifact of a kill mid-append — is tolerated.

Shard files are named by shard index; a ``manifest.json`` pins the shard
count and pipeline config, because source→shard routing depends on the
shard count: resuming with a different count would replay snippets into
the wrong shards.

Replication additions (see :mod:`repro.replication`):

* every record carries a **cumulative sequence number** that survives
  checkpoints, so a follower can say "give me everything from seq N";
* every record carries a **CRC32 frame** over its canonical payload, so
  a record corrupted on disk *or in transit* is detected (counted under
  the existing ``wal.torn_records`` accounting) — unframed seed-era
  records stay readable;
* a checkpoint **rotates** the active WAL into a sealed, immutable
  segment instead of truncating it.  Sealed segments are what the leader
  ships; a bounded number are retained (they are fully covered by the
  checkpoint, so pruning never endangers recovery — only a very-behind
  follower, which then re-bootstraps from the snapshot).
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import StoryPivotConfig
from repro.core.persistence import (
    config_record,
    dump_state,
    load_state,
    snippet_from_record,
    snippet_record,
)
from repro.core.pipeline import StoryPivot
from repro.errors import DataFormatError
from repro.obs.trace import add_event, current_span
from repro.eventdata.models import Snippet

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: sealed-segment name: ``<active>.<first>-<last>.seg`` (seqs inclusive)
_SEGMENT_RE = re.compile(r"\.(\d{8})-(\d{8})\.seg$")

logger = logging.getLogger("repro.runtime.wal")


def record_crc(record: Dict[str, object]) -> int:
    """CRC32 of the record's canonical payload (the ``crc`` field excluded).

    Canonical means ``sort_keys`` JSON, so the checksum is independent of
    field ordering and of how the line was formatted on disk or on the
    wire — the same record always frames to the same CRC.
    """
    payload = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def frame_record(record: Dict[str, object]) -> Dict[str, object]:
    """Stamp the CRC32 frame onto ``record`` (in place) and return it."""
    record["crc"] = record_crc(record)
    return record


def verify_record(record: Dict[str, object]) -> bool:
    """True when the record's frame checks out.

    Unframed records (no ``crc`` field — written by seed-era WALs) are
    accepted: framing is backward-compatible, corruption detection only
    applies to records that claim a checksum.
    """
    crc = record.get("crc")
    if crc is None:
        return True
    return crc == record_crc(record)


class ShardWal:
    """Append-only snippet log for one shard.

    Sequence numbers are **cumulative**: they keep increasing across
    checkpoint rotations (and across reopen — the counter is recovered
    by scanning sealed segments and the active file), so a replication
    cursor is meaningful for the lifetime of the shard, not just one
    active file.  ``keep_segments`` bounds how many sealed segments
    :meth:`rotate` retains for followers to tail.
    """

    def __init__(
        self, path: str, fsync: bool = False, keep_segments: int = 6
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.keep_segments = keep_segments
        self._handle = None
        self._next_seq = 0
        self._active_base_seq = 0
        self._bootstrapped = False
        #: serializes rotation against readers.  The worker thread
        #: rotates (rename active → segment, prune old segments) while
        #: the replication ship thread iterates records; without mutual
        #: exclusion a reader can list segments, lose the race, and then
        #: read the *fresh empty* active file — the renamed-away records
        #: appear as a sequence gap, which a follower is entitled to
        #: interpret as "pruned on the leader" and silently skip.
        self._rotate_lock = threading.RLock()
        #: torn/corrupt records skipped by the last :meth:`replay`
        self.torn_records = 0

    # -- sequence bootstrap ------------------------------------------------

    def _bootstrap(self) -> None:
        """Recover the cumulative sequence counter from disk (once).

        The active file continues after the last sealed segment; within
        the active file the highest *decodable* record's ``seq`` wins.
        Torn lines are skipped, not stopped at: the file is at rest
        while bootstrapping (first append or reopen), so a mid-file torn
        write must not hide the valid records after it — reusing their
        sequence numbers would make two different records share a seq.
        A torn *tail* record's seq is reused by the next append, which
        is fine: the torn record is invisible to every reader.
        """
        with self._rotate_lock:
            if self._bootstrapped:
                return
            self._bootstrapped = True
            base = 0
            for _, end, _ in self.segments():
                base = max(base, end + 1)
            self._active_base_seq = base
            last_seq = None
            if os.path.exists(self.path):
                # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
                for record in self._decode_lines(self.path):
                    seq = record.get("seq")
                    if isinstance(seq, int) and (
                        last_seq is None or seq > last_seq
                    ):
                        last_seq = seq
            self._next_seq = (
                base if last_seq is None else max(base, last_seq + 1)
            )

    @property
    def position(self) -> int:
        """The next sequence number (= records ever appended, fresh WAL)."""
        self._bootstrap()
        return self._next_seq

    def _ensure_open(self) -> None:
        self._bootstrap()
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, snippet: Snippet) -> int:
        """Log one accepted snippet; returns bytes written."""
        with self._rotate_lock:
            # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
            self._ensure_open()
            record = snippet_record(snippet)
            record["kind"] = "wal-entry"
            record["seq"] = self._next_seq
            # ingest provenance: the sampled trace this snippet was
            # accepted under rides along, so a shipped record can be
            # stitched back to the leader-side ingest trace from any
            # follower (the field is covered by the CRC frame and
            # ignored by replay)
            span = current_span()
            if span is not None and span.sampled:
                record["trace"] = span.trace_id
            frame_record(record)
            self._next_seq += 1
            line = json.dumps(record) + "\n"
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                # sp-lint: disable=SP201 -- the durability barrier is part of the append critical section: a rotate must not rename bytes that are not yet on disk
                os.fsync(self._handle.fileno())
            return len(line.encode("utf-8"))

    def _decode_lines(
        self, path: str, stop_on_error: bool = False, count_bad: bool = False
    ) -> Iterator[Dict[str, object]]:
        """Decoded, CRC-verified records of one file, in order.

        Bad lines (torn writes, CRC mismatches, non-entries) are skipped
        — or, with ``stop_on_error``, end the iteration: that is the live
        tailing mode, where an undecodable final line usually means an
        append is racing us and the bytes simply are not all there yet.
        ``count_bad`` accumulates skips into :attr:`torn_records`.
        """
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("kind") != "wal-entry":
                        raise DataFormatError("not a wal entry")
                    if not verify_record(record):
                        raise DataFormatError("CRC32 frame mismatch")
                except (ValueError, KeyError, TypeError, AttributeError,
                        DataFormatError) as exc:
                    if stop_on_error:
                        return
                    if count_bad:
                        # sp-lint: disable=SP202 -- count_bad callers (replay, reset's bootstrap) hold the rotate lock
                        self.torn_records += 1
                        add_event(
                            "wal.torn_record", path=path, line=line_no,
                            error=str(exc),
                        )
                        logger.warning(
                            "%s:%d: skipping torn/corrupt WAL record (%s)",
                            path, line_no, exc,
                        )
                    continue
                yield record

    def replay(self) -> List[Snippet]:
        """Active-file snippets in append order; torn records are skipped.

        A record can be torn by a kill mid-append (the classic truncated
        final line), by a torn write mid-file (crash between ``write``
        and ``fsync``, or injected chaos) that merges two records into
        one garbage line, or corrupted in place (caught by the CRC32
        frame).  Either way the damage is *local*: the bad line is
        skipped with a warning and counted in :attr:`torn_records`, and
        every decodable record before and after it is recovered.
        Raising here would poison restart forever — a corrupt byte must
        cost one record, not the shard.

        Sealed segments are *not* replayed: they are rotated out only
        after a checkpoint durably captured their records, so the active
        file is exactly the tail the last checkpoint does not cover.
        """
        with self._rotate_lock:
            self.torn_records = 0
            snippets: List[Snippet] = []
            last_seq = None
            # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
            for record in self._decode_lines(self.path, count_bad=True):
                snippets.append(snippet_from_record(record))
                seq = record.get("seq")
                if isinstance(seq, int):
                    last_seq = seq
            base = 0
            for _, end, _ in self.segments():
                base = max(base, end + 1)
            self._active_base_seq = base
            self._next_seq = (
                max(base, last_seq + 1) if last_seq is not None
                else max(base, len(snippets))
            )
            self._bootstrapped = True
            return snippets

    # -- segments (replication shipping units) -----------------------------

    def segments(self) -> List[Tuple[int, int, str]]:
        """Sealed segments as ``(first_seq, last_seq, path)``, in order."""
        directory = os.path.dirname(self.path) or "."
        prefix = os.path.basename(self.path) + "."
        found: List[Tuple[int, int, str]] = []
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        for name in names:
            if not name.startswith(prefix):
                continue
            match = _SEGMENT_RE.search(name)
            if match is None:
                continue
            found.append((
                int(match.group(1)), int(match.group(2)),
                os.path.join(directory, name),
            ))
        found.sort()
        return found

    def rotate(self) -> Optional[str]:
        """Seal the active file into an immutable segment.

        Called right after a checkpoint captured every record in the
        active file.  The file is renamed to
        ``<active>.<first>-<last>.seg`` (sequence range inclusive) and a
        fresh empty active file takes its place; sequence numbering
        continues.  At most :attr:`keep_segments` sealed segments are
        retained — older ones are fully covered by the checkpoint, so
        pruning only affects how far back a follower can tail before it
        must re-bootstrap from a snapshot.  Returns the segment path,
        or None when the active file has no records.
        """
        with self._rotate_lock:
            # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
            self._bootstrap()
            if self._next_seq == self._active_base_seq:
                return None  # nothing appended since the last rotation
            self.close()
            first, last = self._active_base_seq, self._next_seq - 1
            segment = f"{self.path}.{first:08d}-{last:08d}.seg"
            os.replace(self.path, segment)
            self._active_base_seq = self._next_seq
            # sp-lint: disable=SP201 -- the rename/reopen must be atomic vs readers; this lock is what makes it so
            with open(self.path, "w", encoding="utf-8"):
                pass
            if self.keep_segments >= 0:
                retained = self.segments()
                for _, _, stale in retained[:max(
                    0, len(retained) - self.keep_segments
                )]:
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
            return segment

    def earliest_available_seq(self) -> int:
        """The oldest sequence still on disk (segments included)."""
        with self._rotate_lock:
            # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
            self._bootstrap()
            retained = self.segments()
            if retained:
                return retained[0][0]
            return self._active_base_seq

    def iter_records(
        self, from_seq: int = 0, max_records: Optional[int] = None
    ) -> Iterator[Dict[str, object]]:
        """Framed records with ``seq >= from_seq``, oldest first.

        Reads sealed segments first, then the active file.  The active
        file may be receiving concurrent appends; iteration stops at the
        first undecodable active line (an append racing the read) rather
        than mis-counting it as corruption.  Callers below
        :meth:`earliest_available_seq` should bootstrap from a snapshot
        instead — pruned records are gone.

        The whole iteration holds the rotation lock: a checkpoint that
        rotated (or pruned) files between the segment listing and the
        reads would make the renamed-away records look like a sequence
        gap — and a replication follower treats a gap as "pruned on the
        leader" and skips it, silently losing the records.
        """
        with self._rotate_lock:
            # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
            self._bootstrap()
            if self._handle is not None:
                self._handle.flush()
            yielded = 0
            for _, end, path in self.segments():
                if end < from_seq:
                    continue
                # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
                for record in self._decode_lines(path):
                    seq = record.get("seq")
                    if isinstance(seq, int) and seq < from_seq:
                        continue
                    yield record
                    yielded += 1
                    if max_records is not None and yielded >= max_records:
                        return
            # sp-lint: disable=SP201 -- WAL file I/O is serialized by this lock; that is its purpose
            for record in self._decode_lines(self.path, stop_on_error=True):
                seq = record.get("seq")
                if isinstance(seq, int) and seq < from_seq:
                    continue
                yield record
                yielded += 1
                if max_records is not None and yielded >= max_records:
                    return

    def reset(self) -> None:
        """Discard the log entirely — active file, segments and cursor.

        This is the legacy truncation path (and the test hook); the
        checkpoint cycle uses :meth:`rotate`, which preserves sequence
        numbering and keeps sealed segments for replication.
        """
        with self._rotate_lock:
            self.close()
            # sp-lint: disable=SP201 -- truncation must be atomic vs readers; this lock is what makes it so
            with open(self.path, "w", encoding="utf-8"):
                pass
            for _, _, path in self.segments():
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._next_seq = 0
            self._active_base_seq = 0
            self._bootstrapped = True

    def size_bytes(self) -> int:
        if self._handle is not None:
            self._handle.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CheckpointStore:
    """Directory layout + atomic save/load for per-shard state."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def checkpoint_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:03d}.ckpt.jsonl")

    def wal_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:03d}.wal.jsonl")

    def wal(
        self, shard_id: int, fsync: bool = False, keep_segments: int = 6
    ) -> ShardWal:
        return ShardWal(
            self.wal_path(shard_id), fsync=fsync,
            keep_segments=keep_segments,
        )

    def dlq_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:03d}.dlq.jsonl")

    def dlq(self, shard_id: int):
        from repro.resilience.dlq import DeadLetterQueue

        return DeadLetterQueue(self.dlq_path(shard_id))

    # -- manifest ----------------------------------------------------------

    def write_manifest(self, num_shards: int, config: StoryPivotConfig) -> None:
        manifest = {
            "kind": "storypivot-runtime-manifest",
            "version": MANIFEST_VERSION,
            "num_shards": num_shards,
            "config": config_record(config),
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(tmp, path)

    def read_manifest(self) -> Optional[Dict[str, object]]:
        path = os.path.join(self.directory, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("kind") != "storypivot-runtime-manifest":
            raise DataFormatError(f"{path}: not a runtime manifest")
        if manifest.get("version") != MANIFEST_VERSION:
            raise DataFormatError(
                f"{path}: unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        return manifest

    # -- checkpoints -------------------------------------------------------

    def save(self, shard_id: int, pivot: StoryPivot) -> int:
        """Atomically write one shard's checkpoint; returns bytes written."""
        path = self.checkpoint_path(shard_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            dump_state(pivot, handle)
            handle.flush()
            os.fsync(handle.fileno())
        size = os.path.getsize(tmp)
        os.replace(tmp, path)
        return size

    def load(self, shard_id: int) -> Optional[StoryPivot]:
        path = self.checkpoint_path(shard_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return load_state(handle)

    def recover_shard(
        self, shard_id: int, config: StoryPivotConfig, metrics=None
    ) -> Tuple[StoryPivot, int]:
        """(restored pivot, WAL records replayed) for one shard.

        Loads the last checkpoint (or a fresh pivot) and replays the WAL
        tail through normal identification.  Records the checkpoint
        already holds are skipped, which makes a crash between
        checkpoint-write and WAL-truncate harmless.  Torn WAL records
        are skipped (see :meth:`ShardWal.replay`) and counted into the
        ``wal.torn_records`` metric when a registry is supplied.
        """
        pivot = self.load(shard_id)
        if pivot is None:
            pivot = StoryPivot(config)
        replayed = 0
        wal = self.wal(shard_id)
        for snippet in wal.replay():
            if pivot.has_snippet(snippet.snippet_id):
                continue
            pivot.add_snippet(snippet)
            replayed += 1
        if wal.torn_records and metrics is not None:
            metrics.counter("wal.torn_records").inc(wal.torn_records)
        return pivot, replayed
