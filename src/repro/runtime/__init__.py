"""repro.runtime — sharded streaming ingestion runtime.

Production-shaped serving layer over the StoryPivot core: per-source
sharding with bounded, backpressured queues; worker supervision with
capped-backoff restarts; WAL + checkpoint durability with exact
kill/resume recovery; and a built-in metrics registry instrumented into
every hot path.  See :mod:`repro.runtime.runtime` for the architecture
notes and ``storypivot-serve`` for the CLI.
"""

from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_table,
)
from repro.runtime.queues import (
    BACKPRESSURE_POLICIES,
    BoundedQueue,
    Empty,
    QueueClosed,
)
from repro.runtime.runtime import (
    EXECUTORS,
    RuntimeOptions,
    ShardedRuntime,
    shard_of,
)
from repro.runtime.shard import Shard, ShardCrashed
from repro.runtime.supervisor import BackoffPolicy, Supervisor
from repro.runtime.wal import CheckpointStore, ShardWal

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackoffPolicy",
    "BoundedQueue",
    "CheckpointStore",
    "Counter",
    "EXECUTORS",
    "Empty",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueueClosed",
    "RuntimeOptions",
    "Shard",
    "ShardCrashed",
    "ShardWal",
    "ShardedRuntime",
    "Supervisor",
    "render_table",
    "shard_of",
]
