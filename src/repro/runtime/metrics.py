"""In-process metrics: counters, gauges, histograms with percentiles.

The runtime instruments its hot paths (offer latency, queue depth, dedup
hits, realignment duration, checkpoint bytes) through a
:class:`MetricsRegistry`.  Everything is dependency-free and thread-safe:
shard workers, the realigner and the supervisor all record concurrently.

Histograms keep exact ``count``/``sum``/``min``/``max`` plus a bounded
ring of the most recent observations from which p50/p95/p99 are computed —
recency-biased quantiles, which is what an operator watching a live
ingest wants, at O(1) memory.

The registry snapshot is plain JSON (``to_json``) for machine consumers,
a fixed-width table (``render``) for the ``serve --stats`` CLI view, and
Prometheus text exposition (``prometheus_render``) for scrapers.

Metrics may carry labels: ``registry.counter("queue.depth", shard=3)``
stores under the canonical key ``queue.depth{shard=3}`` — one key per
label set, so snapshots stay a flat dict, but renderers can split the
key back apart (``split_metric_key``) and group children into a single
Prometheus family.
"""

from __future__ import annotations

import json
import threading
import time
import re
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Tuple


def labeled_name(name: str, labels: Dict[str, object]) -> str:
    """Canonical storage key for a metric child: ``name{k=v,...}``.

    Label keys are sorted so the same label set always maps to the same
    child regardless of call-site keyword order.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`labeled_name`: ``"q{shard=3}"`` -> ``("q", {"shard": "3"})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        if "=" in part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """A value that goes up and down (queue depth, live shards)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Streaming distribution with recency-window percentiles."""

    kind = "histogram"

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=max_samples)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self._samples.append(value)
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, q: float) -> Optional[float]:
        """Linearly interpolated percentile over the retained window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return None  # empty histogram: no quantile, not a crash
        if len(ordered) == 1:
            return ordered[0]  # p99 of one observation IS that observation
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def reset(self) -> None:
        """Drop all state (test isolation between scenario phases)."""
        with self._lock:
            self._samples.clear()
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _Timer:
    """Context manager feeding elapsed seconds into a histogram."""

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._started
        self._histogram.observe(self.elapsed)


class MetricsRegistry:
    """Named metric store; get-or-create, kind-checked, JSON-exportable."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory: Callable[[], object]):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        key = labeled_name(name, labels)
        metric = self._get_or_create(key, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{key!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = labeled_name(name, labels)
        metric = self._get_or_create(key, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{key!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(self, name: str, max_samples: int = 4096, **labels) -> Histogram:
        key = labeled_name(name, labels)
        metric = self._get_or_create(key, lambda: Histogram(max_samples))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{key!r} is a {metric.kind}, not a histogram")
        return metric

    def timer(self, name: str, **labels) -> _Timer:
        return _Timer(self.histogram(name, **labels))

    def remove(self, name: str, **labels) -> bool:
        """Drop one metric (e.g. a per-subscriber gauge whose subject is
        gone); returns whether it existed.  Without this, short-lived
        label values — subscription ids, connection ids — would leak
        dead children into every subsequent scrape."""
        key = labeled_name(name, labels)
        with self._lock:
            return self._metrics.pop(key, None) is not None

    def children(self, name: str) -> Dict[str, object]:
        """All children of a labeled family, keyed by their label dicts.

        Returns ``{canonical_key: metric}`` for every metric whose base
        name is ``name`` (including the unlabeled parent, if any).
        """
        with self._lock:
            items = list(self._metrics.items())
        return {
            key: metric
            for key, metric in items
            if split_metric_key(key)[0] == name
        }

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Fixed-width table of every metric — the ``--stats`` view."""
        return render_table(self.snapshot())


def render_table(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Fixed-width text table of a registry snapshot.

    The single registry-to-text formatter: ``storypivot-serve --stats``
    and the API server's ``/metricz`` text view both render through it.
    """

    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    lines = [f"{'metric':<40} {'type':<10} value"]
    lines.append("-" * 72)
    for name, snap in sorted(snapshot.items()):
        kind = snap["type"]
        if kind == "histogram":
            detail = (
                f"n={fmt(snap['count'])} mean={fmt(snap['mean'])} "
                f"p50={fmt(snap['p50'])} p95={fmt(snap['p95'])} "
                f"p99={fmt(snap['p99'])} max={fmt(snap['max'])}"
            )
        else:
            detail = fmt(snap["value"])
        lines.append(f"{name:<40} {kind:<10} {detail}")
    return "\n".join(lines)


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


# sp-taint: sanitizer -- collapses anything outside [a-zA-Z0-9_:]
def _prom_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: object) -> str:
    if value is None:
        return "NaN"
    return f"{float(value):.10g}"


# sp-taint: sanitizer -- label values cannot break out of their quotes
def _prom_escape(value: object) -> str:
    # exposition-format label escaping: backslash first, then quote and
    # newline — a literal newline in a label value would split the sample
    # line and corrupt the whole scrape
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_PROM_INVALID.sub("_", key)}="{_prom_escape(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_render(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Prometheus text exposition (format version 0.0.4) of a snapshot.

    Counters and gauges map directly; histograms are exposed as
    summaries (quantile children + ``_sum``/``_count``), which is the
    honest encoding of our recency-window percentiles — we do not have
    cumulative buckets to offer.  Labeled children collapse into one
    family per base name so scrapers see a single ``# TYPE`` line.
    """
    families: Dict[str, List[Tuple[Dict[str, str], Dict[str, object]]]] = {}
    kinds: Dict[str, str] = {}
    for key, snap in sorted(snapshot.items()):
        base, labels = split_metric_key(key)
        name = _prom_name(base)
        families.setdefault(name, []).append((labels, snap))
        kinds[name] = snap["type"]

    lines: List[str] = []
    for name in sorted(families):
        kind = kinds[name]
        if kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            for labels, snap in families[name]:
                for q, field in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    quantiled = dict(labels, quantile=str(q))
                    lines.append(
                        f"{name}{_prom_labels(quantiled)} "
                        f"{_prom_value(snap.get(field))}"
                    )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} {_prom_value(snap.get('sum'))}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} "
                    f"{_prom_value(snap.get('count'))}"
                )
        else:
            prom_kind = "counter" if kind == "counter" else "gauge"
            lines.append(f"# TYPE {name} {prom_kind}")
            for labels, snap in families[name]:
                lines.append(
                    f"{name}{_prom_labels(labels)} {_prom_value(snap.get('value'))}"
                )
    return "\n".join(lines) + "\n"
