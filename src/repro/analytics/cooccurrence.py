"""Entity relationship dynamics.

The paper frames stories as "evolving relationships between different
entities" — this module makes those relationships first-class: a weighted
entity co-mention graph over any snippet collection, per-window
relationship series, and detection of *emerging* and *fading* entity pairs
(the Ukraine–Russia edge surging in July 2014).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.eventdata.models import DAY, Snippet


def cooccurrence_graph(snippets: Iterable[Snippet]) -> nx.Graph:
    """Weighted entity co-mention graph.

    Nodes are entity codes with a ``mentions`` attribute; an edge's
    ``weight`` counts the snippets mentioning both endpoints.
    """
    graph = nx.Graph()
    for snippet in snippets:
        entities = sorted(snippet.entities)
        for entity in entities:
            if graph.has_node(entity):
                graph.nodes[entity]["mentions"] += 1
            else:
                graph.add_node(entity, mentions=1)
        for i, a in enumerate(entities):
            for b in entities[i + 1:]:
                if graph.has_edge(a, b):
                    graph[a][b]["weight"] += 1
                else:
                    graph.add_edge(a, b, weight=1)
    return graph


def top_relationships(
    graph: nx.Graph, k: int = 10
) -> List[Tuple[str, str, int]]:
    """Strongest entity pairs by co-mention count."""
    if k <= 0:
        raise ValueError("k must be positive")
    edges = sorted(
        ((a, b, data["weight"]) for a, b, data in graph.edges(data=True)),
        key=lambda e: (-e[2], e[0], e[1]),
    )
    return [(min(a, b), max(a, b), w) for a, b, w in edges[:k]]


def entity_pagerank(graph: nx.Graph, k: int = 10) -> List[Tuple[str, float]]:
    """Most central entities of the relationship graph (weighted PageRank)."""
    if graph.number_of_nodes() == 0:
        return []
    scores = nx.pagerank(graph, weight="weight")
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


@dataclass(frozen=True)
class RelationshipTrend:
    """How one entity pair's co-mention rate changed between two periods."""

    entity_a: str
    entity_b: str
    before: int
    after: int

    @property
    def change(self) -> int:
        return self.after - self.before

    @property
    def is_emerging(self) -> bool:
        return self.after >= 2 * max(1, self.before)

    @property
    def is_fading(self) -> bool:
        return self.before >= 2 * max(1, self.after)


def relationship_trends(
    snippets: Sequence[Snippet],
    split_time: Optional[float] = None,
    min_total: int = 3,
) -> List[RelationshipTrend]:
    """Compare co-mention counts before vs after ``split_time``.

    Defaults to the median snippet timestamp.  Pairs with fewer than
    ``min_total`` total co-mentions are ignored; results are ordered by
    absolute change, largest first.
    """
    ordered = sorted(snippets, key=lambda s: s.timestamp)
    if not ordered:
        return []
    if split_time is None:
        split_time = ordered[len(ordered) // 2].timestamp
    before: Dict[Tuple[str, str], int] = defaultdict(int)
    after: Dict[Tuple[str, str], int] = defaultdict(int)
    for snippet in ordered:
        bucket = before if snippet.timestamp < split_time else after
        entities = sorted(snippet.entities)
        for i, a in enumerate(entities):
            for b in entities[i + 1:]:
                bucket[(a, b)] += 1
    trends = []
    for pair in set(before) | set(after):
        total = before[pair] + after[pair]
        if total < min_total:
            continue
        trends.append(RelationshipTrend(pair[0], pair[1],
                                        before[pair], after[pair]))
    trends.sort(key=lambda t: (-abs(t.change), t.entity_a, t.entity_b))
    return trends


def relationship_series(
    snippets: Sequence[Snippet],
    entity_a: str,
    entity_b: str,
    window: float = 7 * DAY,
) -> List[Tuple[float, int]]:
    """(window start, co-mention count) series for one entity pair."""
    if window <= 0:
        raise ValueError("window must be positive")
    relevant = [
        s for s in snippets
        if entity_a in s.entities and entity_b in s.entities
    ]
    all_times = [s.timestamp for s in snippets]
    if not all_times:
        return []
    first, last = min(all_times), max(all_times)
    num_windows = max(1, int(math.ceil((last - first) / window)))
    counts = [0] * num_windows
    for snippet in relevant:
        index = min(num_windows - 1, int((snippet.timestamp - first) / window))
        counts[index] += 1
    return [(first + i * window, count) for i, count in enumerate(counts)]
