"""Analyst workloads over detected stories (Section 1's motivation).

The paper motivates story tracking with analysts who "rely on temporal
patterns of event occurrences to discover supporting evidence and validate
their hypotheses" — political scientists forecasting crises, financial
analysts working from political event extractions.  This package provides
those temporal-pattern primitives over StoryPivot's output:

* :mod:`repro.analytics.bursts` — burst detection on story activity;
* :mod:`repro.analytics.lifecycle` — story lifecycle statistics (duration,
  cadence, growth, dormancy);
* :mod:`repro.analytics.source_profile` — empirical source
  characterization (coverage, timeliness, exclusivity) recovered from the
  aligned stories, the "individual source characteristics" Section 1 cites
  as the key to hard prediction tasks.
"""

from repro.analytics.bursts import Burst, detect_bursts, story_bursts
from repro.analytics.lifecycle import StoryLifecycle, lifecycle, lifecycle_table
from repro.analytics.source_profile import SourceReport, profile_sources
from repro.analytics.trending import TrendingEntry, TrendingMonitor, story_heat, trending_stories
from repro.analytics.cooccurrence import (
    RelationshipTrend,
    cooccurrence_graph,
    entity_pagerank,
    relationship_series,
    relationship_trends,
    top_relationships,
)

__all__ = [
    "Burst",
    "detect_bursts",
    "story_bursts",
    "StoryLifecycle",
    "lifecycle",
    "lifecycle_table",
    "SourceReport",
    "profile_sources",
    "TrendingEntry",
    "TrendingMonitor",
    "story_heat",
    "trending_stories",
    "cooccurrence_graph",
    "top_relationships",
    "entity_pagerank",
    "RelationshipTrend",
    "relationship_trends",
    "relationship_series",
]
