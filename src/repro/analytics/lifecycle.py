"""Story lifecycle statistics.

Per-story temporal descriptors — duration, reporting cadence, growth
phase, dormancy — that let an analyst separate flash events from
long-running evolving stories and spot the "split then stabilize" dynamics
the paper describes for the Ukraine crisis.
"""

from __future__ import annotations

import statistics as _stats
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.alignment import AlignedStory
from repro.core.stories import Story
from repro.eventdata.models import DAY, format_timestamp


@dataclass(frozen=True)
class StoryLifecycle:
    """Temporal descriptors of one story."""

    story_id: str
    num_snippets: int
    num_sources: int
    start: float
    end: float
    duration_days: float
    mean_gap_days: float  # mean inter-snippet gap
    max_gap_days: float
    peak_day_events: int  # busiest single day
    front_loading: float  # fraction of events in the first half of the span

    @property
    def is_flash(self) -> bool:
        """A flash event: everything within two days."""
        return self.duration_days <= 2.0

    @property
    def is_dormant_prone(self) -> bool:
        """Had a silence longer than half its lifetime."""
        return self.duration_days > 0 and (
            self.max_gap_days >= self.duration_days / 2
        )


def lifecycle(story: Union[Story, AlignedStory]) -> StoryLifecycle:
    """Compute lifecycle descriptors for a story or integrated story."""
    if isinstance(story, AlignedStory):
        snippets = story.snippets()
        story_id = story.aligned_id
        num_sources = len(story.source_ids)
    elif isinstance(story, Story):
        snippets = story.snippets()
        story_id = story.story_id
        num_sources = 1
    else:
        raise TypeError(f"expected Story or AlignedStory, got {type(story)!r}")
    if not snippets:
        raise ValueError("cannot compute the lifecycle of an empty story")

    timestamps = [s.timestamp for s in snippets]
    start, end = min(timestamps), max(timestamps)
    duration = end - start
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    per_day: dict = {}
    for t in timestamps:
        per_day[int(t // DAY)] = per_day.get(int(t // DAY), 0) + 1
    midpoint = start + duration / 2
    first_half = sum(1 for t in timestamps if t <= midpoint)
    return StoryLifecycle(
        story_id=story_id,
        num_snippets=len(snippets),
        num_sources=num_sources,
        start=start,
        end=end,
        duration_days=duration / DAY,
        mean_gap_days=(_stats.fmean(gaps) / DAY) if gaps else 0.0,
        max_gap_days=(max(gaps) / DAY) if gaps else 0.0,
        peak_day_events=max(per_day.values()),
        front_loading=first_half / len(timestamps),
    )


def lifecycle_table(
    stories: Sequence[Union[Story, AlignedStory]],
    limit: Optional[int] = None,
) -> str:
    """Fixed-width table of lifecycle stats, longest stories first."""
    rows = sorted(
        (lifecycle(story) for story in stories),
        key=lambda lc: (-lc.num_snippets, lc.story_id),
    )
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "(no stories)"
    header = (f"{'story':<14} {'n':>4} {'src':>3} {'days':>7} "
              f"{'gap~':>6} {'gapmax':>7} {'peak':>4} {'front':>5}  span")
    lines = [header, "-" * len(header)]
    for lc in rows:
        lines.append(
            f"{lc.story_id:<14} {lc.num_snippets:>4} {lc.num_sources:>3} "
            f"{lc.duration_days:>7.1f} {lc.mean_gap_days:>6.1f} "
            f"{lc.max_gap_days:>7.1f} {lc.peak_day_events:>4} "
            f"{lc.front_loading:>5.0%}  "
            f"{format_timestamp(lc.start)} – {format_timestamp(lc.end)}"
        )
    return "\n".join(lines)
