"""Burst detection on event-time activity.

A *burst* is a maximal run of time buckets whose event rate exceeds a
multiple of the series' baseline rate — the moments a story "gains
traction in the media" (Section 3).  The detector is a two-state
(baseline/burst) rate model with hysteresis: entering a burst requires
``enter_factor × baseline``, leaving it requires falling below
``exit_factor × baseline``, which keeps one noisy bucket from splitting a
burst.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.alignment import AlignedStory
from repro.eventdata.models import DAY


@dataclass(frozen=True)
class Burst:
    """One detected burst."""

    start: float
    end: float
    events: int
    intensity: float  # peak bucket rate over baseline rate

    @property
    def duration(self) -> float:
        return self.end - self.start


def _bucketize(timestamps: Sequence[float], bucket: float) -> List[int]:
    first = min(timestamps)
    last = max(timestamps)
    num_buckets = max(1, int(math.ceil((last - first) / bucket)) + 1)
    counts = [0] * num_buckets
    for t in timestamps:
        counts[int((t - first) / bucket)] += 1
    return counts


def detect_bursts(
    timestamps: Sequence[float],
    bucket: float = DAY,
    enter_factor: float = 3.0,
    exit_factor: float = 1.5,
    min_events: int = 2,
) -> List[Burst]:
    """Detect bursts in a raw timestamp sequence.

    ``bucket`` is the bucket width in seconds; the baseline is the mean
    non-zero bucket rate.  Bursts with fewer than ``min_events`` events are
    dropped.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    if enter_factor <= exit_factor:
        raise ValueError("enter_factor must exceed exit_factor")
    if not timestamps:
        return []
    first = min(timestamps)
    counts = _bucketize(timestamps, bucket)
    nonzero = [c for c in counts if c > 0]
    baseline = sum(nonzero) / len(nonzero) if nonzero else 0.0
    if baseline == 0.0:
        return []

    bursts: List[Burst] = []
    in_burst = False
    burst_start = 0
    burst_events = 0
    peak = 0
    for index, count in enumerate(counts):
        if not in_burst and count >= enter_factor * baseline:
            in_burst = True
            burst_start = index
            burst_events = count
            peak = count
        elif in_burst:
            if count < exit_factor * baseline:
                in_burst = False
                if burst_events >= min_events:
                    bursts.append(Burst(
                        start=first + burst_start * bucket,
                        end=first + index * bucket,
                        events=burst_events,
                        intensity=peak / baseline,
                    ))
            else:
                burst_events += count
                peak = max(peak, count)
    if in_burst and burst_events >= min_events:
        bursts.append(Burst(
            start=first + burst_start * bucket,
            end=first + len(counts) * bucket,
            events=burst_events,
            intensity=peak / baseline,
        ))
    return bursts


def story_bursts(
    aligned: AlignedStory,
    bucket: float = DAY,
    enter_factor: float = 3.0,
    exit_factor: float = 1.5,
) -> List[Burst]:
    """Bursts of one integrated story's reporting activity."""
    timestamps = [s.timestamp for s in aligned.snippets()]
    return detect_bursts(timestamps, bucket=bucket,
                         enter_factor=enter_factor, exit_factor=exit_factor)
