"""Trending stories: decayed-activity ranking.

"The majority of proposed approaches for story detection focus on
identifying current and thus often mentioned stories in streaming news"
(Section 1) — this module provides that complementary view on top of
StoryPivot's output: each story's *heat* is its exponentially decayed
report count, and the top-k heat ranking at any moment is the trending
list.  A :class:`TrendingMonitor` tracks heat incrementally over a live
stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.alignment import AlignedStory, Alignment
from repro.eventdata.models import DAY, Snippet


@dataclass(frozen=True)
class TrendingEntry:
    """One row of the trending list."""

    story_id: str
    heat: float
    recent_events: int  # events within one half-life of `now`
    total_events: int


def story_heat(
    aligned: AlignedStory, now: float, half_life: float = 3 * DAY
) -> float:
    """Decayed report count of one story at time ``now``.

    Future-dated snippets (occurring after ``now``) contribute nothing.
    """
    if half_life <= 0:
        raise ValueError("half_life must be positive")
    heat = 0.0
    for snippet in aligned.snippets():
        age = now - snippet.timestamp
        if age < 0:
            continue
        heat += math.pow(0.5, age / half_life)
    return heat


def trending_stories(
    alignment: Alignment,
    now: Optional[float] = None,
    half_life: float = 3 * DAY,
    k: int = 10,
) -> List[TrendingEntry]:
    """Top-``k`` stories by heat at time ``now`` (defaults to the corpus
    front: the latest snippet timestamp in the alignment)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if now is None:
        timestamps = [
            s.timestamp
            for aligned in alignment.aligned.values()
            for s in aligned.snippets()
        ]
        if not timestamps:
            return []
        now = max(timestamps)
    entries: List[TrendingEntry] = []
    for aligned in alignment.aligned.values():
        heat = story_heat(aligned, now, half_life)
        if heat <= 0:
            continue
        recent = sum(
            1 for s in aligned.snippets()
            if 0 <= now - s.timestamp <= half_life
        )
        entries.append(TrendingEntry(
            story_id=aligned.aligned_id,
            heat=heat,
            recent_events=recent,
            total_events=len(aligned),
        ))
    entries.sort(key=lambda e: (-e.heat, e.story_id))
    return entries[:k]


class TrendingMonitor:
    """Incremental heat tracking over a live snippet stream.

    Heat is stored per *key* (the caller decides the story key — e.g. the
    integrated story id from the latest alignment, or the ground-truth
    label in tests).  Decay is applied lazily: each key's heat carries its
    last-update time and is renormalized on access.
    """

    def __init__(self, half_life: float = 3 * DAY) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self._heat: Dict[str, Tuple[float, float]] = {}  # key -> (heat, as_of)
        self._clock: float = float("-inf")

    def observe(self, key: str, timestamp: float) -> None:
        """Record one event for ``key`` at ``timestamp``."""
        self._clock = max(self._clock, timestamp)
        heat, as_of = self._heat.get(key, (0.0, timestamp))
        if timestamp >= as_of:
            heat = heat * math.pow(0.5, (timestamp - as_of) / self.half_life)
            heat += 1.0
            self._heat[key] = (heat, timestamp)
        else:
            # late event: decay its unit contribution to the current as_of
            heat += math.pow(0.5, (as_of - timestamp) / self.half_life)
            self._heat[key] = (heat, as_of)

    def observe_snippet(self, key: str, snippet: Snippet) -> None:
        self.observe(key, snippet.timestamp)

    def heat(self, key: str, now: Optional[float] = None) -> float:
        """Current heat of ``key`` (0 for unknown keys)."""
        record = self._heat.get(key)
        if record is None:
            return 0.0
        heat, as_of = record
        reference = self._clock if now is None else now
        if reference <= as_of:
            return heat
        return heat * math.pow(0.5, (reference - as_of) / self.half_life)

    def top(self, k: int = 10, now: Optional[float] = None) -> List[Tuple[str, float]]:
        """Top-``k`` (key, heat) at ``now`` (defaults to the stream clock)."""
        if k <= 0:
            raise ValueError("k must be positive")
        scored = [(key, self.heat(key, now)) for key in self._heat]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    def __len__(self) -> int:
        return len(self._heat)
