"""Empirical source characterization from aligned stories.

Section 1: "leveraging these individual source characteristics can lead to
a significant accuracy improvement for difficult prediction tasks".  This
module recovers, purely from StoryPivot's *output*, the reporting profile
of each data source:

* **coverage** — fraction of cross-source integrated stories the source
  participates in;
* **timeliness** — how often the source is *first* to report an aligned
  snippet pair, and its median publication delay when known;
* **exclusivity** — fraction of its snippets that are enriching
  (source-exclusive);
* **breadth** — number of distinct entities it mentions.

On the synthetic workload this estimates the simulator's hidden source
parameters, which the tests exploit: a wire configured to be fast must
come out more timely than a magazine configured to lag.
"""

from __future__ import annotations

import statistics as _stats
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.alignment import Alignment
from repro.eventdata.models import HOUR


@dataclass(frozen=True)
class SourceReport:
    """Empirical profile of one source."""

    source_id: str
    num_snippets: int
    coverage: float
    first_reporter_rate: float
    median_delay_hours: float
    exclusivity: float
    num_entities: int


def profile_sources(alignment: Alignment) -> Dict[str, SourceReport]:
    """Characterize every source appearing in the alignment."""
    snippets_of: Dict[str, List] = defaultdict(list)
    stories_of: Dict[str, set] = defaultdict(set)
    cross_stories = []
    for aligned in alignment.aligned.values():
        sources = aligned.source_ids
        if len(sources) > 1:
            cross_stories.append(aligned)
        for snippet in aligned.snippets():
            snippets_of[snippet.source_id].append(snippet)
        for source_id in sources:
            stories_of[source_id].add(aligned.aligned_id)

    cross_ids = {a.aligned_id for a in cross_stories}

    # first-reporter: for each counterpart link, who published earlier
    first_counts: Dict[str, int] = defaultdict(int)
    race_counts: Dict[str, int] = defaultdict(int)
    snippet_index = {
        s.snippet_id: s
        for snippets in snippets_of.values()
        for s in snippets
    }
    for link in alignment.links:
        a = snippet_index.get(link.snippet_a)
        b = snippet_index.get(link.snippet_b)
        if a is None or b is None:
            continue
        race_counts[a.source_id] += 1
        race_counts[b.source_id] += 1
        winner = a if (a.published or a.timestamp) <= (b.published or b.timestamp) else b
        first_counts[winner.source_id] += 1

    reports: Dict[str, SourceReport] = {}
    for source_id, snippets in sorted(snippets_of.items()):
        delays = [s.delay() / HOUR for s in snippets if s.delay() > 0]
        entities = set()
        enriching = 0
        for snippet in snippets:
            entities |= snippet.entities
            if alignment.role(snippet.snippet_id) == "enriching":
                enriching += 1
        participates = len(stories_of[source_id] & cross_ids)
        reports[source_id] = SourceReport(
            source_id=source_id,
            num_snippets=len(snippets),
            coverage=(participates / len(cross_ids)) if cross_ids else 0.0,
            first_reporter_rate=(
                first_counts[source_id] / race_counts[source_id]
                if race_counts[source_id] else 0.0
            ),
            median_delay_hours=_stats.median(delays) if delays else 0.0,
            exclusivity=enriching / len(snippets) if snippets else 0.0,
            num_entities=len(entities),
        )
    return reports


def source_report_table(reports: Mapping[str, SourceReport]) -> str:
    """Fixed-width table of source profiles."""
    if not reports:
        return "(no sources)"
    header = (f"{'source':<10} {'snippets':>8} {'coverage':>8} "
              f"{'first%':>7} {'delay(h)':>8} {'exclusive':>9} {'entities':>8}")
    lines = [header, "-" * len(header)]
    for source_id in sorted(reports):
        r = reports[source_id]
        lines.append(
            f"{source_id:<10} {r.num_snippets:>8} {r.coverage:>8.0%} "
            f"{r.first_reporter_rate:>7.0%} {r.median_delay_hours:>8.1f} "
            f"{r.exclusivity:>9.0%} {r.num_entities:>8}"
        )
    return "\n".join(lines)
