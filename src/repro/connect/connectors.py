"""Built-in source connectors: JSONL replay, RSS/Atom, GDELT TSV, simulator.

Each connector is a thin adapter from one upstream format to
:class:`~repro.connect.base.RawItem` streams.  Connectors deliberately do
**no** validation beyond "could I read the container at all": a readable
file full of garbage yields garbage raw items, and the normalizer decides
their fate.  File-backed connectors remember their read offset, so a
repeated ``pull()`` tails newly appended data — the GDELT interval-release
pattern ("updates over fixed time intervals") and the shape a polling
crawl has.
"""

from __future__ import annotations

import json
import os
import re
import urllib.request
import xml.etree.ElementTree as ET
from typing import Dict, Iterator, List, Optional, Tuple

from repro.connect.base import RawItem, SourceConnector, register
from repro.errors import ConfigurationError
from repro.obs.propagate import inject_headers

#: Alias map: loosely standard RawItem key <- upstream spellings, tried in
#: order.  Lets one JSONL connector replay corpus exports, EventRegistry
#: dumps and ad-hoc scraper output without per-format subclasses.
FIELD_ALIASES: Dict[str, Tuple[str, ...]] = {
    "id": ("id", "snippet_id", "guid", "uri", "event_id"),
    "source": ("source", "source_id", "feed", "site", "outlet"),
    "title": ("title", "headline"),
    "description": ("description", "summary", "abstract"),
    "body": ("body", "text", "content", "article"),
    "published": ("published", "pubDate", "pub_date", "published_at",
                  "date", "updated"),
    "timestamp": ("timestamp", "occurred", "occurred_at", "event_time",
                  "eventTime", "sqldate"),
    "entities": ("entities", "actors", "concepts"),
    "keywords": ("keywords", "terms", "tags", "categories"),
    "event_type": ("event_type", "eventType", "cameo"),
    "url": ("url", "link", "source_url"),
    "story_label": ("story_label", "story", "label"),
}


def map_fields(record: Dict[str, object]) -> Dict[str, object]:
    """Project an upstream record onto the standard RawItem keys."""
    fields: Dict[str, object] = {}
    for key, aliases in FIELD_ALIASES.items():
        for alias in aliases:
            if alias in record and record[alias] is not None:
                fields[key] = record[alias]
                break
    return fields


def _require_file(path: str, scheme: str) -> None:
    """Fail construction on a locator that names nothing.

    A mid-run disappearance is transient upstream trouble the resilience
    stack retries, but a path that is already wrong when the connector
    is built is a typo: surface it as the CLIs' ``error: ...``/exit-2
    misuse contract instead of serving an eternally empty feed.
    """
    if not os.path.exists(path):
        raise ConfigurationError(
            f"{scheme} connector: no such file: {path}"
        )


def _read_new_text(path: str, offset: int) -> Tuple[str, int]:
    """Bytes appended past ``offset``, decoded leniently; new offset."""
    with open(path, "rb") as handle:
        handle.seek(offset)
        blob = handle.read()
    return blob.decode("utf-8", errors="replace"), offset + len(blob)


def _is_http_locator(locator: str) -> bool:
    return locator.startswith(("http://", "https://"))


def _fetch_url_text(url: str, timeout: float = 10.0) -> str:
    """One HTTP pull of a remote feed document, decoded leniently.

    The request carries the ambient ``traceparent`` (when the pull runs
    under a ``connect.pull`` span), so a traced ingest cycle is
    attributable end to end — upstream log line to shard integration.
    """
    request = urllib.request.Request(url, headers=inject_headers())
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read().decode("utf-8", errors="replace")


@register("jsonl")
class JsonlReplayConnector(SourceConnector):
    """Replay a JSONL file: corpus exports, recorded fixtures, scraper dumps.

    One JSON object per line; lines that fail to parse are still yielded
    (as a body-only raw item) so the gauntlet can count the rejection —
    a recorded hostile fixture must reproduce its rejections, not skip
    them.  Corpus bookkeeping records (``kind`` of ``corpus``/``source``/
    ``document``) are skipped: the replay unit is the snippet-ish record.
    """

    scheme = "jsonl"

    def __init__(self, locator: str) -> None:
        super().__init__(locator)
        if not locator:
            raise ConfigurationError("jsonl connector needs a file path")
        _require_file(locator, "jsonl")
        self._offset = 0
        self._seq = 0

    def default_source(self) -> Optional[str]:
        base = os.path.basename(self.locator).rsplit(".", 1)[0]
        return base or "jsonl"

    def pull(self) -> Iterator[RawItem]:
        text, self._offset = _read_new_text(self.locator, self._offset)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            self._seq += 1
            try:
                record = json.loads(line)
            except ValueError:
                yield RawItem(self.name, self._seq, {"body": line},
                              note="json_salvaged")
                continue
            if not isinstance(record, dict):
                yield RawItem(self.name, self._seq, {"body": line},
                              note="json_salvaged")
                continue
            if record.get("kind") in ("corpus", "source", "document"):
                continue
            yield RawItem(self.name, self._seq, map_fields(record))


def _local(tag: object) -> str:
    """Element tag without its XML namespace (Atom vs RSS agnostic)."""
    if not isinstance(tag, str):
        return ""
    return tag.rpartition("}")[2].lower()


def _slug(text: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
    return slug[:64]


_ENTRY_BLOCK = re.compile(
    r"<(item|entry)\b[^>]*>(.*?)(?:</\1\s*>|(?=<(?:item|entry)\b)|\Z)",
    re.IGNORECASE | re.DOTALL,
)
_ENTRY_FIELD = re.compile(
    r"<(title|description|summary|content|pubdate|published|updated|guid|id|link)\b[^>]*>"
    r"\s*(?:<!\[CDATA\[)?(.*?)(?:\]\]>)?\s*</\1\s*>",
    re.IGNORECASE | re.DOTALL,
)

_RSS_FIELD_FOR_TAG = {
    "title": "title",
    "description": "description",
    "summary": "description",
    "content": "body",
    "encoded": "body",          # content:encoded
    "pubdate": "published",
    "published": "published",
    "updated": "published",
    "date": "published",        # dc:date
    "guid": "id",
    "id": "id",
    "link": "url",
    "source": "source",
    "category": "keywords",
}


@register("rss")
class RssConnector(SourceConnector):
    """RSS 2.0 / Atom feed connector (stdlib ``xml.etree`` parse).

    A well-formed feed is walked namespace-agnostically, so RSS
    ``<item>`` and Atom ``<entry>`` both work.  A *malformed* feed —
    unclosed tags, stray ampersands, truncated downloads are everyday
    RSS reality — falls back to a regex entry scanner: whatever entries
    can be salvaged are yielded flagged ``markup_salvaged``, and their
    remaining damage is the normalizer's problem.  Only a feed with no
    recognizable entries at all raises (for the retry/breaker stack).
    """

    scheme = "rss"

    def __init__(self, locator: str) -> None:
        super().__init__(locator)
        if not locator:
            raise ConfigurationError(
                "rss connector needs a file path or http(s) URL"
            )
        # rss:http://host/feed.xml polls a live feed; anything else is
        # a local file checked at construction like the other schemes
        if not _is_http_locator(locator):
            _require_file(locator, "rss")
        self._seq = 0
        # insertion-ordered FIFO set, same shape as Normalizer._seen: a
        # long-polled feed must not grow this without bound, and the
        # oldest ids are the ones the feed itself has already rotated out
        self._seen_ids: Dict[str, None] = {}
        self._seen_limit = 4096
        self._feed_title = ""

    def default_source(self) -> Optional[str]:
        if self._feed_title:
            return _slug(self._feed_title)
        base = os.path.basename(self.locator).rsplit(".", 1)[0]
        return _slug(base) or "rss"

    def pull(self) -> Iterator[RawItem]:
        if _is_http_locator(self.locator):
            text = _fetch_url_text(self.locator)
        else:
            text, _ = _read_new_text(self.locator, 0)
        try:
            root = ET.fromstring(text)
        except ET.ParseError:
            entries = list(self._scavenge(text))
            if not entries:
                raise
            yield from self._emit(entries)
            return
        yield from self._emit(self._walk(root))

    # Re-pulling a feed re-reads the whole document (feeds are replaced,
    # not appended), so entry ids already yielded are skipped here — the
    # polling dedup every aggregator does before content-level dedup.
    def _emit(self, entries: List[Tuple[Dict[str, object], str]]
              ) -> Iterator[RawItem]:
        for fields, note in entries:
            marker = str(fields.get("id") or fields.get("url")
                         or fields.get("title") or "")
            if marker and marker in self._seen_ids:
                continue
            if marker:
                self._seen_ids[marker] = None
                while len(self._seen_ids) > self._seen_limit:
                    self._seen_ids.pop(next(iter(self._seen_ids)))
            self._seq += 1
            yield RawItem(self.name, self._seq, fields, note=note)

    def _walk(self, root) -> List[Tuple[Dict[str, object], str]]:
        entries = []
        for element in root.iter():
            tag = _local(element.tag)
            if tag in ("title",) and not self._feed_title:
                # first title in document order is the channel/feed title
                self._feed_title = (element.text or "").strip()
            if tag not in ("item", "entry"):
                continue
            fields: Dict[str, object] = {}
            keywords: List[str] = []
            for child in element:
                ctag = _local(child.tag)
                key = _RSS_FIELD_FOR_TAG.get(ctag)
                if key is None:
                    continue
                value = (child.text or "").strip()
                if ctag == "link" and not value:
                    value = (child.get("href") or "").strip()  # Atom link
                if not value:
                    continue
                if key == "keywords":
                    keywords.append(value)
                elif key not in fields:
                    fields[key] = value
            if keywords:
                fields["keywords"] = keywords
            entries.append((fields, ""))
        return entries

    @staticmethod
    def _scavenge(text: str) -> Iterator[Tuple[Dict[str, object], str]]:
        for match in _ENTRY_BLOCK.finditer(text):
            block = match.group(2)
            fields: Dict[str, object] = {}
            for field_match in _ENTRY_FIELD.finditer(block):
                key = _RSS_FIELD_FOR_TAG.get(field_match.group(1).lower())
                value = field_match.group(2).strip()
                if key and value and key not in fields:
                    fields[key] = value
            if fields:
                yield fields, "markup_salvaged"


@register("gdelt")
class GdeltTailConnector(SourceConnector):
    """Tail a GDELT-flavoured TSV export (the interval-release format).

    The header row (when present) is validated loosely and skipped; each
    data row is projected through the column schema of
    :data:`repro.eventdata.gdelt.GDELT_COLUMNS` into a raw item.  Short
    rows yield what columns they have (the gauntlet rejects them if the
    essentials are missing); long rows — embedded tabs — keep their
    leading columns.  Re-pulling resumes at the remembered byte offset.
    """

    scheme = "gdelt"

    def __init__(self, locator: str) -> None:
        super().__init__(locator)
        if not locator:
            raise ConfigurationError("gdelt connector needs a file path")
        _require_file(locator, "gdelt")
        self._offset = 0
        self._seq = 0
        self._header_skipped = False

    def default_source(self) -> Optional[str]:
        return "gdelt"

    def pull(self) -> Iterator[RawItem]:
        from repro.eventdata.gdelt import GDELT_COLUMNS, CAMEO_CODES

        reverse_cameo = {code: name for name, code in CAMEO_CODES.items()}
        text, self._offset = _read_new_text(self.locator, self._offset)
        for line in text.splitlines():
            if not line.strip():
                continue
            cells = line.split("\t")
            if not self._header_skipped:
                self._header_skipped = True
                if cells[0].strip() == GDELT_COLUMNS[0]:
                    continue
            self._seq += 1
            record = dict(zip(GDELT_COLUMNS, cells))
            note = "" if len(cells) == len(GDELT_COLUMNS) else "tsv_ragged"
            fields: Dict[str, object] = {
                "id": record.get("GLOBALEVENTID"),
                "source": record.get("SourceId"),
                "description": record.get("Description"),
                "entities": record.get("Actors"),
                "keywords": record.get("Keywords"),
                "url": record.get("SOURCEURL"),
                "story_label": record.get("StoryLabel"),
                "timestamp": record.get("TimestampUnix")
                or record.get("SQLDATE"),
                "published": record.get("PublishedUnix"),
                "event_type": reverse_cameo.get(
                    str(record.get("EventCode", "")).strip(), None
                ),
            }
            yield RawItem(
                self.name, self._seq,
                {k: v for k, v in fields.items() if v not in (None, "")},
                note=note,
            )


@register("sim")
class SimConnector(SourceConnector):
    """The in-process simulator as a connector: ``sim:N[:sources[:seed]]``.

    Keeps the synthetic workload reachable through the same ``--source``
    grammar as live feeds, and gives benchmarks a clean corpus whose raw
    and gauntlet-fed forms are byte-identical inputs.
    """

    scheme = "sim"

    def __init__(self, locator: str) -> None:
        super().__init__(locator)
        parts = [p for p in locator.split(":") if p] if locator else []
        try:
            self.total_events = int(parts[0]) if parts else 500
            self.num_sources = int(parts[1]) if len(parts) > 1 else 5
            self.seed = int(parts[2]) if len(parts) > 2 else 42
        except ValueError as exc:
            raise ConfigurationError(
                f"sim spec must be sim:N[:sources[:seed]], got sim:{locator!r}"
            ) from exc
        if self.total_events <= 0 or self.num_sources <= 0:
            raise ConfigurationError("sim events/sources must be positive")
        self._seq = 0

    def default_source(self) -> Optional[str]:
        return "sim"

    def pull(self) -> Iterator[RawItem]:
        from repro.eventdata.sourcegen import synthetic_corpus

        corpus = synthetic_corpus(
            total_events=self.total_events,
            num_sources=self.num_sources,
            seed=self.seed,
        )
        labels = corpus.truth.labels
        for snippet in corpus.snippets_by_publication():
            self._seq += 1
            fields: Dict[str, object] = {
                "id": snippet.snippet_id,
                "source": snippet.source_id,
                "description": snippet.description,
                "body": snippet.text,
                "timestamp": snippet.timestamp,
                "published": snippet.published,
                "entities": sorted(snippet.entities),
                "keywords": list(snippet.keywords),
                "event_type": snippet.event_type,
                "url": snippet.url,
            }
            label = labels.get(snippet.snippet_id)
            if label is not None:
                fields["story_label"] = label
            yield RawItem(self.name, self._seq, fields)
