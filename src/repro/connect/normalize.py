"""The hostile-input normalization gauntlet.

Everything a live feed can throw at a parser lands here, and exactly two
things may come out: a clean :class:`~repro.eventdata.models.Snippet`,
or a :class:`Rejection` with a reason — **never** an exception.  The
categories the gauntlet is built to survive (each exercised by a
recorded fixture in ``tests/fixtures/connect/``):

* messy/ambiguous timestamps — a dozen wire formats, missing
  timezones (assumed UTC, counted), epoch-in-milliseconds;
* encoding damage — invalid UTF-8, mojibake (UTF-8 read as cp1252),
  BOMs, control characters;
* oversized or truncated fields — clipped to budget, counted;
* malformed markup — tags and entities stripped;
* near-duplicate storms — content-fingerprint dedup over a bounded
  window;
* coverage gaps — publication silences beyond a threshold are counted
  (a gap is telemetry, not a defect in the item that ends it);
* clock skew — published-in-the-future beyond a configurable
  tolerance is clamped to the clock, counted.

Salvageable damage is *repaired* and counted per reason
(:data:`REPAIR_REASONS`); unsalvageable records are *rejected* per
reason (:data:`REJECT_REASONS`) for the caller to quarantine.  Repair
vs reject is the normalize-then-admit line DESIGN.md argues for:
downstream code never sees an unnormalized byte.
"""

from __future__ import annotations

import datetime as _dt
import email.utils
import html as _html
import re
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.connect.base import RawItem
from repro.errors import ConfigurationError
from repro.eventdata.models import DAY, HOUR, Snippet

#: repair reasons (salvaged items; counted, admitted)
REPAIR_REASONS = (
    "tz_assumed",          # naive timestamp, UTC assumed
    "epoch_ms",            # epoch given in milliseconds, rescaled
    "timestamp_assumed",   # occurrence time missing, published used
    "encoding_replaced",   # invalid UTF-8 bytes replaced
    "mojibake",            # cp1252-mangled UTF-8 re-decoded
    "bom_stripped",        # byte-order mark removed
    "control_chars",       # C0/C1 control characters removed
    "truncated",           # oversized field clipped to budget
    "markup_stripped",     # HTML/XML tags and entities removed
    "clock_skew_clamped",  # published beyond skew tolerance, clamped
    "published_repaired",  # published before occurrence, lifted
    "id_synthesized",      # record had no id; content hash minted
    "source_assumed",      # record had no source; connector default
    # connector-flagged salvage notes (RawItem.note) also land here:
    "markup_salvaged",     # rss: entry scavenged from broken XML
    "json_salvaged",       # jsonl: unparseable line kept as raw body
    "tsv_ragged",          # gdelt: row with the wrong column count
)

#: rejection reasons (unsalvageable records; counted, quarantined)
REJECT_REASONS = (
    "bad_timestamp",    # no parseable occurrence or publication time
    "missing_source",   # no source id and no connector default
    "empty_content",    # nothing textual survived cleaning
    "near_duplicate",   # content fingerprint already admitted
    "malformed_record", # record is not even a field mapping
    "internal",         # normalizer bug — counted, never raised
)

_BOMS = ("﻿", "￾")
# C0 and C1 control chars minus \t \n \r (which are whitespace-collapsed)
_CONTROL = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f-\x9f]")
_MOJIBAKE_MARKERS = re.compile(r"[ÃÂ]|â€")
_TAG = re.compile(r"<[^<>]{0,512}>")
_SCRIPTISH = re.compile(
    r"<(script|style)\b[^>]*>.*?</\1\s*>", re.IGNORECASE | re.DOTALL
)
_WS = re.compile(r"\s+")
_TOKEN = re.compile(r"[a-z0-9]+")


class _SeparatorTable(dict):
    """str.translate table: keep [a-z0-9], everything else becomes a
    space.  Self-extending, so the first sighting of any code point pays
    the lookup and every later one is a plain dict hit; tokenizing with
    ``text.translate(table).split()`` matches ``_TOKEN.findall(text)``
    on lowercased input but skips the regex engine."""

    def __missing__(self, point: int) -> int:
        keep = 48 <= point <= 57 or 97 <= point <= 122
        result = self[point] = point if keep else 32
        return result


_SEPARATORS = _SeparatorTable()
# one scan deciding whether a field needs any cleaning at all: control
# chars, BOMs, replacement chars, mojibake lead bytes (Â Ã â), markup,
# entities, tab/newline.  Kept a pure character class — adding the
# whitespace alternations (runs of spaces, leading/trailing space) here
# would knock the regex engine off its fast single-class scan, so those
# three checks ride alongside as C-speed string operations in _clean.
_NEEDS_WORK = re.compile(
    "[\x00-\x08\x0b\x0c\x0e-\x1f\x7f-\x9f"
    "﻿￾�<&ÂÃâ\t\n\r]"
)

#: strptime formats tried, in order, after the structured parsers
#: (ISO 8601 via ``fromisoformat``, RFC 822/1123 via ``email.utils``,
#: raw epochs).  Together they cover the 12+ wire formats the golden
#: date suite pins.
TIMESTAMP_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
    "%m/%d/%Y %H:%M",
    "%m/%d/%Y",
    "%Y/%m/%d",
    "%Y%m%d%H%M%S",
    "%Y%m%d",
    "%d %b %Y %H:%M:%S",
    "%d %b %Y",
    "%b %d, %Y",
    "%d.%m.%Y",
)


class _Rejected(Exception):
    """Internal control flow: a record failed the gauntlet."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class Rejection:
    """The normalizer's verdict on an unsalvageable record."""

    raw: RawItem
    reason: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class NormalizedItem:
    """A record that survived the gauntlet (possibly repaired)."""

    snippet: Snippet
    story_label: Optional[str] = None
    repairs: Tuple[str, ...] = ()
    gap_seconds: float = 0.0  # publication silence this item ended


@dataclass(frozen=True)
class NormalizerConfig:
    """Budgets and tolerances of the gauntlet."""

    max_id_chars: int = 256
    max_title_chars: int = 512
    max_body_chars: int = 8192
    max_term_chars: int = 128
    max_terms: int = 64
    skew_tolerance: float = 1 * DAY       # future-published beyond this: clamp
    gap_threshold: float = 12 * HOUR      # per-source silence worth counting
    dedup_window: int = 4096              # content fingerprints remembered
    min_timestamp: float = 0.0            # epoch floor (pre-1970 rejected)
    max_timestamp: float = 4102444800.0   # 2100-01-01: beyond is garbage

    def __post_init__(self) -> None:
        if self.skew_tolerance < 0 or self.gap_threshold < 0:
            raise ConfigurationError("tolerances must be non-negative")
        if self.dedup_window < 0:
            raise ConfigurationError("dedup_window must be non-negative")
        if self.max_timestamp <= self.min_timestamp:
            raise ConfigurationError(
                "max_timestamp must exceed min_timestamp"
            )


class Normalizer:
    """Stateful gauntlet: one instance per connector stream.

    State is the dedup window, the per-source publication cursors (for
    gap detection) and the per-reason counters.  ``clock`` is injected
    so skew handling is deterministic under test; production uses the
    wall clock, which is correct here — admission control is serving
    code, not the deterministic identification core.
    """

    def __init__(
        self,
        config: Optional[NormalizerConfig] = None,
        clock=time.time,
        default_source: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else NormalizerConfig()
        self._clock = clock
        self.default_source = default_source
        self.repairs: Dict[str, int] = {}
        self.rejections: Dict[str, int] = {}
        self.gaps = 0
        self.admitted = 0
        self._seen: Dict[int, None] = {}  # insertion-ordered FIFO set
        self._last_published: Dict[str, float] = {}
        self._synth_counter = 0
        # strings proven clean by a previous fast-path scan; wire feeds
        # repeat source ids, event types, entities and keywords endlessly,
        # so most _clean calls become one dict hit.  Only scan-clean,
        # unclipped strings land here, so a hit has no side effects.
        self._known_clean: Dict[str, None] = {}

    # -- public API --------------------------------------------------------

    # sp-taint: sanitizer -- the gauntlet: output is clean or a Rejection
    # sp-contract: never-raises
    def normalize(
        self, raw: RawItem
    ) -> Union[NormalizedItem, Rejection]:
        """Run one raw item through the gauntlet.  Never raises."""
        try:
            return self._normalize(raw)
        except _Rejected as verdict:
            return self._reject(raw, verdict.reason, verdict.detail)
        except Exception as exc:  # noqa: BLE001 -- the gauntlet's contract
            # is "never a crash": an unforeseen input shape becomes an
            # audited rejection instead of a dead connector stream
            return self._reject(raw, "internal", repr(exc))

    def counts(self) -> Dict[str, Dict[str, int]]:
        return {
            "repaired": dict(self.repairs),
            "rejected": dict(self.rejections),
            "gaps": {"total": self.gaps},
        }

    # -- gauntlet ----------------------------------------------------------

    def _normalize(self, raw: RawItem) -> NormalizedItem:
        fields = raw.fields
        if not isinstance(fields, dict):
            raise _Rejected(
                "malformed_record", f"fields is {type(fields).__name__}"
            )
        get = fields.get
        clean = self._clean
        config = self.config
        repairs: List[str] = []
        if raw.note:
            repairs.append(raw.note)

        source_id = clean(get("source"), config.max_id_chars, repairs)
        if not source_id:
            source_id = self.default_source
            if not source_id:
                raise _Rejected("missing_source")
            repairs.append("source_assumed")

        title = clean(get("title"), config.max_title_chars, repairs)
        description = clean(get("description"), config.max_title_chars,
                            repairs)
        body = clean(get("body"), config.max_body_chars, repairs)
        if not description:
            description = title
        if not (title or description or body):
            raise _Rejected("empty_content")

        timestamp, published = self._when(raw, repairs)
        entities = self._terms(get("entities"), repairs)
        keywords = self._terms(get("keywords"), repairs)
        event_type = clean(get("event_type"), config.max_id_chars,
                           repairs) or "unknown"
        url = clean(get("url"), config.max_title_chars, repairs)
        label = clean(get("story_label"), config.max_id_chars,
                      repairs) or None

        self._check_duplicate(source_id, title, description, body, timestamp)

        snippet_id = clean(get("id"), config.max_id_chars, repairs)
        if not snippet_id:
            snippet_id = self._mint_id(source_id, description, body,
                                       published)
            repairs.append("id_synthesized")

        gap = self._note_gap(source_id, published)

        snippet = Snippet(
            snippet_id=snippet_id,
            source_id=source_id,
            timestamp=timestamp,
            published=published,
            description=description or title,
            entities=frozenset(entities),
            keywords=tuple(keywords),
            text=body or title,
            event_type=event_type,
            url=url,
        )
        self.admitted += 1
        if repairs:
            seen: Dict[str, None] = {}
            ordered = tuple(
                r for r in repairs if not (r in seen or seen.setdefault(r))
            )
            for reason in ordered:
                self.repairs[reason] = self.repairs.get(reason, 0) + 1
        else:
            ordered = ()
        return NormalizedItem(snippet, label, ordered, gap)

    # -- text cleaning -----------------------------------------------------

    def _clean(
        self, value: object, budget: int, repairs: List[str]
    ) -> str:
        """Decode, de-mangle, strip and clip one field value."""
        if value is None:
            return ""
        if type(value) is str:
            if value in self._known_clean and len(value) <= budget:
                return value
            text = value
        elif isinstance(value, bytes):
            text = value.decode("utf-8", errors="replace")
        elif isinstance(value, str):
            text = value
        else:
            text = str(value)
        if (
            _NEEDS_WORK.search(text) is None
            and "  " not in text
            and not text.startswith(" ")
            and not text.endswith(" ")
        ):
            if len(text) > budget:
                text = text[: budget - 1].rstrip() + "…"
                repairs.append("truncated")
                return text
            if len(text) <= 256:
                known = self._known_clean
                known[text] = None
                if len(known) > 8192:
                    known.pop(next(iter(known)))
            return text
        if isinstance(value, bytes) and "�" in text:
            repairs.append("encoding_replaced")
        for bom in _BOMS:
            if bom in text:
                text = text.replace(bom, "")
                repairs.append("bom_stripped")
        if "�" in text:
            stripped = text.replace("�", "")
            if stripped != text:
                text = stripped
                if "encoding_replaced" not in repairs:
                    repairs.append("encoding_replaced")
        if _MOJIBAKE_MARKERS.search(text):
            text = self._demojibake(text, repairs)
        if _CONTROL.search(text):
            text = _CONTROL.sub("", text)
            repairs.append("control_chars")
        if "<" in text and _TAG.search(text):
            text = _SCRIPTISH.sub(" ", text)
            text = _TAG.sub(" ", text)
            repairs.append("markup_stripped")
        if "&" in text:
            unescaped = _html.unescape(text)
            if unescaped != text:
                text = unescaped
                if "markup_stripped" not in repairs:
                    repairs.append("markup_stripped")
        text = _WS.sub(" ", text).strip()
        if len(text) > budget:
            text = text[: budget - 1].rstrip() + "…"
            repairs.append("truncated")
        return text

    @staticmethod
    def _demojibake(text: str, repairs: List[str]) -> str:
        """Undo the classic UTF-8-bytes-read-as-cp1252 mangling.

        Real mojibake contains code points in cp1252's undefined slots
        (0x81, 0x8d, 0x8f, 0x90, 0x9d — they pass through as themselves
        when mis-decoded), so a strict cp1252 encode refuses exactly the
        damaged strings we are after; fall back per-character to latin-1
        for those.
        """
        out = bytearray()
        for char in text:
            try:
                out += char.encode("cp1252")
            except UnicodeEncodeError:
                point = ord(char)
                if point > 0xFF:
                    return text  # genuine non-latin text, not mojibake
                out.append(point)
        try:
            repaired = out.decode("utf-8")
        except UnicodeDecodeError:
            return text
        # only keep the round-trip when it actually removed artifacts
        before = len(_MOJIBAKE_MARKERS.findall(text))
        after = len(_MOJIBAKE_MARKERS.findall(repaired))
        if after < before:
            repairs.append("mojibake")
            return repaired
        return text

    # -- timestamps --------------------------------------------------------

    def _when(
        self, raw: RawItem, repairs: List[str]
    ) -> Tuple[float, float]:
        """(occurrence, published) POSIX seconds, or reject."""
        config = self.config
        raw_published = raw.get("published")
        raw_timestamp = raw.get("timestamp")
        # clean wire feeds send in-range epoch floats: skip the parser
        if (
            type(raw_published) is float
            and config.min_timestamp <= raw_published <= config.max_timestamp
        ):
            published = raw_published
        else:
            published = self._parse_when(raw_published, repairs)
        if (
            type(raw_timestamp) is float
            and config.min_timestamp <= raw_timestamp <= config.max_timestamp
        ):
            timestamp = raw_timestamp
        else:
            timestamp = self._parse_when(raw_timestamp, repairs)
        if timestamp is None and published is None:
            raise _Rejected(
                "bad_timestamp",
                f"published={raw.get('published')!r} "
                f"timestamp={raw.get('timestamp')!r}",
            )
        if timestamp is None:
            timestamp = published
            repairs.append("timestamp_assumed")
        if published is None:
            published = timestamp
        now = self._clock()
        horizon = now + config.skew_tolerance
        if timestamp > horizon or published > horizon:
            # both clocks clamp, or the published<timestamp repair below
            # would lift publication right back into the future
            timestamp = min(timestamp, now)
            published = min(published, now)
            repairs.append("clock_skew_clamped")
        if timestamp > published:
            # an event cannot occur after its own report went out;
            # trust the occurrence time, lift publication up to it
            published = timestamp
            repairs.append("published_repaired")
        return timestamp, published

    def _parse_when(
        self, value: object, repairs: List[str]
    ) -> Optional[float]:
        """One hostile timestamp -> POSIX seconds UTC (None: unparseable)."""
        if value is None:
            return None
        if isinstance(value, bool):  # bool is an int; True is not a time
            return None
        if isinstance(value, (int, float)):
            return self._epoch(float(value), repairs)
        text = self._clean(value, 128, [])
        if not text:
            return None
        # compact yyyymmdd[hhmmss] looks like a number but is a date;
        # try the calendar reading first, fall through on nonsense months
        if re.fullmatch(r"\d{8}|\d{14}", text):
            fmt = "%Y%m%d" if len(text) == 8 else "%Y%m%d%H%M%S"
            try:
                moment = _dt.datetime.strptime(text, fmt)
            except ValueError:
                moment = None  # nonsense month/day: read it as an epoch
            if moment is not None:
                seconds = moment.replace(tzinfo=_dt.timezone.utc).timestamp()
                if self.config.min_timestamp <= seconds <= self.config.max_timestamp:
                    repairs.append("tz_assumed")
                    return seconds
        # raw epoch, possibly in milliseconds, possibly fractional
        try:
            return self._epoch(float(text), repairs)
        except (ValueError, OverflowError):
            pass
        # ISO 8601 (fromisoformat handles offsets; 'Z' needs help on 3.10)
        iso = text[:-1] + "+00:00" if text.endswith(("Z", "z")) else text
        try:
            moment = _dt.datetime.fromisoformat(iso)
        except ValueError:
            moment = None
        if moment is None:
            # RFC 822/1123 (the RSS pubDate family)
            try:
                moment = email.utils.parsedate_to_datetime(text)
            except (TypeError, ValueError, IndexError):
                moment = None
        if moment is None:
            for fmt in TIMESTAMP_FORMATS:
                try:
                    moment = _dt.datetime.strptime(text, fmt)
                    break
                except ValueError:
                    continue
        if moment is None:
            return None
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=_dt.timezone.utc)
            repairs.append("tz_assumed")
        try:
            seconds = moment.timestamp()
        except (OverflowError, OSError, ValueError):
            return None
        if not self.config.min_timestamp <= seconds <= self.config.max_timestamp:
            return None
        return seconds

    def _epoch(self, value: float, repairs: List[str]) -> Optional[float]:
        if value != value or value in (float("inf"), float("-inf")):
            return None
        rescaled = abs(value) >= 1e12  # epoch given in milliseconds
        if rescaled:
            value /= 1000.0
        if not self.config.min_timestamp <= value <= self.config.max_timestamp:
            return None  # no repair note for a value that didn't parse
        if rescaled:
            repairs.append("epoch_ms")
        return value

    # -- lists -------------------------------------------------------------

    def _terms(self, value: object, repairs: List[str]) -> List[str]:
        """Coerce an entity/keyword field into a clean, bounded list."""
        if value is None:
            return []
        config = self.config
        if type(value) is list and value:
            # fast path: a short, duplicate-free list of strings this
            # stream has already proven clean needs no per-part work
            try:
                distinct = frozenset(value)
            except TypeError:
                distinct = None  # unhashable parts: take the slow path
            if (
                distinct is not None
                and len(distinct) == len(value)
                and len(value) <= config.max_terms
                and "" not in distinct
                and self._known_clean.keys() >= distinct
                and max(map(len, value)) <= config.max_term_chars
            ):
                return list(value)
        if isinstance(value, (str, bytes)):
            text = self._clean(value, self.config.max_body_chars, repairs)
            parts: List[object] = re.split(r"[;,]", text)
        elif isinstance(value, (list, tuple, set, frozenset)):
            parts = sorted(value, key=str) if isinstance(
                value, (set, frozenset)
            ) else list(value)
        else:
            parts = [value]
        terms: List[str] = []
        budget = self.config.max_term_chars
        max_terms = self.config.max_terms
        known = self._known_clean
        for part in parts:
            if type(part) is str and part in known and len(part) <= budget:
                term = part  # proven clean by an earlier scan
            else:
                term = self._clean(part, budget, repairs)
            if term and term not in terms:
                terms.append(term)
            if len(terms) >= max_terms:
                repairs.append("truncated")
                break
        return terms

    # -- dedup / gaps / ids ------------------------------------------------

    def _check_duplicate(
        self,
        source_id: str,
        title: str,
        description: str,
        body: str,
        timestamp: float,
    ) -> None:
        """Near-duplicate storm defence: token-set fingerprint window.

        Case, punctuation, whitespace, markup and encoding noise have
        already been normalized away, so two "near" duplicates collapse
        to the same token set; the day bucket keeps a genuinely
        recurring daily item from being eaten forever.
        """
        if not self.config.dedup_window:
            return
        text = f"{title} {description} {body}" if title else (
            f"{description} {body}"
        )
        tokens = frozenset(text.lower().translate(_SEPARATORS).split())
        key = hash((source_id, int(timestamp // DAY), tokens))
        if key in self._seen:
            raise _Rejected("near_duplicate", f"{source_id}: {title[:40]!r}")
        self._seen[key] = None
        while len(self._seen) > self.config.dedup_window:
            self._seen.pop(next(iter(self._seen)))

    def _note_gap(self, source_id: str, published: float) -> float:
        cursors = self._last_published
        last = cursors.get(source_id)
        if last is None:
            cursors[source_id] = published
            return 0.0
        if published <= last:
            return 0.0  # out-of-order arrival: cursor holds the high water
        cursors[source_id] = published
        silence = published - last
        if silence >= self.config.gap_threshold:
            self.gaps += 1
            return silence
        return 0.0

    def _mint_id(
        self, source_id: str, description: str, body: str, published: float
    ) -> str:
        digest = zlib.crc32(
            f"{source_id}|{description}|{body}|{published}".encode("utf-8")
        )
        self._synth_counter += 1
        return f"{source_id}:gen{digest:08x}-{self._synth_counter:04d}"

    # -- rejection ---------------------------------------------------------

    def _reject(self, raw: RawItem, reason: str, detail: str) -> Rejection:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        return Rejection(raw, reason, detail)
