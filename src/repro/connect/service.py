"""Connector service layer: resilient pull loop into the sharded runtime.

:class:`ConnectorStream` is the assembly the CLIs mount behind
``--source``: connector pulls ride the resilience stack (retry policy +
circuit breaker + optional deadline), every raw item runs the
normalization gauntlet, admitted snippets flow out as an ordinary
snippet iterable (so ``runtime.consume(stream)`` just works), and
rejected items are quarantined through :meth:`ShardedRuntime.reject`
with per-connector/per-reason counters on ``/metricz`` and
``connect.pull`` / ``connect.normalize`` spans on the trace.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional

from repro.connect.base import RawItem, SourceConnector
from repro.connect.normalize import (
    NormalizedItem,
    Normalizer,
    NormalizerConfig,
    Rejection,
)
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet, Source
from repro.obs import NULL_TRACER

#: sentinel for exhausted pulls (``next(it, default)`` keeps StopIteration
#: out of span scopes, where it would be misrecorded as a pull error)
_DONE = object()


def build_resilient_feed(
    feed,
    injector=None,
    name: str = "feed",
    retry=None,
    breaker=None,
    sleep=None,
):
    """The one way a feed gets chaos-wrapped and made resilient.

    Previously copy-pasted by ``storypivot-serve`` and the API server's
    ``--follow`` path; any new feed mount (connectors included) should go
    through here so fault injection and retry/breaker defaults stay in a
    single place.
    """
    from repro.eventdata.eventregistry import ResilientFeed

    if injector is not None:
        feed = injector.wrap_feed(feed, site=name)
    return ResilientFeed(feed, retry=retry, breaker=breaker, sleep=sleep,
                         name=name)


def quarantine_snippet(
    raw: RawItem,
    reason: str,
    default_source: str = "unknown",
    clock=time.time,
) -> Snippet:
    """A minimal, always-valid snippet standing in for a rejected input.

    The DLQ records full snippets; a rejected raw item may not have
    yielded one, so we synthesize the smallest honest representative:
    enough of the raw payload to audit, stamped with quarantine time.
    """
    def text_of(key: str) -> str:
        value = raw.get(key)
        if isinstance(value, bytes):
            return value.decode("utf-8", errors="replace")
        return str(value) if value is not None else ""

    description = (
        text_of("description") or text_of("title") or text_of("body")
    )[:200]
    source = text_of("source").strip()[:64] or default_source or "unknown"
    return Snippet(
        snippet_id=f"reject:{raw.connector}:{raw.seq}",
        source_id=source,
        timestamp=float(clock()),
        description=description or f"rejected raw item ({reason})",
        event_type="rejected",
    )


class ConnectorStream:
    """Iterate a connector's admitted snippets; account for the rest.

    The stream is an ordinary ``Iterable[Snippet]``: pass it straight to
    :meth:`ShardedRuntime.consume`.  Internally each pull is retried on
    the policy schedule behind a circuit breaker (hard-down upstreams
    trip open instead of being hammered), optionally bounded by a
    deadline, and each survivor of the gauntlet is admitted exactly once.
    """

    def __init__(
        self,
        connector: SourceConnector,
        runtime=None,
        normalizer: Optional[Normalizer] = None,
        config: Optional[NormalizerConfig] = None,
        metrics=None,
        tracer=None,
        retry=None,
        breaker=None,
        sleep=None,
        deadline_seconds: Optional[float] = None,
        clock=time.time,
        injector=None,
    ) -> None:
        from repro.resilience.breaker import CircuitBreaker
        from repro.resilience.policies import RetryPolicy

        self.connector = connector
        self.runtime = runtime
        self.normalizer = normalizer if normalizer is not None else Normalizer(
            config=config, clock=clock,
            default_source=connector.default_source(),
        )
        if metrics is None and runtime is not None:
            metrics = runtime.metrics
        self.metrics = metrics
        if tracer is None and runtime is not None:
            tracer = runtime.tracer
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=4, base_delay=0.05, factor=2.0, max_delay=1.0
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name=connector.name, failure_threshold=0.5, window=20,
            min_calls=5, reset_timeout=2.0,
        )
        self._sleep = sleep
        self.deadline_seconds = deadline_seconds
        self._clock = clock
        self._injector = injector
        self.pulled = 0
        self.admitted = 0
        self.rejected = 0
        self.labels: Dict[str, str] = {}

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Snippet]:
        from repro.resilience.deadline import Deadline
        from repro.resilience.policies import resilient_iter

        raw_items = self.connector.pull()
        if self._injector is not None:
            raw_items = self._injector.wrap_feed(
                raw_items, site=f"connect.{self.connector.scheme}"
            )
        kwargs = {"retry": self.retry, "breaker": self.breaker,
                  "key": self.connector.name}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        if self.deadline_seconds is not None:
            kwargs["deadline"] = Deadline.after(self.deadline_seconds)
        pulls = resilient_iter(raw_items, **kwargs)
        scheme = self.connector.scheme or "raw"
        while True:
            with self.tracer.span("connect.pull", connector=scheme):
                raw = next(pulls, _DONE)
            if raw is _DONE:
                break
            self.pulled += 1
            if self.metrics is not None:
                self.metrics.counter("connect.pulled", connector=scheme).inc()
            with self.tracer.span("connect.normalize", connector=scheme) as span:
                verdict = self.normalizer.normalize(raw)
                snippet = self._account(verdict, span)
            if snippet is not None:
                yield snippet

    def _account(self, verdict, span) -> Optional[Snippet]:
        scheme = self.connector.scheme or "raw"
        if isinstance(verdict, Rejection):
            self.rejected += 1
            span.set(outcome="rejected", reason=verdict.reason)
            if self.metrics is not None:
                self.metrics.counter(
                    "connect.rejected", connector=scheme,
                    reason=verdict.reason,
                ).inc()
            if self.runtime is not None:
                self.runtime.reject(
                    quarantine_snippet(
                        verdict.raw, verdict.reason,
                        default_source=self.normalizer.default_source
                        or "unknown",
                        clock=self._clock,
                    ),
                    verdict.reason,
                    verdict.detail,
                )
            return None
        assert isinstance(verdict, NormalizedItem)
        self.admitted += 1
        span.set(outcome="admitted", repairs=len(verdict.repairs))
        if verdict.story_label:
            self.labels[verdict.snippet.snippet_id] = verdict.story_label
        if self.metrics is not None:
            self.metrics.counter("connect.admitted", connector=scheme).inc()
            for reason in verdict.repairs:
                self.metrics.counter(
                    "connect.repaired", connector=scheme, reason=reason
                ).inc()
            if verdict.gap_seconds:
                self.metrics.counter("connect.gaps", connector=scheme).inc()
                self.metrics.histogram(
                    "connect.gap_seconds", connector=scheme
                ).observe(verdict.gap_seconds)
        return verdict.snippet

    # -- reporting ---------------------------------------------------------

    def counts(self) -> Dict[str, object]:
        summary = self.normalizer.counts()
        summary["stream"] = {
            "pulled": self.pulled,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
        return summary

    def render_report(self) -> str:
        """One human line per category, for the serve CLI's epilogue."""
        counts = self.normalizer.counts()
        repaired = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(counts["repaired"].items())
        ) or "none"
        rejected = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(counts["rejected"].items())
        ) or "none"
        return (
            f"connect[{self.connector.name}]: {self.pulled} pulled, "
            f"{self.admitted} admitted, {self.rejected} rejected; "
            f"repairs: {repaired}; rejections: {rejected}; "
            f"gaps: {self.normalizer.gaps}"
        )


def source_corpus_shell(spec: str, connector=None) -> Corpus:
    """An empty corpus shell naming a live connector as its provenance.

    The API server's view refresher wants a corpus for source metadata;
    a live connector has no corpus, so it gets a shell carrying just the
    connector's default source.
    """
    corpus = Corpus(f"connect:{spec}")
    default = connector.default_source() if connector is not None else None
    if default:
        corpus.add_source(Source(default, default, kind="feed"))
    return corpus
