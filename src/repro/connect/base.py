"""Connector contract and registry.

A *connector* adapts one upstream format to a stream of raw items; the
registry maps URL-ish specs (``scheme:locator``) to connector factories
so ``storypivot-serve --source rss:feed.xml`` can name any registered
source from the shell.  Connectors make **no** promises about their
output beyond "it is a dict of whatever the upstream said" — cleaning,
validation and admission are the normalizer's job, which is what lets a
connector author stay a thin, dumb adapter (see ADDING_SOURCES.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError


@dataclass(slots=True)
class RawItem:
    """One untrusted upstream record, exactly as the connector saw it.

    ``fields`` holds the raw values (strings, bytes, numbers — whatever
    the wire format produced) under loosely standard keys: ``id``,
    ``source``, ``title``, ``body``, ``description``, ``published``,
    ``timestamp``, ``entities``, ``keywords``, ``event_type``, ``url``,
    ``story_label``.  Missing keys are normal; garbage values are
    normal; the normalizer decides what survives.  ``note`` lets a
    connector flag items it already knows are damaged (e.g. an
    unparseable feed entry it salvaged by regex).
    """

    connector: str
    seq: int
    fields: Dict[str, object] = field(default_factory=dict)
    note: str = ""

    def get(self, key: str, default: object = None) -> object:
        return self.fields.get(key, default)


class SourceConnector:
    """Base class for connectors: iterate raw items, never normalize.

    Subclasses set :attr:`scheme` and implement :meth:`pull`.  ``pull``
    may raise on transient upstream trouble — the service layer retries
    it behind the resilience stack — but a *readable* input containing
    garbage records must yield those records as :class:`RawItem`\\ s
    rather than raising, so one mangled entry costs one rejection, not
    the whole feed.
    """

    scheme = ""

    def __init__(self, locator: str) -> None:
        self.locator = locator
        self.name = f"{self.scheme}:{locator}" if locator else self.scheme

    def pull(self) -> Iterator[RawItem]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[RawItem]:
        return self.pull()

    def default_source(self) -> Optional[str]:
        """Source id to assume for items that carry none (None = reject)."""
        return None


class ConnectorRegistry:
    """scheme -> connector factory, resolved from ``scheme:locator`` specs."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[str], SourceConnector]] = {}

    def register(
        self, scheme: str
    ) -> Callable[[Callable[[str], SourceConnector]], Callable]:
        """Decorator: ``@registry.register("rss")`` on a factory/class."""
        if not scheme or ":" in scheme:
            raise ConfigurationError(
                f"connector scheme must be a bare word, got {scheme!r}"
            )

        def wrap(factory: Callable[[str], SourceConnector]):
            if scheme in self._factories:
                raise ConfigurationError(
                    f"connector scheme {scheme!r} already registered"
                )
            self._factories[scheme] = factory
            return factory

        return wrap

    def schemes(self) -> List[str]:
        return sorted(self._factories)

    def create(self, spec: str) -> SourceConnector:
        """Instantiate the connector a ``scheme:locator`` spec names."""
        if not spec or not spec.strip():
            raise ConfigurationError("empty --source spec")
        scheme, _, locator = spec.partition(":")
        factory = self._factories.get(scheme)
        if factory is None:
            raise ConfigurationError(
                f"unknown connector scheme {scheme!r} in {spec!r}; "
                f"registered: {', '.join(self.schemes()) or '(none)'}"
            )
        return factory(locator)


#: The process-wide registry the CLIs resolve ``--source`` specs against.
REGISTRY = ConnectorRegistry()


def register(scheme: str):
    """Module-level sugar for :meth:`ConnectorRegistry.register`."""
    return REGISTRY.register(scheme)


def open_source(spec: str) -> SourceConnector:
    """Resolve a ``--source`` spec against the global registry."""
    import repro.connect.connectors  # noqa: F401  (registers built-ins)

    return REGISTRY.create(spec)
