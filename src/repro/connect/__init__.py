"""Pluggable live-source connectors behind a hostile-input gauntlet.

The paper pitches StoryPivot as a framework over live feeds —
EventRegistry documents, GDELT-style interval releases — yet a repro fed
only by its own simulator never learns what the real internet does to a
parser.  This package is the admission layer that closes the gap:

* :mod:`repro.connect.base` — the :class:`ConnectorRegistry` and the
  ``scheme:locator`` spec grammar (``jsonl:events.jsonl``,
  ``rss:feed.xml``, ``gdelt:export.tsv``, ``sim:500``);
* :mod:`repro.connect.connectors` — the built-in connectors, each
  yielding **raw, untrusted** :class:`~repro.connect.base.RawItem`\\ s;
* :mod:`repro.connect.normalize` — the :class:`Normalizer` gauntlet
  every raw item must survive before it becomes a
  :class:`~repro.eventdata.models.Snippet`: hostile timestamps,
  encoding damage, oversized fields, markup, near-duplicate storms,
  clock skew.  Salvageable inputs are repaired and counted per reason;
  unsalvageable ones are *rejected* (never a crash) and routed to the
  dead-letter queue;
* :mod:`repro.connect.service` — the resilient pull loop gluing a
  connector + normalizer to the sharded runtime, with
  ``connect.pull``/``connect.normalize`` spans and per-connector,
  per-reason metrics on ``/metricz``.

Design stance (normalize-then-admit): nothing downstream of this
package ever sees an unnormalized byte.  See DESIGN.md.
"""

from repro.connect.base import (
    ConnectorRegistry,
    RawItem,
    REGISTRY,
    SourceConnector,
    open_source,
    register,
)
from repro.connect.normalize import (
    NormalizedItem,
    NormalizerConfig,
    Normalizer,
    Rejection,
    REPAIR_REASONS,
    REJECT_REASONS,
)
from repro.connect.service import (
    ConnectorStream,
    build_resilient_feed,
    source_corpus_shell,
)

__all__ = [
    "ConnectorRegistry",
    "ConnectorStream",
    "NormalizedItem",
    "Normalizer",
    "NormalizerConfig",
    "RawItem",
    "REGISTRY",
    "REJECT_REASONS",
    "REPAIR_REASONS",
    "Rejection",
    "SourceConnector",
    "build_resilient_feed",
    "open_source",
    "register",
    "source_corpus_shell",
]
