"""Circuit breaker: stop hammering a dependency that is already down.

Retries handle *blips*; a breaker handles *outages*.  It watches a
sliding window of recent call outcomes and, when the failure rate
crosses a threshold, moves

``closed`` → ``open``
    every call is refused immediately (``CircuitOpenError`` carries a
    retry hint) so a dead feed or KB endpoint costs microseconds, not a
    full retry schedule per lookup;
``open`` → ``half-open``
    after ``reset_timeout`` on the (injectable) clock, a bounded number
    of probe calls are let through;
``half-open`` → ``closed`` / back to ``open``
    enough probe successes close it and clear the window; any probe
    failure reopens it and restarts the timeout.

State transitions and refusals are visible in the metrics registry as
``breaker.<name>.state`` (0 closed / 1 half-open / 2 open),
``breaker.<name>.opened`` and ``breaker.<name>.rejected``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError, StoryPivotError
from repro.obs.trace import add_event

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitOpenError(StoryPivotError):
    """The breaker refused the call without attempting it."""

    def __init__(self, name: str, retry_after: float) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry in {retry_after:.2f}s"
        )
        self.name = name
        self.retry_after = retry_after


class CircuitBreaker:
    """Failure-rate windowed breaker with half-open probing."""

    def __init__(
        self,
        name: str = "default",
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1 or half_open_probes < 1:
            raise ConfigurationError(
                "window, min_calls and half_open_probes must be positive"
            )
        if reset_timeout < 0:
            raise ConfigurationError("reset_timeout must be non-negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._window: Deque[bool] = deque(maxlen=window)  # True = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0
        self._on_transition = on_transition
        self._metrics = metrics
        if metrics is not None:
            metrics.gauge(f"breaker.{name}.state").set(0)
            metrics.counter(f"breaker.{name}.opened")
            metrics.counter(f"breaker.{name}.rejected")

    # -- state machine (callers hold no lock) ------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def failure_rate(self) -> float:
        with self._lock:
            if not self._window:
                return 0.0
            return sum(self._window) / len(self._window)

    def _transition_locked(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old == new_state:
            return
        add_event(
            "breaker.transition", breaker=self.name,
            from_state=old, to_state=new_state,
        )
        if self._metrics is not None:
            self._metrics.gauge(f"breaker.{self.name}.state").set(
                _STATE_VALUE[new_state]
            )
            if new_state == OPEN:
                self._metrics.counter(f"breaker.{self.name}.opened").inc()
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._probes_inflight = 0
            self._probe_successes = 0
            self._transition_locked(HALF_OPEN)

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits bounded probes."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_inflight < self.half_open_probes:
                    self._probes_inflight += 1
                    return True
                return False
            return False

    def retry_after(self) -> float:
        """Seconds until the breaker will next admit a probe."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self._opened_at + self.reset_timeout - self._clock()
            )

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._window.clear()
                    self._transition_locked(CLOSED)
                return
            self._window.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._opened_at = self._clock()
                self._transition_locked(OPEN)
                return
            self._window.append(True)
            if (
                self._state == CLOSED
                and len(self._window) >= self.min_calls
                and sum(self._window) / len(self._window)
                >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition_locked(OPEN)

    # -- convenience -------------------------------------------------------

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow():
            if self._metrics is not None:
                self._metrics.counter(f"breaker.{self.name}.rejected").inc()
            add_event("breaker.rejected", breaker=self.name)
            raise CircuitOpenError(self.name, self.retry_after())
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def call_with_retry(
        self,
        fn: Callable,
        *args,
        retry,
        key: str = "",
        sleep: Callable[[float], None] = time.sleep,
        deadline=None,
        **kwargs,
    ):
        """Run ``fn`` on ``retry``'s schedule, each attempt through the
        breaker.  An open circuit is *not* retried against — the
        :class:`CircuitOpenError` propagates immediately, since the
        breaker already knows further attempts are pointless."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.call(fn, *args, **kwargs)
            except CircuitOpenError:
                raise
            except Exception:
                if attempt >= retry.max_attempts:
                    raise
                pause = retry.delay(attempt, key=key)
                if deadline is not None and deadline.remaining() < pause:
                    raise
                if pause:
                    sleep(pause)
