"""Deadlines: absolute time budgets that propagate down call stacks.

A retry loop without a deadline happily spends 30 seconds "recovering"
work the caller abandoned after two.  A :class:`Deadline` is an absolute
point on the monotonic clock; layers hand the *same* deadline down
(feed pull → retry policy → breaker wait) so the total budget is bounded
end to end instead of multiplying per layer.

:func:`deadline_scope` offers ambient propagation through a
``contextvars`` variable for code paths where threading the object
explicitly would be invasive; nested scopes always tighten (the
effective deadline is the minimum).
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Callable, Iterator, Optional

from repro.errors import StoryPivotError


class DeadlineExceeded(StoryPivotError, TimeoutError):
    """An operation outlived its time budget."""


class Deadline:
    """An absolute expiry on an injectable monotonic clock."""

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        if seconds < 0:
            raise ValueError("deadline budget must be non-negative")
        return cls(clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline")

    def tightened(self, other: Optional["Deadline"]) -> "Deadline":
        """The stricter of two deadlines (identity when ``other`` is None)."""
        if other is None or self.expires_at <= other.expires_at:
            return self
        return other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


_CURRENT: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "storypivot_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The ambient deadline of the calling context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def deadline_scope(seconds: float) -> Iterator[Deadline]:
    """Bind an ambient deadline for the dynamic extent of the block.

    Nesting tightens: an inner scope can only shorten the effective
    budget, never extend what an outer caller granted.
    """
    deadline = Deadline.after(seconds).tightened(_CURRENT.get())
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
