"""Per-shard dead-letter queue: quarantine for poison snippets.

A snippet that keeps failing identification must not take its shard down
(supervisor restarts just replay the crash) nor be dropped silently (the
operator can never audit what was lost).  The DLQ is the third path:
after the retry policy is exhausted the worker appends the snippet —
with the error that condemned it and the attempt count — to an
append-only JSONL file next to the shard's WAL, and moves on.

``storypivot-serve --replay-dlq`` drains the files back through normal
ingestion once the underlying bug/outage is fixed; records that fail
again simply land back in quarantine, so replay is safe to run
repeatedly.  A DLQ constructed without a path is memory-only (used by
runtimes that also run without a WAL).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.persistence import snippet_from_record, snippet_record
from repro.eventdata.models import Snippet

RECORD_KIND = "dead-letter"


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined snippet plus the evidence against it."""

    snippet: Snippet
    error: str
    attempts: int
    shard_id: int
    quarantined_at: float

    def to_record(self) -> dict:
        record = snippet_record(self.snippet)
        record["kind"] = RECORD_KIND
        record["error"] = self.error
        record["attempts"] = self.attempts
        record["shard_id"] = self.shard_id
        record["quarantined_at"] = self.quarantined_at
        return record

    @classmethod
    def from_record(cls, record: dict) -> "DeadLetter":
        return cls(
            snippet=snippet_from_record(record),
            error=str(record.get("error", "")),
            attempts=int(record.get("attempts", 1)),
            shard_id=int(record.get("shard_id", -1)),
            quarantined_at=float(record.get("quarantined_at", 0.0)),
        )


class DeadLetterQueue:
    """Append-only quarantine, optionally persisted as JSONL.

    Existing records are loaded on construction so a resumed runtime
    keeps its quarantine; torn tail lines (kill mid-append) are dropped,
    mirroring the WAL's tolerance.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = path
        self._clock = clock  # injected so tests can pin quarantine stamps
        self._lock = threading.Lock()
        self._records: List[DeadLetter] = []
        self._handle = None
        if path is not None and os.path.exists(path):
            self._records = self._load(path)

    @staticmethod
    def _load(path: str) -> List[DeadLetter]:
        records: List[DeadLetter] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("kind") != RECORD_KIND:
                        continue
                    records.append(DeadLetter.from_record(record))
                except (ValueError, KeyError, TypeError):
                    break  # torn tail from a kill mid-append
        return records

    # -- writing -----------------------------------------------------------

    def append(
        self,
        snippet: Snippet,
        error: str,
        attempts: int,
        shard_id: int = -1,
    ) -> DeadLetter:
        letter = DeadLetter(
            snippet=snippet,
            error=error,
            attempts=attempts,
            shard_id=shard_id,
            quarantined_at=self._clock(),
        )
        with self._lock:
            self._records.append(letter)
            if self.path is not None:
                if self._handle is None:
                    # sp-lint: disable=SP201 -- lazy one-time JSONL open; this lock is what serializes appends
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(json.dumps(letter.to_record()) + "\n")
                self._handle.flush()
        return letter

    # -- reading / draining ------------------------------------------------

    def records(self) -> List[DeadLetter]:
        with self._lock:
            return list(self._records)

    def snippets(self) -> List[Snippet]:
        return [letter.snippet for letter in self.records()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def take_all(self) -> List[DeadLetter]:
        """Atomically drain for replay: empties memory and the file.

        Replay re-offers the snippets through ordinary ingestion; any
        that fail again are re-appended by the worker, so nothing is
        lost if replay itself hits the same poison.
        """
        with self._lock:
            drained = self._records
            self._records = []
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if self.path is not None and os.path.exists(self.path):
                # sp-lint: disable=SP201 -- truncation must be atomic with the drain or a crash replays twice
                with open(self.path, "w", encoding="utf-8"):
                    pass
        return drained

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
