"""Deterministic fault injection: chaos you can replay byte for byte.

Robustness that is only claimed rots; robustness that is *exercised* on
every test run and CI ingest stays true.  The :class:`FaultInjector`
wraps the seams of the system — feed pulls, shard processing, WAL file
I/O, arbitrary callables (KB lookups) — and injects configurable faults:

* feed: exceptions (raised *before* an item is consumed, so a retried
  pull loses nothing), latency spikes, duplicated items, adjacent-pair
  reorders;
* shard: transient errors (fail once, succeed on retry) and sticky
  poison (fail every attempt → dead-letter queue);
* WAL: torn writes — the tail of a just-appended record is truncated,
  exactly the artifact of a crash mid-``write(2)``;
* callables: plain injected exceptions at a given rate.

Determinism: every injection site draws from its **own** RNG seeded by
``(seed, profile, site)``, and per-snippet decisions are memoized, so
the fault sequence at each site is a pure function of the seed, the
profile and that site's traffic — independent of thread interleaving,
retries and wall clocks.  Same seed + profile ⇒ same faults.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError


class InjectedFaultError(RuntimeError):
    """A deliberately injected failure (transient unless poison)."""

    def __init__(self, site: str, kind: str, detail: str = "") -> None:
        super().__init__(
            f"injected {kind} fault at {site}" + (f": {detail}" if detail else "")
        )
        self.site = site
        self.kind = kind


class InjectedPoisonError(InjectedFaultError):
    """An injected failure that recurs on every attempt (true poison)."""


@dataclass(frozen=True)
class FaultProfile:
    """Per-site fault rates (all probabilities in [0, 1])."""

    name: str = "default"
    feed_error_rate: float = 0.05
    feed_latency_rate: float = 0.02
    duplicate_rate: float = 0.03
    reorder_rate: float = 0.03
    shard_transient_rate: float = 0.03
    shard_poison_rate: float = 0.01
    torn_write_rate: float = 0.0
    kb_error_rate: float = 0.05
    latency_seconds: float = 0.001

    def __post_init__(self) -> None:
        for field_name in (
            "feed_error_rate", "feed_latency_rate", "duplicate_rate",
            "reorder_rate", "shard_transient_rate", "shard_poison_rate",
            "torn_write_rate", "kb_error_rate",
        ):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{field_name} must be in [0, 1]")
        if self.latency_seconds < 0:
            raise ConfigurationError("latency_seconds must be non-negative")


PROFILES: Dict[str, FaultProfile] = {
    "off": FaultProfile(
        name="off", feed_error_rate=0.0, feed_latency_rate=0.0,
        duplicate_rate=0.0, reorder_rate=0.0, shard_transient_rate=0.0,
        shard_poison_rate=0.0, torn_write_rate=0.0, kb_error_rate=0.0,
    ),
    "default": FaultProfile(name="default"),
    "feed-flap": FaultProfile(
        name="feed-flap", feed_error_rate=0.35, feed_latency_rate=0.05,
        duplicate_rate=0.05, reorder_rate=0.05,
        shard_transient_rate=0.0, shard_poison_rate=0.0,
    ),
    "poison": FaultProfile(
        name="poison", feed_error_rate=0.02,
        shard_transient_rate=0.08, shard_poison_rate=0.05,
    ),
    "torn-wal": FaultProfile(
        name="torn-wal", feed_error_rate=0.02, torn_write_rate=0.08,
        shard_transient_rate=0.02, shard_poison_rate=0.0,
    ),
}


def resolve_profile(profile) -> FaultProfile:
    """Accept a profile name or a :class:`FaultProfile` instance."""
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos profile {profile!r}; "
            f"choose from {sorted(PROFILES)}"
        )


@dataclass(frozen=True)
class InjectedFault:
    """One injected fault, for determinism assertions and audits."""

    seq: int
    site: str
    kind: str
    detail: str = ""


class FaultInjector:
    """Seeded, deterministic fault source for every seam of the system."""

    def __init__(
        self,
        seed: int = 0,
        profile="default",
        metrics=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.seed = seed
        self.profile = resolve_profile(profile)
        self.metrics = metrics
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        self._snippet_fates: Dict[str, str] = {}
        self._transient_fired: set = set()
        self.log: List[InjectedFault] = []
        if metrics is not None:
            metrics.counter("faults.injected")

    # -- bookkeeping -------------------------------------------------------

    def _rng(self, site: str) -> random.Random:
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None:
                # string seeding hashes the bytes: stable across processes
                rng = random.Random(
                    f"{self.seed}:{self.profile.name}:{site}"
                )
                self._rngs[site] = rng
            return rng

    def _record(self, site: str, kind: str, detail: str = "") -> None:
        with self._lock:
            fault = InjectedFault(len(self.log), site, kind, detail)
            self.log.append(fault)
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
            self.metrics.counter(f"faults.injected.{kind}").inc()

    def faults(self, site: Optional[str] = None) -> List[InjectedFault]:
        with self._lock:
            log = list(self.log)
        if site is None:
            return log
        return [fault for fault in log if fault.site == site]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for fault in self.faults():
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    # -- feed wrapper ------------------------------------------------------

    def wrap_feed(self, items: Iterable, site: str = "feed") -> "FaultyFeed":
        return FaultyFeed(self, items, site)

    # -- shard processing hook ---------------------------------------------

    def shard_fault_hook(self, shard_id: int) -> Callable:
        """A per-snippet hook for :attr:`Shard.fault_hook`.

        Each snippet's fate is decided once (memoized): poison raises on
        every attempt and must end up quarantined; transient raises only
        the first time, so the worker's retry succeeds.
        """
        site = f"shard{shard_id:03d}"
        profile = self.profile

        def hook(snippet) -> None:
            key = f"{site}:{snippet.snippet_id}"
            with self._lock:
                fate = self._snippet_fates.get(key)
            if fate is None:
                roll = self._rng(site).random()
                if roll < profile.shard_poison_rate:
                    fate = "poison"
                elif roll < profile.shard_poison_rate + profile.shard_transient_rate:
                    fate = "transient"
                else:
                    fate = "ok"
                with self._lock:
                    self._snippet_fates[key] = fate
            if fate == "poison":
                if key not in self._transient_fired:
                    self._transient_fired.add(key)
                    self._record(site, "poison", snippet.snippet_id)
                raise InjectedPoisonError(site, "poison", snippet.snippet_id)
            if fate == "transient" and key not in self._transient_fired:
                self._transient_fired.add(key)
                self._record(site, "transient", snippet.snippet_id)
                raise InjectedFaultError(site, "transient", snippet.snippet_id)

        return hook

    # -- WAL wrapper -------------------------------------------------------

    def wrap_wal(self, wal, shard_id: int = 0) -> "ChaosWal":
        return ChaosWal(self, wal, f"wal{shard_id:03d}")

    def tear_tail(self, path: str, site: str = "wal") -> int:
        """Truncate the final bytes of a file (simulated mid-write crash).

        Returns the number of bytes removed (0 if the file is too small
        to tear meaningfully).
        """
        try:
            size = os.path.getsize(path)
        except OSError:
            return 0
        if size < 4:
            return 0
        chop = self._rng(site).randint(1, min(24, size - 2))
        os.truncate(path, size - chop)
        self._record(site, "torn-write", f"-{chop}B")
        return chop

    # -- generic callable wrapper ------------------------------------------

    def wrap_callable(
        self, site: str, fn: Callable, rate: Optional[float] = None
    ) -> Callable:
        """Wrap ``fn`` to raise an injected error at ``rate`` per call."""
        if rate is None:
            rate = self.profile.kb_error_rate

        def wrapped(*args, **kwargs):
            if rate and self._rng(site).random() < rate:
                self._record(site, "error")
                raise InjectedFaultError(site, "error")
            return fn(*args, **kwargs)

        return wrapped


class FaultyFeed:
    """Pull-based faulty iterator: errors never consume an item.

    An injected exception is raised *before* the underlying iterator
    advances, so a caller that retries the pull sees every real item
    exactly once (plus injected duplicates).  Reorders swap adjacent
    pairs; duplicates replay the previous item once.
    """

    def __init__(self, injector: FaultInjector, items: Iterable, site: str) -> None:
        self._injector = injector
        self._inner = iter(items)
        self._site = site
        self._pending: Deque = deque()

    def __iter__(self) -> Iterator:
        return self

    def __next__(self):
        injector, profile = self._injector, self._injector.profile
        rng = injector._rng(self._site)
        if profile.feed_error_rate and rng.random() < profile.feed_error_rate:
            injector._record(self._site, "error")
            raise InjectedFaultError(self._site, "error")
        if self._pending:
            item = self._pending.popleft()
        else:
            item = next(self._inner)  # StopIteration ends the feed cleanly
            if profile.duplicate_rate and rng.random() < profile.duplicate_rate:
                injector._record(self._site, "duplicate")
                self._pending.append(item)
            elif profile.reorder_rate and rng.random() < profile.reorder_rate:
                try:
                    swapped = next(self._inner)
                except StopIteration:
                    swapped = None
                if swapped is not None:
                    injector._record(self._site, "reorder")
                    self._pending.append(item)
                    item = swapped
        if (
            profile.feed_latency_rate
            and rng.random() < profile.feed_latency_rate
        ):
            injector._record(self._site, "latency")
            injector._sleep(profile.latency_seconds)
        return item


class ChaosWal:
    """Proxy over a ``ShardWal`` that occasionally tears its writes.

    After a fraction of appends the just-written record's tail is
    truncated — the next append then concatenates onto the torn prefix,
    producing exactly the garbage line a crash between ``write`` and
    ``fsync`` leaves behind.  Recovery must skip it and keep going.
    """

    def __init__(self, injector: FaultInjector, wal, site: str) -> None:
        self._injector = injector
        self._wal = wal
        self._site = site
        self.torn_writes = 0

    def append(self, snippet) -> int:
        written = self._wal.append(snippet)
        profile = self._injector.profile
        if profile.torn_write_rate:
            rng = self._injector._rng(self._site)
            if rng.random() < profile.torn_write_rate:
                handle = getattr(self._wal, "_handle", None)
                if handle is not None:
                    handle.flush()
                chopped = self._injector.tear_tail(
                    self._wal.path, site=self._site
                )
                self.torn_writes += 1 if chopped else 0
        return written

    def __getattr__(self, name):
        return getattr(self._wal, name)
