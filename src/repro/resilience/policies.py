"""Retry policies: capped exponential backoff with deterministic jitter.

A :class:`RetryPolicy` is a frozen value object describing *how* to retry
— it owns no clock and no sleep, so the same policy drives shard workers
(real sleeps), feed pulls (breaker-gated sleeps) and tests (collected
delays, no sleeping at all).  Jitter is **deterministic**: it is derived
from a CRC of ``(key, attempt)`` rather than a shared RNG, so two
processes retrying the same snippet spread out identically and a chaos
run replays the exact same schedule every time.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.obs.trace import add_event
from repro.resilience.deadline import Deadline


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``max_attempts`` counts *total* tries (first call included), so
    ``max_attempts=3`` means at most two retries.  The delay before retry
    ``n`` (1-based) is ``base_delay * factor**(n-1)`` capped at
    ``max_delay``, then spread by ``jitter`` (a ± fraction) using a hash
    of ``(key, n)`` — no randomness, no coordination between callers.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.factor < 1.0:
            raise ConfigurationError("factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def delay(self, retry_number: int, key: str = "") -> float:
        """Delay in seconds before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        raw = min(
            self.base_delay * (self.factor ** (retry_number - 1)),
            self.max_delay,
        )
        if not self.jitter or raw == 0.0:
            return raw
        # unit interval from a stable hash: same (key, attempt) -> same spread
        digest = zlib.crc32(f"{key}#{retry_number}".encode("utf-8"))
        unit = digest / 0xFFFFFFFF
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def delays(self, key: str = "") -> Iterator[float]:
        """The full retry schedule: ``max_attempts - 1`` delays."""
        for retry_number in range(1, self.max_attempts):
            yield self.delay(retry_number, key=key)

    def call(
        self,
        fn: Callable,
        *args,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        key: str = "",
        sleep: Callable[[float], None] = time.sleep,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs,
    ):
        """Invoke ``fn`` under this policy; re-raises the final failure.

        Retrying stops early when ``deadline`` expires — the last caught
        exception is re-raised rather than burning time the caller no
        longer has.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                pause = self.delay(attempt, key=key)
                if deadline is not None and deadline.remaining() < pause:
                    raise
                add_event(
                    "retry", attempt=attempt, key=key, error=repr(exc),
                )
                if on_retry is not None:
                    on_retry(attempt, exc)
                if pause:
                    sleep(pause)


#: sentinel converting StopIteration into a value (retry loops must never
#: mistake normal exhaustion for a failure)
_DONE = object()


def resilient_iter(
    items,
    retry: Optional[RetryPolicy] = None,
    breaker=None,
    sleep: Callable[[float], None] = time.sleep,
    key: str = "feed",
    max_failures_per_item: Optional[int] = None,
    deadline: Optional[Deadline] = None,
):
    """Iterate ``items``, retrying failed pulls through an optional breaker.

    The source's ``__next__`` may raise (a flaky feed); each pull is
    retried on the policy's schedule, and routed through ``breaker`` so a
    hard-down feed trips open instead of being hammered.  While the
    breaker is open the iterator sleeps out the cool-down and probes
    again — it degrades to *slow*, not to *crashed*.  A single pull that
    keeps failing past ``max_failures_per_item`` (default: 50 full retry
    schedules) re-raises, so a 100%-failure feed cannot livelock.

    Requires a pull-safe source: a failed ``__next__`` must not have
    consumed an item (see :class:`~repro.resilience.faults.FaultyFeed`).
    """
    from repro.resilience.breaker import CircuitOpenError

    iterator = iter(items)
    retry = retry if retry is not None else RetryPolicy()
    limit = (
        max_failures_per_item
        if max_failures_per_item is not None
        else retry.max_attempts * 50
    )

    def pull():
        try:
            return next(iterator)
        except StopIteration:
            return _DONE

    failures = 0
    while True:
        if deadline is not None:
            deadline.check("feed pull")
        try:
            item = breaker.call(pull) if breaker is not None else pull()
        except CircuitOpenError as exc:
            sleep(min(max(exc.retry_after, 0.001), 1.0))
            continue
        except Exception:
            failures += 1
            if failures >= limit:
                raise
            pause = retry.delay(
                min(failures, max(1, retry.max_attempts - 1)), key=key
            )
            if pause:
                sleep(pause)
            continue
        failures = 0
        if item is _DONE:
            return
        yield item
