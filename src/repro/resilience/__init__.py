"""repro.resilience — retries, breakers, deadlines, quarantine, chaos.

The failure-handling layer of the runtime and server: composable
:class:`RetryPolicy` (capped exponential backoff, deterministic jitter),
:class:`CircuitBreaker` (closed/open/half-open over a failure-rate
window), :class:`Deadline` propagation, per-shard
:class:`DeadLetterQueue` quarantine for poison snippets, and a seeded
:class:`FaultInjector` that exercises all of it deterministically —
in the ``chaos`` pytest fixture, under ``storypivot-serve --chaos`` and
in the CI chaos-smoke job.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.resilience.dlq import DeadLetter, DeadLetterQueue
from repro.resilience.faults import (
    PROFILES,
    ChaosWal,
    FaultInjector,
    FaultProfile,
    FaultyFeed,
    InjectedFault,
    InjectedFaultError,
    InjectedPoisonError,
    resolve_profile,
)
from repro.resilience.policies import RetryPolicy, resilient_iter

__all__ = [
    "CLOSED",
    "ChaosWal",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadLetter",
    "DeadLetterQueue",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultProfile",
    "FaultyFeed",
    "HALF_OPEN",
    "InjectedFault",
    "InjectedFaultError",
    "InjectedPoisonError",
    "OPEN",
    "PROFILES",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "resilient_iter",
    "resolve_profile",
]
