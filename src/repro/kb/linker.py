"""Entity linking: resolve annotator mentions against the knowledge base.

The extraction pipeline's gazetteer finds surface mentions; the linker maps
them onto knowledge-base entities — including alias forms the gazetteer
does not know ("Republic of Ukraine" → ``UKR``) — and normalizes a
snippet's entity set so that stories and entity cards agree on ids.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.eventdata.models import Snippet
from repro.kb.base import Entity, KnowledgeBase
from repro.obs import add_event


class EntityLinker:
    """Resolve mentions and normalize snippet entity sets."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb

    def link(self, mention: str) -> Optional[Entity]:
        """Resolve one mention (name, alias or code); None if unknown."""
        return self.kb.resolve(mention)

    def link_all(self, mentions: Iterable[str]) -> List[Entity]:
        """Resolve many mentions, dropping unknowns and duplicates."""
        seen = set()
        entities: List[Entity] = []
        for mention in mentions:
            entity = self.kb.resolve(mention)
            if entity is not None and entity.entity_id not in seen:
                seen.add(entity.entity_id)
                entities.append(entity)
        return entities

    def normalize_snippet(self, snippet: Snippet) -> Tuple[Snippet, List[str]]:
        """Return a snippet whose entity codes are all KB-canonical.

        Unknown codes are kept as-is (the KB is not assumed complete);
        the second return value lists the codes that failed to resolve.
        """
        resolved = set()
        unresolved: List[str] = []
        for code in snippet.entities:
            entity = self.kb.resolve(code)
            if entity is not None:
                resolved.add(entity.entity_id)
            else:
                resolved.add(code)
                unresolved.append(code)
        if resolved == set(snippet.entities):
            return snippet, sorted(unresolved)
        normalized = Snippet(
            snippet_id=snippet.snippet_id,
            source_id=snippet.source_id,
            timestamp=snippet.timestamp,
            published=snippet.published,
            description=snippet.description,
            entities=frozenset(resolved),
            keywords=snippet.keywords,
            text=snippet.text,
            event_type=snippet.event_type,
            document_id=snippet.document_id,
            url=snippet.url,
        )
        return normalized, sorted(unresolved)


class ResilientLinker(EntityLinker):
    """An :class:`EntityLinker` that degrades instead of failing.

    Lookups against a flaky knowledge base are retried on a
    deterministic schedule behind a circuit breaker; when the KB is hard
    down (breaker open, or the retry schedule exhausts) a mention simply
    resolves to ``None`` — exactly the contract for an *unknown* mention,
    which :meth:`EntityLinker.normalize_snippet` already handles by
    keeping the raw code.  Entity normalization is a quality refinement,
    not a correctness requirement, so a degraded KB must never stop
    ingestion; :attr:`degraded_lookups` counts how many resolutions fell
    through for ``/metricz`` and post-hoc re-linking.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        retry=None,
        breaker=None,
        sleep=None,
        metrics=None,
    ) -> None:
        from repro.resilience.breaker import CircuitBreaker
        from repro.resilience.policies import RetryPolicy

        super().__init__(kb)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.02, factor=2.0, max_delay=0.5
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name="kb", failure_threshold=0.5, window=20, min_calls=5,
            reset_timeout=5.0,
        )
        self._sleep = sleep
        self.degraded_lookups = 0
        self._degraded_counter = (
            metrics.counter("kb.degraded_lookups")
            if metrics is not None else None
        )

    def link(self, mention: str) -> Optional[Entity]:
        """Resolve one mention; ``None`` if unknown *or* KB unavailable."""
        import time as _time

        from repro.resilience.breaker import CircuitOpenError

        sleep = self._sleep if self._sleep is not None else _time.sleep
        try:
            return self.breaker.call_with_retry(
                lambda: self.kb.resolve(mention),
                retry=self.retry,
                key=mention,
                sleep=sleep,
            )
        except CircuitOpenError:
            # expected while the KB is parked; the breaker transition
            # span event already narrates it once per state change
            add_event("kb.degraded", mention=mention, reason="circuit-open")
        except Exception as exc:
            # enrichment is optional, so degrade — but leave the cause on
            # the active span so /tracez explains the missing entity
            add_event(
                "kb.degraded", mention=mention, reason="lookup-failed",
                error=f"{type(exc).__name__}: {exc}",
            )
        self.degraded_lookups += 1
        if self._degraded_counter is not None:
            self._degraded_counter.inc()
        return None
