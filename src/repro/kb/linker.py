"""Entity linking: resolve annotator mentions against the knowledge base.

The extraction pipeline's gazetteer finds surface mentions; the linker maps
them onto knowledge-base entities — including alias forms the gazetteer
does not know ("Republic of Ukraine" → ``UKR``) — and normalizes a
snippet's entity set so that stories and entity cards agree on ids.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.eventdata.models import Snippet
from repro.kb.base import Entity, KnowledgeBase


class EntityLinker:
    """Resolve mentions and normalize snippet entity sets."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb

    def link(self, mention: str) -> Optional[Entity]:
        """Resolve one mention (name, alias or code); None if unknown."""
        return self.kb.resolve(mention)

    def link_all(self, mentions: Iterable[str]) -> List[Entity]:
        """Resolve many mentions, dropping unknowns and duplicates."""
        seen = set()
        entities: List[Entity] = []
        for mention in mentions:
            entity = self.kb.resolve(mention)
            if entity is not None and entity.entity_id not in seen:
                seen.add(entity.entity_id)
                entities.append(entity)
        return entities

    def normalize_snippet(self, snippet: Snippet) -> Tuple[Snippet, List[str]]:
        """Return a snippet whose entity codes are all KB-canonical.

        Unknown codes are kept as-is (the KB is not assumed complete);
        the second return value lists the codes that failed to resolve.
        """
        resolved = set()
        unresolved: List[str] = []
        for code in snippet.entities:
            entity = self.kb.resolve(code)
            if entity is not None:
                resolved.add(entity.entity_id)
            else:
                resolved.add(code)
                unresolved.append(code)
        if resolved == set(snippet.entities):
            return snippet, sorted(unresolved)
        normalized = Snippet(
            snippet_id=snippet.snippet_id,
            source_id=snippet.source_id,
            timestamp=snippet.timestamp,
            published=snippet.published,
            description=snippet.description,
            entities=frozenset(resolved),
            keywords=snippet.keywords,
            text=snippet.text,
            event_type=snippet.event_type,
            document_id=snippet.document_id,
            url=snippet.url,
        )
        return normalized, sorted(unresolved)
