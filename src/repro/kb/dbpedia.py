"""DBpedia-flavoured default knowledge base over the entity universe.

Builds a :class:`~repro.kb.base.KnowledgeBase` covering every entity the
simulator can mention: countries (with region/capital facts and ``borders``
/ ``member_of`` relations), organizations (with ``member_of`` membership
edges from countries), companies (``based_in``, ``industry``) and people
(``citizen_of``).  Deterministic and entirely offline — the stand-in for a
live DBpedia endpoint.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.eventdata.entities import COMPANIES, COUNTRIES, ORGANIZATIONS, person_universe
from repro.kb.base import Entity, KnowledgeBase

#: coarse region assignment for country facts and borders edges
_REGIONS = {
    "UKR": "Europe", "RUS": "Europe", "MAL": "Asia", "NTH": "Europe",
    "USA": "Americas", "GBR": "Europe", "FRA": "Europe", "GER": "Europe",
    "CHN": "Asia", "JPN": "Asia", "IND": "Asia", "BRA": "Americas",
    "CAN": "Americas", "AUS": "Oceania", "ITA": "Europe", "ESP": "Europe",
    "POL": "Europe", "TUR": "Europe", "IRN": "Middle East",
    "IRQ": "Middle East", "SYR": "Middle East", "ISR": "Middle East",
    "PAL": "Middle East", "EGY": "Africa", "SAU": "Middle East",
    "NGA": "Africa", "ZAF": "Africa", "KEN": "Africa", "ETH": "Africa",
    "MEX": "Americas", "ARG": "Americas", "COL": "Americas",
    "VEN": "Americas", "KOR": "Asia", "PRK": "Asia", "VNM": "Asia",
    "THA": "Asia", "IDN": "Asia", "PHL": "Asia", "PAK": "Asia",
    "AFG": "Asia", "GRC": "Europe", "SWE": "Europe", "NOR": "Europe",
    "FIN": "Europe", "CHE": "Europe", "AUT": "Europe", "BEL": "Europe",
    "PRT": "Europe", "CZE": "Europe", "HUN": "Europe", "ROU": "Europe",
    "BGR": "Europe", "SRB": "Europe", "HRV": "Europe", "GEO": "Europe",
    "ARM": "Europe", "AZE": "Europe", "KAZ": "Asia", "BLR": "Europe",
    "MDA": "Europe", "LTU": "Europe", "LVA": "Europe", "EST": "Europe",
    "CUB": "Americas", "CHL": "Americas", "PER": "Americas",
    "MAR": "Africa", "DZA": "Africa", "TUN": "Africa", "LBY": "Africa",
    "SDN": "Africa", "SOM": "Africa", "YEM": "Middle East",
    "JOR": "Middle East", "LBN": "Middle East", "QAT": "Middle East",
    "ARE": "Middle East", "SGP": "Asia", "MMR": "Asia", "BGD": "Asia",
    "LKA": "Asia", "NPL": "Asia", "NZL": "Oceania",
}

_COMPANY_INDUSTRY = {
    "MAS": "aviation", "BOE": "aviation", "ABUS": "aviation",
    "LUFT": "aviation", "RYAN": "aviation", "GAZ": "energy",
    "SHEL": "energy", "EXX": "energy", "BP": "energy", "TOT": "energy",
    "GOOG": "technology", "YELP": "technology", "APPL": "technology",
    "MSFT": "technology", "AMZN": "technology", "TSLA": "automotive",
    "SIEM": "industrial", "TOYT": "automotive", "VOLK": "automotive",
    "SAMS": "technology", "HUAW": "technology", "ALIB": "technology",
    "NEST": "consumer goods", "PFE": "pharmaceutical",
    "BAYR": "pharmaceutical", "GSK": "pharmaceutical", "MAER": "shipping",
    "HSBC": "banking", "JPM": "banking", "GS": "banking", "DB": "banking",
    "UBS": "banking", "BARC": "banking",
}

_COMPANY_HOME = {
    "MAS": "MAL", "BOE": "USA", "ABUS": "FRA", "GAZ": "RUS", "SHEL": "GBR",
    "EXX": "USA", "GOOG": "USA", "YELP": "USA", "APPL": "USA",
    "MSFT": "USA", "AMZN": "USA", "TSLA": "USA", "SIEM": "GER",
    "TOYT": "JPN", "VOLK": "GER", "SAMS": "KOR", "HUAW": "CHN",
    "ALIB": "CHN", "NEST": "CHE", "PFE": "USA", "BAYR": "GER",
    "GSK": "GBR", "BP": "GBR", "TOT": "FRA", "LUFT": "GER", "RYAN": "GBR",
    "MAER": "NOR", "HSBC": "GBR", "JPM": "USA", "GS": "USA", "DB": "GER",
    "UBS": "CHE", "BARC": "GBR",
}


def build_default_kb(num_people: int = 120, seed: int = 7) -> KnowledgeBase:
    """The full default knowledge base; matches ``full_universe``'s codes."""
    kb = KnowledgeBase()
    rng = random.Random(seed)

    for code, name in COUNTRIES:
        region = _REGIONS.get(code, "World")
        kb.add_entity(Entity(
            entity_id=code, name=name, entity_type="country",
            aliases=(f"Republic of {name}",),
            abstract=f"{name} is a country in {region}.",
            facts=(("region", region),),
        ))
    for code, name in ORGANIZATIONS:
        kb.add_entity(Entity(
            entity_id=code, name=name, entity_type="organization",
            abstract=f"{name} is an international organization.",
            facts=(("kind", "international organization"),),
        ))
    for code, name in COMPANIES:
        industry = _COMPANY_INDUSTRY.get(code, "conglomerate")
        kb.add_entity(Entity(
            entity_id=code, name=name, entity_type="company",
            aliases=(f"{name} Inc",),
            abstract=f"{name} is a company in the {industry} industry.",
            facts=(("industry", industry),),
        ))
    people = person_universe(num_people, seed)
    country_codes = [code for code, _ in COUNTRIES]
    for code, name in people:
        kb.add_entity(Entity(
            entity_id=code, name=name, entity_type="person",
            abstract=f"{name} is a public figure.",
        ))

    # relations: same-region countries border deterministically in pairs
    by_region: Dict[str, list] = {}
    for code, _ in COUNTRIES:
        by_region.setdefault(_REGIONS.get(code, "World"), []).append(code)
    for region_codes in by_region.values():
        for a, b in zip(region_codes, region_codes[1:]):
            kb.add_relation(a, "borders", b)

    # UN membership for every country; EU/NATO for a European subset
    for code, _ in COUNTRIES:
        kb.add_relation(code, "member_of", "UN")
    for code in ("FRA", "GER", "ITA", "ESP", "POL", "NTH", "BEL", "AUT",
                 "SWE", "FIN", "GRC", "PRT", "CZE", "HUN", "ROU", "BGR",
                 "HRV", "LTU", "LVA", "EST"):
        kb.add_relation(code, "member_of", "EU")
    for code in ("USA", "GBR", "FRA", "GER", "ITA", "ESP", "POL", "NTH",
                 "BEL", "CAN", "TUR", "GRC", "PRT", "CZE", "HUN"):
        kb.add_relation(code, "member_of", "NATO")

    for code, home in _COMPANY_HOME.items():
        kb.add_relation(code, "based_in", home)

    for code, _ in people:
        kb.add_relation(code, "citizen_of", rng.choice(country_codes))

    return kb
