"""In-memory knowledge base: typed entities, aliases, facts and relations.

The shape mirrors what StoryPivot would pull from DBpedia: every entity has
a canonical id (our actor codes), a type, human-readable aliases, a short
abstract and key/value facts; relations are typed, directed edges between
entities (``UKR --borders--> RUS``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoryPivotError


class UnknownEntityError(StoryPivotError, KeyError):
    """An entity id was referenced that the knowledge base does not hold."""

    def __init__(self, entity_id: str) -> None:
        super().__init__(f"unknown entity: {entity_id!r}")
        self.entity_id = entity_id


@dataclass(frozen=True)
class Entity:
    """One knowledge-base entity."""

    entity_id: str
    name: str
    entity_type: str  # "country" | "organization" | "company" | "person"
    aliases: Tuple[str, ...] = ()
    abstract: str = ""
    facts: Tuple[Tuple[str, str], ...] = ()

    def fact(self, key: str) -> Optional[str]:
        """The value of fact ``key`` or ``None``."""
        for fact_key, value in self.facts:
            if fact_key == key:
                return value
        return None


@dataclass(frozen=True)
class Relation:
    """A typed directed edge between two entities."""

    subject: str
    predicate: str
    obj: str


class KnowledgeBase:
    """Entity store with alias lookup and relation queries."""

    def __init__(self) -> None:
        self._entities: Dict[str, Entity] = {}
        self._alias_to_id: Dict[str, str] = {}
        self._relations: List[Relation] = []
        self._out_edges: Dict[str, List[Relation]] = {}
        self._in_edges: Dict[str, List[Relation]] = {}

    # -- entities ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __iter__(self) -> Iterator[Entity]:
        return iter(sorted(self._entities.values(), key=lambda e: e.entity_id))

    def add_entity(self, entity: Entity) -> None:
        """Register an entity; its name and aliases become resolvable."""
        if entity.entity_id in self._entities:
            raise ValueError(f"entity {entity.entity_id!r} already present")
        self._entities[entity.entity_id] = entity
        for alias in (entity.name, entity.entity_id) + entity.aliases:
            self._alias_to_id.setdefault(alias.lower(), entity.entity_id)

    def entity(self, entity_id: str) -> Entity:
        found = self._entities.get(entity_id)
        if found is None:
            raise UnknownEntityError(entity_id)
        return found

    def resolve(self, mention: str) -> Optional[Entity]:
        """Resolve a surface mention (name, alias, code) to an entity."""
        entity_id = self._alias_to_id.get(mention.lower())
        if entity_id is None:
            return None
        return self._entities[entity_id]

    def of_type(self, entity_type: str) -> List[Entity]:
        return sorted(
            (e for e in self._entities.values() if e.entity_type == entity_type),
            key=lambda e: e.entity_id,
        )

    # -- relations -----------------------------------------------------------

    def add_relation(self, subject: str, predicate: str, obj: str) -> None:
        """Add a typed edge; both endpoints must exist."""
        for endpoint in (subject, obj):
            if endpoint not in self._entities:
                raise UnknownEntityError(endpoint)
        relation = Relation(subject, predicate, obj)
        self._relations.append(relation)
        self._out_edges.setdefault(subject, []).append(relation)
        self._in_edges.setdefault(obj, []).append(relation)

    @property
    def num_relations(self) -> int:
        return len(self._relations)

    def relations_of(self, entity_id: str) -> List[Relation]:
        """All edges touching ``entity_id`` (outgoing first)."""
        if entity_id not in self._entities:
            raise UnknownEntityError(entity_id)
        return list(self._out_edges.get(entity_id, [])) + list(
            self._in_edges.get(entity_id, [])
        )

    def neighbors(self, entity_id: str) -> Set[str]:
        """Entity ids one hop away from ``entity_id``."""
        found: Set[str] = set()
        for relation in self.relations_of(entity_id):
            found.add(relation.subject)
            found.add(relation.obj)
        found.discard(entity_id)
        return found

    def related(
        self, entity_ids: Iterable[str], exclude_input: bool = True
    ) -> Dict[str, int]:
        """Entities related to any of ``entity_ids``, with link counts.

        The count is the number of input entities an answer connects to —
        the UI ranks context suggestions by it.
        """
        inputs = {eid for eid in entity_ids if eid in self._entities}
        counts: Dict[str, int] = {}
        for entity_id in inputs:
            for neighbor in self.neighbors(entity_id):
                counts[neighbor] = counts.get(neighbor, 0) + 1
        if exclude_input:
            for entity_id in inputs:
                counts.pop(entity_id, None)
        return counts

    def connection(self, a: str, b: str) -> List[Relation]:
        """Direct edges between ``a`` and ``b`` in either direction."""
        if a not in self._entities or b not in self._entities:
            return []
        return [
            relation
            for relation in self._out_edges.get(a, [])
            if relation.obj == b
        ] + [
            relation
            for relation in self._out_edges.get(b, [])
            if relation.obj == a
        ]
