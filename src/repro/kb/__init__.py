"""Knowledge-base extension (Section 3).

"We can further extend [StoryPivot] with interfaces to existing knowledge
bases such as DBpedia.  Connecting StoryPivot to knowledge bases explicitly
helps experts and casual users to obtain more information on the context of
stories."  This package implements that extension against an in-repo,
DBpedia-flavoured knowledge base: typed entities with aliases and facts,
relations between entities, alias-based entity linking for the annotator,
and story-context enrichment (entity cards, related entities, shared-fact
explanations) for the exploration modules.
"""

from repro.kb.base import Entity, KnowledgeBase, Relation
from repro.kb.dbpedia import build_default_kb
from repro.kb.linker import EntityLinker, ResilientLinker
from repro.kb.context import StoryContext, story_context

__all__ = [
    "Entity",
    "Relation",
    "KnowledgeBase",
    "build_default_kb",
    "EntityLinker",
    "ResilientLinker",
    "StoryContext",
    "story_context",
]
