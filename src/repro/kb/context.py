"""Story context: knowledge-base enrichment for the exploration modules.

Section 3: connecting to a knowledge base "helps experts and casual users
to obtain more information on the context of stories".  Given an aligned
(or per-source) story, :func:`story_context` assembles the entity cards,
the relations *among* the story's entities (why these actors appear
together) and ranked related-entity suggestions for further exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.alignment import AlignedStory
from repro.core.stories import Story
from repro.kb.base import Entity, KnowledgeBase, Relation


@dataclass
class StoryContext:
    """Knowledge-base context for one story."""

    entities: List[Entity] = field(default_factory=list)
    unknown_codes: List[str] = field(default_factory=list)
    internal_relations: List[Relation] = field(default_factory=list)
    suggestions: List[Tuple[Entity, int]] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable context block for the demo modules."""
        lines = ["Knowledge-Base Context"]
        for entity in self.entities:
            lines.append(f"  {entity.entity_id:6s} {entity.name} "
                         f"({entity.entity_type}) — {entity.abstract}")
        if self.unknown_codes:
            lines.append(f"  (not in KB: {', '.join(self.unknown_codes)})")
        if self.internal_relations:
            lines.append("  Why these actors appear together:")
            for relation in self.internal_relations:
                lines.append(
                    f"    {relation.subject} —{relation.predicate}→ "
                    f"{relation.obj}"
                )
        if self.suggestions:
            rendered = ", ".join(
                f"{entity.name} ({count})" for entity, count in self.suggestions
            )
            lines.append(f"  Explore next: {rendered}")
        return "\n".join(lines)


def _entity_codes(story) -> List[str]:
    if isinstance(story, AlignedStory):
        profile = story.entity_profile()
    elif isinstance(story, Story):
        profile = story.sketch.entity_profile()
    else:
        raise TypeError(f"expected Story or AlignedStory, got {type(story)!r}")
    return [code for code, _ in sorted(profile.items(),
                                       key=lambda kv: (-kv[1], kv[0]))]


def story_context(
    story,
    kb: KnowledgeBase,
    max_entities: int = 6,
    max_suggestions: int = 5,
) -> StoryContext:
    """Assemble knowledge-base context for a story.

    ``story`` is a per-source :class:`Story` or an :class:`AlignedStory`.
    """
    context = StoryContext()
    codes = _entity_codes(story)[:max_entities]
    known: List[str] = []
    for code in codes:
        if code in kb:
            entity = kb.entity(code)
            context.entities.append(entity)
            known.append(code)
        else:
            context.unknown_codes.append(code)

    seen_pairs = set()
    for i, a in enumerate(known):
        for b in known[i + 1:]:
            for relation in kb.connection(a, b):
                key = (relation.subject, relation.predicate, relation.obj)
                if key not in seen_pairs:
                    seen_pairs.add(key)
                    context.internal_relations.append(relation)

    related = kb.related(known)
    ranked = sorted(related.items(), key=lambda kv: (-kv[1], kv[0]))
    context.suggestions = [
        (kb.entity(entity_id), count)
        for entity_id, count in ranked[:max_suggestions]
        # suggest only entities linked to >= 2 story actors: one shared
        # neighbour is noise (every country links to the UN)
        if count >= 2
    ]
    return context
