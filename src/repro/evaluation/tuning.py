"""Threshold calibration on labelled corpora.

The paper leaves thresholds open; adopters need a principled way to set
them for their own data.  :func:`tune` grid-searches configuration
overrides against ground truth, scoring each candidate with the
harness, and returns the ranked table.  The repo's defaults were chosen
exactly this way (see EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.eventdata.corpus import Corpus
from repro.evaluation.harness import MethodSpec, run_experiment


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated grid cell."""

    overrides: Tuple[Tuple[str, object], ...]
    si_f1: float
    global_f1: float
    elapsed: float

    @property
    def params(self) -> Dict[str, object]:
        return dict(self.overrides)


@dataclass
class TuningResult:
    """All evaluated points, best first (by the tuned objective)."""

    points: List[TuningPoint]
    objective: str

    @property
    def best(self) -> TuningPoint:
        return self.points[0]

    def table(self) -> str:
        if not self.points:
            return "(no points)"
        param_names = sorted(self.points[0].params)
        header = "  ".join(f"{name:>16}" for name in param_names)
        header += f"  {'si_f1':>7} {'global_f1':>9} {'elapsed':>8}"
        lines = [header, "-" * len(header)]
        for point in self.points:
            row = "  ".join(
                f"{point.params[name]!s:>16}" for name in param_names
            )
            lines.append(
                f"{row}  {point.si_f1:>7.3f} {point.global_f1:>9.3f} "
                f"{point.elapsed:>7.2f}s"
            )
        return "\n".join(lines)


def tune(
    corpus: Corpus,
    grid: Mapping[str, Sequence[object]],
    si_method: str = "temporal",
    sa_method: str = "greedy",
    objective: str = "global_f1",
    refine: bool = True,
) -> TuningResult:
    """Evaluate every combination of ``grid`` values on ``corpus``.

    ``grid`` maps config field names to candidate values, e.g.
    ``{"match_threshold": [0.4, 0.48, 0.55], "window": [7*DAY, 14*DAY]}``.
    ``objective`` is ``"global_f1"`` or ``"si_f1"``.
    """
    if objective not in ("global_f1", "si_f1"):
        raise ValueError("objective must be 'global_f1' or 'si_f1'")
    if not grid:
        raise ValueError("grid must be non-empty")
    if not corpus.truth.labels:
        raise ValueError("tuning needs a ground-truth-labelled corpus")
    names = sorted(grid)
    points: List[TuningPoint] = []
    for values in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, values))
        spec = MethodSpec(
            name="tune:" + ",".join(f"{k}={v}" for k, v in overrides.items()),
            si_method=si_method,
            sa_method=sa_method,
            refine=refine,
            config_overrides=overrides,
        )
        result = run_experiment(corpus, spec)
        points.append(TuningPoint(
            overrides=tuple(sorted(overrides.items())),
            si_f1=result.si_f1,
            global_f1=result.global_f1,
            elapsed=result.elapsed,
        ))
    points.sort(key=lambda p: (-getattr(p, objective), p.elapsed))
    return TuningResult(points=points, objective=objective)
