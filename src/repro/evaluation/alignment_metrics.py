"""Alignment-specific quality measures.

Beyond clustering agreement, alignment has two dedicated questions:

* **story-link quality** — of the cross-source story pairs the aligner
  joined, how many truly describe the same story?  Two per-source stories
  are "truly the same" when their majority ground-truth labels agree.
* **integration completeness** — of the true stories reported by >= 2
  sources, how many ended up in a single integrated story?
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Mapping, Set

from repro.core.alignment import Alignment
from repro.evaluation.metrics import ClusterScores


def _majority_label(
    snippet_ids: Set[str], truth: Mapping[str, str]
) -> "str | None":
    counts = Counter(truth[sid] for sid in snippet_ids if sid in truth)
    if not counts:
        return None
    return counts.most_common(1)[0][0]


def alignment_scores(
    alignment: Alignment, truth: Mapping[str, str]
) -> Dict[str, float]:
    """Dictionary of alignment quality measures.

    Keys: ``link_precision``, ``link_recall``, ``link_f1`` (cross-source
    story links), ``integration_completeness`` (multi-source true stories
    unified), ``num_integrated``, ``num_cross_source``.
    """
    # --- story-level links the aligner asserted -------------------------
    asserted = 0
    correct = 0
    story_labels: Dict[str, "str | None"] = {}
    for aligned in alignment.aligned.values():
        for story in aligned.stories:
            story_labels[story.story_id] = _majority_label(
                story.snippet_ids(), truth
            )
    for aligned in alignment.aligned.values():
        stories = aligned.stories
        for i, story_a in enumerate(stories):
            for story_b in stories[i + 1 :]:
                if story_a.source_id == story_b.source_id:
                    continue
                asserted += 1
                label_a = story_labels[story_a.story_id]
                label_b = story_labels[story_b.story_id]
                if label_a is not None and label_a == label_b:
                    correct += 1

    # --- links that *should* exist ------------------------------------------
    # group per-source stories by their majority true label
    stories_by_label: Dict[str, Set[str]] = defaultdict(set)
    source_of_story: Dict[str, str] = {}
    for aligned in alignment.aligned.values():
        for story in aligned.stories:
            label = story_labels[story.story_id]
            if label is not None:
                stories_by_label[label].add(story.story_id)
                source_of_story[story.story_id] = story.source_id
    expected = 0
    for label, story_ids in stories_by_label.items():
        ids = sorted(story_ids)
        for i, id_a in enumerate(ids):
            for id_b in ids[i + 1 :]:
                if source_of_story[id_a] != source_of_story[id_b]:
                    expected += 1

    precision = correct / asserted if asserted else 0.0
    recall = correct / expected if expected else 0.0
    link = ClusterScores(precision, recall)

    # --- integration completeness ----------------------------------------------
    label_to_aligned: Dict[str, Set[str]] = defaultdict(set)
    label_sources: Dict[str, Set[str]] = defaultdict(set)
    for aligned_id, aligned in alignment.aligned.items():
        for story in aligned.stories:
            label = story_labels[story.story_id]
            if label is not None:
                label_to_aligned[label].add(aligned_id)
                label_sources[label].add(story.source_id)
    multi_source = [
        label for label, sources in label_sources.items() if len(sources) > 1
    ]
    unified = sum(1 for label in multi_source if len(label_to_aligned[label]) == 1)
    completeness = unified / len(multi_source) if multi_source else 1.0

    return {
        "link_precision": link.precision,
        "link_recall": link.recall,
        "link_f1": link.f1,
        "integration_completeness": completeness,
        "num_integrated": float(len(alignment)),
        "num_cross_source": float(len(alignment.cross_source_stories())),
    }
