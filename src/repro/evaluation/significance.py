"""Bootstrap significance testing for method comparisons.

Figure 7's quality panel compares methods by F-measure on one corpus; this
module quantifies how solid such a gap is.  The unit of resampling is the
*ground-truth story*: a bootstrap replicate draws stories with replacement,
restricts both systems' outputs to the drawn stories' snippets, and
recomputes the metric — respecting the clustering structure instead of
resampling snippets independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.evaluation.metrics import pairwise_scores


@dataclass(frozen=True)
class BootstrapComparison:
    """Result of a paired bootstrap between two systems."""

    mean_a: float
    mean_b: float
    mean_difference: float  # a - b
    ci_low: float
    ci_high: float
    p_a_beats_b: float
    replicates: int

    @property
    def significant(self) -> bool:
        """The 95% CI of the difference excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def _restricted_f1(
    clusters: Mapping[str, Set[str]],
    truth: Mapping[str, str],
    keep: Set[str],
) -> float:
    truth_subset = {
        snippet_id: label for snippet_id, label in truth.items()
        if label in keep
    }
    return pairwise_scores(clusters, truth_subset).f1


def bootstrap_f1_comparison(
    clusters_a: Mapping[str, Set[str]],
    clusters_b: Mapping[str, Set[str]],
    truth: Mapping[str, str],
    replicates: int = 500,
    confidence: float = 0.95,
    seed: int = 7,
) -> BootstrapComparison:
    """Paired story-level bootstrap of the pairwise F-measure difference.

    ``clusters_a``/``clusters_b`` are the two systems' outputs over the
    same corpus; ``truth`` maps snippet id → ground-truth story label.
    """
    if replicates <= 0:
        raise ValueError("replicates must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    labels = sorted(set(truth.values()))
    if not labels:
        raise ValueError("truth carries no story labels")
    rng = np.random.default_rng(seed)
    diffs = np.empty(replicates)
    scores_a = np.empty(replicates)
    scores_b = np.empty(replicates)
    labels_arr = np.asarray(labels, dtype=object)
    for i in range(replicates):
        drawn = set(rng.choice(labels_arr, size=len(labels), replace=True))
        f1_a = _restricted_f1(clusters_a, truth, drawn)
        f1_b = _restricted_f1(clusters_b, truth, drawn)
        scores_a[i] = f1_a
        scores_b[i] = f1_b
        diffs[i] = f1_a - f1_b
    alpha = (1.0 - confidence) / 2.0
    return BootstrapComparison(
        mean_a=float(scores_a.mean()),
        mean_b=float(scores_b.mean()),
        mean_difference=float(diffs.mean()),
        ci_low=float(np.quantile(diffs, alpha)),
        ci_high=float(np.quantile(diffs, 1.0 - alpha)),
        p_a_beats_b=float((diffs > 0).mean()),
        replicates=replicates,
    )
