"""Compare and contrast two story-detection results.

The demo lets users "combine the implemented methods on the fly ... as
well as compare result quality for these varying techniques" (Section
4.1).  This module diffs two alignments over the same corpus: which
integrated stories agree exactly, where one method splits what the other
merges, and the pairwise agreement between the two clusterings — plus a
text rendering for the comparison panel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.alignment import Alignment
from repro.evaluation.metrics import ClusterScores, pairwise_scores


@dataclass
class AlignmentDiff:
    """Structured comparison of two clusterings of the same snippets."""

    label_a: str
    label_b: str
    identical: List[FrozenSet[str]] = field(default_factory=list)
    splits: List[Tuple[FrozenSet[str], List[FrozenSet[str]]]] = field(
        default_factory=list
    )  # a-cluster → the b-clusters it fragments into
    merges: List[Tuple[List[FrozenSet[str]], FrozenSet[str]]] = field(
        default_factory=list
    )  # several a-clusters → one b-cluster
    reshuffles: int = 0  # many-to-many disagreements
    agreement: Optional[ClusterScores] = None
    only_in_a: Set[str] = field(default_factory=set)
    only_in_b: Set[str] = field(default_factory=set)

    @property
    def num_disagreements(self) -> int:
        return len(self.splits) + len(self.merges) + self.reshuffles

    def render(self) -> str:
        """Human-readable comparison panel."""
        lines = [
            f"Comparing {self.label_a} (A) vs {self.label_b} (B)",
            "─" * 60,
            f"identical stories: {len(self.identical)}",
            f"A-stories split by B: {len(self.splits)}",
            f"A-stories merged by B: {len(self.merges)}",
            f"many-to-many reshuffles: {self.reshuffles}",
        ]
        if self.agreement is not None:
            lines.append(
                f"pairwise agreement (B against A as reference): "
                f"P={self.agreement.precision:.3f} "
                f"R={self.agreement.recall:.3f} F1={self.agreement.f1:.3f}"
            )
        if self.only_in_a or self.only_in_b:
            lines.append(
                f"snippets only in A: {len(self.only_in_a)}, "
                f"only in B: {len(self.only_in_b)}"
            )
        for cluster, fragments in self.splits[:5]:
            sample = ", ".join(sorted(cluster)[:4])
            lines.append(
                f"  split: A story of {len(cluster)} ({sample}, …) → "
                f"{len(fragments)} B stories "
                f"({'/'.join(str(len(f)) for f in fragments)})"
            )
        for parts, merged in self.merges[:5]:
            lines.append(
                f"  merge: {len(parts)} A stories "
                f"({'/'.join(str(len(p)) for p in parts)}) → "
                f"one B story of {len(merged)}"
            )
        return "\n".join(lines)


def _clusters_of(result) -> Dict[str, Set[str]]:
    if isinstance(result, Alignment):
        return result.as_clusters()
    if isinstance(result, Mapping):
        return {k: set(v) for k, v in result.items()}
    # PivotResult-like
    return result.global_clusters()


def diff_alignments(
    result_a,
    result_b,
    label_a: str = "A",
    label_b: str = "B",
) -> AlignmentDiff:
    """Diff two alignments / cluster mappings over the same snippets."""
    clusters_a = _clusters_of(result_a)
    clusters_b = _clusters_of(result_b)
    items_a = {item for members in clusters_a.values() for item in members}
    items_b = {item for members in clusters_b.values() for item in members}
    shared = items_a & items_b

    diff = AlignmentDiff(label_a=label_a, label_b=label_b)
    diff.only_in_a = items_a - shared
    diff.only_in_b = items_b - shared

    cluster_of_b: Dict[str, str] = {}
    for cluster_id, members in clusters_b.items():
        for item in members:
            cluster_of_b[item] = cluster_id
    cluster_of_a: Dict[str, str] = {}
    for cluster_id, members in clusters_a.items():
        for item in members:
            cluster_of_a[item] = cluster_id

    # group A clusters by the set of B clusters they touch, and vice versa
    b_sets_per_a: Dict[str, Set[str]] = {}
    for cluster_id, members in clusters_a.items():
        restricted = members & shared
        if restricted:
            b_sets_per_a[cluster_id] = {cluster_of_b[i] for i in restricted}
    a_sets_per_b: Dict[str, Set[str]] = {}
    for cluster_id, members in clusters_b.items():
        restricted = members & shared
        if restricted:
            a_sets_per_b[cluster_id] = {cluster_of_a[i] for i in restricted}

    seen_a: Set[str] = set()
    for a_id in sorted(b_sets_per_a):
        if a_id in seen_a:
            continue
        b_ids = b_sets_per_a[a_id]
        back = set()
        for b_id in b_ids:
            back |= a_sets_per_b[b_id]
        a_members = frozenset(clusters_a[a_id] & shared)
        if back == {a_id}:
            if len(b_ids) == 1:
                diff.identical.append(a_members)
            else:
                fragments = [
                    frozenset(clusters_b[b_id] & shared)
                    for b_id in sorted(b_ids)
                ]
                diff.splits.append((a_members, fragments))
            seen_a.add(a_id)
        elif len(b_ids) == 1 and back > {a_id}:
            b_id = next(iter(b_ids))
            if all(b_sets_per_a[other] == {b_id} for other in back):
                parts = [
                    frozenset(clusters_a[other] & shared)
                    for other in sorted(back)
                ]
                diff.merges.append(
                    (parts, frozenset(clusters_b[b_id] & shared))
                )
                seen_a |= back
            else:
                diff.reshuffles += 1
                seen_a.add(a_id)
        else:
            diff.reshuffles += 1
            seen_a.add(a_id)

    # agreement: score B's clustering against A's as pseudo-truth
    pseudo_truth = {item: cluster_of_a[item] for item in shared}
    diff.agreement = pairwise_scores(clusters_b, pseudo_truth)
    return diff
