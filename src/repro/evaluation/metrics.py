"""Clustering agreement metrics.

All functions take two clusterings of the same items:

* ``predicted`` — mapping cluster id → set of item ids (the system output,
  e.g. ``StorySet.as_clusters()`` or ``Alignment.as_clusters()``);
* ``truth`` — mapping item id → true label (``GroundTruth.labels``).

Items missing from either side are ignored (evaluation happens over the
intersection), so a per-source story set can be scored directly against the
global ground truth.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Mapping, Set, Tuple


@dataclass(frozen=True)
class ClusterScores:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _prepare(
    predicted: Mapping[str, Set[str]], truth: Mapping[str, str]
) -> Tuple[Dict[str, str], Dict[str, str]]:
    """(item → predicted cluster, item → true label) over shared items."""
    predicted_of: Dict[str, str] = {}
    for cluster_id, items in predicted.items():
        for item in items:
            if item in truth:
                predicted_of[item] = cluster_id
    true_of = {item: truth[item] for item in predicted_of}
    return predicted_of, true_of


def _comb2(n: int) -> int:
    return n * (n - 1) // 2


def pairwise_scores(
    predicted: Mapping[str, Set[str]], truth: Mapping[str, str]
) -> ClusterScores:
    """Pairwise precision/recall: agreement on same-cluster item pairs.

    Precision = fraction of predicted same-story pairs that are truly
    same-story; recall = fraction of true same-story pairs recovered.  This
    is the F-measure of Figure 7's quality panel.
    """
    predicted_of, true_of = _prepare(predicted, truth)
    if not predicted_of:
        return ClusterScores(0.0, 0.0)
    # joint contingency counts
    joint: Counter = Counter()
    predicted_sizes: Counter = Counter()
    true_sizes: Counter = Counter()
    for item, cluster in predicted_of.items():
        label = true_of[item]
        joint[(cluster, label)] += 1
        predicted_sizes[cluster] += 1
        true_sizes[label] += 1
    true_positive_pairs = sum(_comb2(n) for n in joint.values())
    predicted_pairs = sum(_comb2(n) for n in predicted_sizes.values())
    true_pairs = sum(_comb2(n) for n in true_sizes.values())
    # vacuous sides score 1.0 (record-linkage convention): asserting no
    # pairs is perfectly precise, and recovering all of zero pairs is
    # perfect recall — so an all-singleton truth scores a perfect match.
    precision = true_positive_pairs / predicted_pairs if predicted_pairs else 1.0
    recall = true_positive_pairs / true_pairs if true_pairs else 1.0
    return ClusterScores(precision, recall)


def bcubed(
    predicted: Mapping[str, Set[str]], truth: Mapping[str, str]
) -> ClusterScores:
    """B-Cubed precision/recall (Bagga & Baldwin 1998), item-averaged."""
    predicted_of, true_of = _prepare(predicted, truth)
    if not predicted_of:
        return ClusterScores(0.0, 0.0)
    cluster_members: Dict[str, list] = defaultdict(list)
    label_members: Dict[str, list] = defaultdict(list)
    for item, cluster in predicted_of.items():
        cluster_members[cluster].append(item)
        label_members[true_of[item]].append(item)
    precision_total = 0.0
    recall_total = 0.0
    for item, cluster in predicted_of.items():
        label = true_of[item]
        same_cluster = cluster_members[cluster]
        same_label_in_cluster = sum(
            1 for other in same_cluster if true_of[other] == label
        )
        precision_total += same_label_in_cluster / len(same_cluster)
        recall_total += same_label_in_cluster / len(label_members[label])
    n = len(predicted_of)
    return ClusterScores(precision_total / n, recall_total / n)


def purity(predicted: Mapping[str, Set[str]], truth: Mapping[str, str]) -> float:
    """Fraction of items in their cluster's majority true label."""
    predicted_of, true_of = _prepare(predicted, truth)
    if not predicted_of:
        return 0.0
    cluster_labels: Dict[str, Counter] = defaultdict(Counter)
    for item, cluster in predicted_of.items():
        cluster_labels[cluster][true_of[item]] += 1
    majority = sum(counts.most_common(1)[0][1] for counts in cluster_labels.values())
    return majority / len(predicted_of)


def normalized_mutual_information(
    predicted: Mapping[str, Set[str]], truth: Mapping[str, str]
) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    predicted_of, true_of = _prepare(predicted, truth)
    n = len(predicted_of)
    if n == 0:
        return 0.0
    joint: Counter = Counter()
    predicted_sizes: Counter = Counter()
    true_sizes: Counter = Counter()
    for item, cluster in predicted_of.items():
        label = true_of[item]
        joint[(cluster, label)] += 1
        predicted_sizes[cluster] += 1
        true_sizes[label] += 1
    mutual_information = 0.0
    for (cluster, label), count in joint.items():
        p_joint = count / n
        p_cluster = predicted_sizes[cluster] / n
        p_label = true_sizes[label] / n
        mutual_information += p_joint * math.log(p_joint / (p_cluster * p_label))
    h_predicted = -sum(
        (size / n) * math.log(size / n) for size in predicted_sizes.values()
    )
    h_true = -sum((size / n) * math.log(size / n) for size in true_sizes.values())
    if h_predicted == 0.0 and h_true == 0.0:
        return 1.0  # both clusterings are single-cluster: identical
    denominator = (h_predicted + h_true) / 2
    if denominator == 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual_information / denominator))


def adjusted_rand_index(
    predicted: Mapping[str, Set[str]], truth: Mapping[str, str]
) -> float:
    """ARI (Hubert & Arabie 1985); 1 for identical clusterings, ~0 random."""
    predicted_of, true_of = _prepare(predicted, truth)
    n = len(predicted_of)
    if n == 0:
        return 0.0
    joint: Counter = Counter()
    predicted_sizes: Counter = Counter()
    true_sizes: Counter = Counter()
    for item, cluster in predicted_of.items():
        label = true_of[item]
        joint[(cluster, label)] += 1
        predicted_sizes[cluster] += 1
        true_sizes[label] += 1
    index = sum(_comb2(count) for count in joint.values())
    sum_predicted = sum(_comb2(size) for size in predicted_sizes.values())
    sum_true = sum(_comb2(size) for size in true_sizes.values())
    total_pairs = _comb2(n)
    if total_pairs == 0:
        return 1.0
    expected = sum_predicted * sum_true / total_pairs
    maximum = (sum_predicted + sum_true) / 2
    if maximum == expected:
        return 1.0
    return (index - expected) / (maximum - expected)
