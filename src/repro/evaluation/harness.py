"""Experiment harness: the machinery behind Figure 7.

The statistics module of the demo reports, per dataset and per (SI method,
SA method) combination, execution time and F-measure as functions of the
number of events.  :func:`run_experiment` measures one cell of that grid;
:func:`sweep_events` produces the full series the figure plots.
"""

from __future__ import annotations

import statistics as _stats
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import StoryPivotConfig
from repro.core.pipeline import StoryPivot
from repro.eventdata.corpus import Corpus
from repro.evaluation.alignment_metrics import alignment_scores
from repro.evaluation.metrics import (
    adjusted_rand_index,
    bcubed,
    normalized_mutual_information,
    pairwise_scores,
)


@dataclass(frozen=True)
class MethodSpec:
    """One cell of the method grid: a name plus its configuration."""

    name: str
    si_method: str  # "temporal" | "complete" | "single_pass"
    sa_method: str  # "greedy" | "optimal" | "none"
    refine: bool = True
    config_overrides: Dict[str, object] = field(default_factory=dict)

    def make_config(self) -> StoryPivotConfig:
        overrides = dict(self.config_overrides)
        overrides["alignment_strategy"] = self.sa_method
        overrides["enable_refinement"] = self.refine and self.sa_method != "none"
        factory = {
            "temporal": StoryPivotConfig.temporal,
            "complete": StoryPivotConfig.complete,
            "single_pass": StoryPivotConfig.single_pass,
        }[self.si_method]
        return factory(**overrides)


def default_method_grid() -> List[MethodSpec]:
    """The SI×SA grid the statistics module exposes (Figure 7 selectors)."""
    return [
        MethodSpec("temporal+align", "temporal", "greedy"),
        MethodSpec("temporal", "temporal", "none"),
        MethodSpec("complete+align", "complete", "greedy"),
        MethodSpec("complete", "complete", "none"),
    ]


@dataclass
class ExperimentResult:
    """Measured outcomes of one (corpus, method) run."""

    method: str
    num_events: int
    num_snippets: int
    elapsed: float  # total seconds
    per_event_ms: float
    si_f1: float  # mean per-source pairwise F-measure
    si_precision: float
    si_recall: float
    global_f1: float  # pairwise F of the integrated clustering
    metrics: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular output."""
        row: Dict[str, object] = {
            "method": self.method,
            "events": self.num_events,
            "snippets": self.num_snippets,
            "elapsed_s": round(self.elapsed, 4),
            "per_event_ms": round(self.per_event_ms, 4),
            "si_f1": round(self.si_f1, 4),
            "global_f1": round(self.global_f1, 4),
        }
        row.update({k: round(v, 4) for k, v in self.metrics.items()})
        return row


def run_experiment(
    corpus: Corpus,
    spec: MethodSpec,
    order: str = "time",
) -> ExperimentResult:
    """Run one method over one corpus and score it against ground truth."""
    config = spec.make_config()
    pivot = StoryPivot(config)
    started = time.perf_counter()
    result = pivot.run(corpus, order=order)
    elapsed = time.perf_counter() - started

    truth = corpus.truth.labels
    per_source_f1: List[float] = []
    per_source_precision: List[float] = []
    per_source_recall: List[float] = []
    for source_id, story_set in result.story_sets.items():
        scores = pairwise_scores(story_set.as_clusters(), truth)
        per_source_f1.append(scores.f1)
        per_source_precision.append(scores.precision)
        per_source_recall.append(scores.recall)

    global_clusters = result.global_clusters()
    global_scores = pairwise_scores(global_clusters, truth)
    extra: Dict[str, float] = {
        "bcubed_f1": bcubed(global_clusters, truth).f1,
        "nmi": normalized_mutual_information(global_clusters, truth),
        "ari": adjusted_rand_index(global_clusters, truth),
        "num_stories": float(result.num_stories),
        "num_integrated": float(result.num_integrated),
    }
    if spec.sa_method != "none":
        extra.update(alignment_scores(result.alignment, truth))
    if result.refinement is not None:
        extra["refinement_moves"] = float(result.refinement.num_moves)

    num_snippets = len(corpus)
    num_events = len(set(truth.values())) if truth else num_snippets
    return ExperimentResult(
        method=spec.name,
        num_events=len(corpus),
        num_snippets=num_snippets,
        elapsed=elapsed,
        per_event_ms=(elapsed / num_snippets * 1000.0) if num_snippets else 0.0,
        si_f1=_stats.fmean(per_source_f1) if per_source_f1 else 0.0,
        si_precision=_stats.fmean(per_source_precision) if per_source_precision else 0.0,
        si_recall=_stats.fmean(per_source_recall) if per_source_recall else 0.0,
        global_f1=global_scores.f1,
        metrics=extra,
        timings=result.timings,
    )


def sweep_events(
    sizes: Sequence[int],
    methods: Optional[Sequence[MethodSpec]] = None,
    num_sources: int = 5,
    seed: int = 42,
    corpus_factory: Optional[Callable[[int], Corpus]] = None,
    order: str = "time",
) -> List[ExperimentResult]:
    """The Figure 7 sweep: every method at every #events size."""
    from repro.eventdata.sourcegen import synthetic_corpus

    if methods is None:
        methods = default_method_grid()
    if corpus_factory is None:
        def corpus_factory(total: int) -> Corpus:
            return synthetic_corpus(
                total_events=total, num_sources=num_sources, seed=seed
            )
    results: List[ExperimentResult] = []
    for size in sizes:
        corpus = corpus_factory(size)
        for spec in methods:
            results.append(run_experiment(corpus, spec, order=order))
    return results


def results_table(results: Sequence[ExperimentResult]) -> str:
    """Fixed-width text table of experiment rows (benchmarks print this)."""
    if not results:
        return "(no results)"
    rows = [r.row() for r in results]
    columns = ["method", "events", "snippets", "elapsed_s", "per_event_ms",
               "si_f1", "global_f1"]
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
