"""Evaluation: clustering quality metrics and the experiment harness.

Figure 7 reports an F-measure per (dataset, SI method, SA method) plus
execution time vs #events; this package computes those numbers.  Story
detection output is a clustering of snippets, so quality metrics are
clustering-agreement measures against ground truth: pairwise
precision/recall/F1 (the F-measure news-threading papers report), B-Cubed,
purity, NMI and ARI.
"""

from repro.evaluation.metrics import (
    ClusterScores,
    adjusted_rand_index,
    bcubed,
    normalized_mutual_information,
    pairwise_scores,
    purity,
)
from repro.evaluation.alignment_metrics import alignment_scores
from repro.evaluation.harness import (
    ExperimentResult,
    MethodSpec,
    default_method_grid,
    run_experiment,
    sweep_events,
)

__all__ = [
    "ClusterScores",
    "pairwise_scores",
    "bcubed",
    "purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "alignment_scores",
    "MethodSpec",
    "ExperimentResult",
    "run_experiment",
    "sweep_events",
    "default_method_grid",
]
