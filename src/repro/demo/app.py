"""The StoryPivot demo application, scripted.

The SIGMOD demo is interactive; this module reproduces its functionality as
a scriptable session plus a CLI entry point (``storypivot-demo``).  The
session exposes exactly the demo's moves:

* select/deselect documents (Figure 3) and recompute stories;
* browse the story overview (Figure 4), stories-per-source (Figure 5) and
  snippets-per-story (Figure 6) modules;
* add or remove documents and observe how stories change (Section 4.2.1);
* run the large-scale statistics module (Figure 7, Section 4.2.2);
* query for entities/keywords ("queries will consist of enquiries about
  specified real-world events or entities").
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import StoryPivotConfig
from repro.core.pipeline import PivotResult, StoryPivot
from repro.errors import UnknownSnippetError
from repro.eventdata.corpus import Corpus
from repro.eventdata.handcrafted import demo_config, mh17_corpus
from repro.viz.modules import (
    document_selection_view,
    snippets_per_story_view,
    statistics_view,
    stories_per_source_view,
    story_overview_view,
    story_timeline_view,
)


class DemoSession:
    """One interactive exploration over a corpus."""

    def __init__(
        self,
        corpus: Optional[Corpus] = None,
        config: Optional[StoryPivotConfig] = None,
    ) -> None:
        self.corpus = corpus if corpus is not None else mh17_corpus()
        self.config = config if config is not None else demo_config()
        self.selected: List[str] = [s.snippet_id for s in self.corpus.snippets()]
        self._result: Optional[PivotResult] = None

    # -- document selection (Figure 3) -----------------------------------

    def document_selection(self) -> str:
        documents = sorted(
            self.corpus.documents.values(), key=lambda d: d.document_id
        )
        selected_docs = {
            self.corpus.snippet(sid).document_id
            for sid in self.selected
            if self.corpus.snippet(sid).document_id
        }
        names = {s.source_id: s.name for s in self.corpus.sources.values()}
        return document_selection_view(documents, sorted(selected_docs), names)

    def deselect(self, snippet_id: str) -> None:
        """Remove a document/snippet from the working set (Figure 3 'Cancel')."""
        if snippet_id not in self.selected:
            raise UnknownSnippetError(snippet_id)
        self.selected.remove(snippet_id)
        self._result = None

    def select(self, snippet_id: str) -> None:
        """(Re-)add a previously deselected document."""
        if snippet_id in self.selected:
            return
        if snippet_id not in self.corpus:
            raise UnknownSnippetError(snippet_id)
        self.selected.append(snippet_id)
        self._result = None

    # -- computation ------------------------------------------------------------

    def compute(self) -> PivotResult:
        """(Re)run identification + alignment + refinement on the selection."""
        pivot = StoryPivot(self.config)
        subset = self.corpus.subset(self.selected)
        self._result = pivot.run(subset)
        self._pivot = pivot
        return self._result

    @property
    def result(self) -> PivotResult:
        if self._result is None:
            return self.compute()
        return self._result

    # -- modules ------------------------------------------------------------------

    def story_overview(self, focus: Optional[str] = None) -> str:
        return story_overview_view(self.result.alignment, focus=focus)

    def stories_per_source(
        self, source_id: str, focus_snippet: Optional[str] = None
    ) -> str:
        story_set = self.result.story_sets[source_id]
        return stories_per_source_view(story_set, focus_snippet=focus_snippet)

    def snippets_per_story(
        self, aligned_id: Optional[str] = None, focus_snippet: Optional[str] = None
    ) -> str:
        alignment = self.result.alignment
        if aligned_id is None:
            aligned = max(alignment.aligned.values(), key=len)
        else:
            aligned = alignment.aligned[aligned_id]
        return snippets_per_story_view(aligned, alignment, focus_snippet)

    def query(self, entity: Optional[str] = None, keyword: Optional[str] = None):
        """Integrated stories matching an entity and/or keyword."""
        return self._ensure_pivot().query(
            self.result.alignment, entity=entity, keyword=keyword
        )

    def search(self, query: str) -> str:
        """Run a query-language enquiry and render the answer panel.

        Example: ``session.search("entity:UKR keyword:crash")``.
        """
        from repro.query.engine import QueryEngine

        engine = QueryEngine(self.result.alignment, self.corpus)
        return engine.explain(query)

    def _ensure_pivot(self) -> StoryPivot:
        if self._result is None:
            self.compute()
        return self._pivot

    def statistics(self) -> str:
        pivot = self._ensure_pivot()
        return statistics_view(self.corpus.name, pivot.statistics())

    def story_timeline(self, aligned_id: Optional[str] = None) -> str:
        """Casual-reader timeline of one integrated story (Section 3)."""
        alignment = self.result.alignment
        if aligned_id is None:
            aligned = max(alignment.aligned.values(), key=len)
        else:
            aligned = alignment.aligned[aligned_id]
        return story_timeline_view(aligned, alignment)

    def story_context(self, aligned_id: Optional[str] = None) -> str:
        """Knowledge-base context card for one integrated story."""
        from repro.kb import build_default_kb, story_context

        alignment = self.result.alignment
        if aligned_id is None:
            aligned = max(alignment.aligned.values(), key=len)
        else:
            aligned = alignment.aligned[aligned_id]
        return story_context(aligned, build_default_kb()).render()


def large_scale_statistics(
    sizes: Sequence[int] = (250, 500, 1000),
    num_sources: int = 5,
    seed: int = 42,
) -> str:
    """Run the Figure 7 sweep and render the statistics module."""
    from repro.evaluation.harness import default_method_grid, sweep_events

    results = sweep_events(sizes, num_sources=num_sources, seed=seed)
    performance: Dict[str, List[Tuple[float, float]]] = {}
    quality: Dict[str, List[Tuple[float, float]]] = {}
    for result in results:
        performance.setdefault(result.method, []).append(
            (result.num_events, result.per_event_ms)
        )
        quality.setdefault(result.method, []).append(
            (result.num_events, result.global_f1 if "align" in result.method
             else result.si_f1)
        )
    stats = {
        "num_sources": num_sources,
        "num_snippets": max(r.num_snippets for r in results),
        "num_entities": "~250",
        "start": None,
        "end": None,
    }
    return statistics_view("GDELT-like synthetic", stats, performance, quality)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: walk through the demo non-interactively."""
    parser = argparse.ArgumentParser(
        prog="storypivot-demo",
        description="Scripted walkthrough of the StoryPivot demonstration.",
    )
    parser.add_argument(
        "module",
        choices=["selection", "overview", "sources", "story", "timeline",
                 "context", "stats", "all"],
        nargs="?",
        default="all",
        help="which demo module to render",
    )
    parser.add_argument("--source", default="s1", help="source for 'sources'")
    parser.add_argument("--focus", default=None, help="snippet id to focus")
    parser.add_argument(
        "--large-scale",
        action="store_true",
        help="also run the large-scale statistics sweep (slower)",
    )
    args = parser.parse_args(argv)

    session = DemoSession()
    out = sys.stdout
    if args.module in ("selection", "all"):
        print(session.document_selection(), file=out)
        print(file=out)
    if args.module in ("overview", "all"):
        print(session.story_overview(), file=out)
        print(file=out)
    if args.module in ("sources", "all"):
        focus = args.focus if args.module == "sources" else "s1:v2"
        print(session.stories_per_source(args.source, focus_snippet=focus), file=out)
        print(file=out)
    if args.module in ("story", "all"):
        focus = args.focus if args.module == "story" else "sn:v5"
        print(session.snippets_per_story(focus_snippet=focus), file=out)
        print(file=out)
    if args.module in ("timeline", "all"):
        print(session.story_timeline(), file=out)
        print(file=out)
    if args.module == "context":
        print(session.story_context(), file=out)
        print(file=out)
    if args.module in ("stats", "all"):
        print(session.statistics(), file=out)
        if args.large_scale:
            print(file=out)
            print(large_scale_statistics(), file=out)
    return 0


def _console_entry() -> int:
    """Console-script wrapper: exit quietly when the pipe closes (| head)."""
    try:
        return main()
    except BrokenPipeError:
        import os
        import sys

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)


if __name__ == "__main__":
    raise SystemExit(_console_entry())
