"""The demonstration driver (Section 4).

:class:`~repro.demo.app.DemoSession` scripts the walkthrough the paper
demonstrates live: select documents, compute stories, explore the
per-source and per-story modules, add/remove documents and watch stories
change, and browse large-scale experiment statistics.
"""

from repro.demo.app import DemoSession, main

__all__ = ["DemoSession", "main"]
