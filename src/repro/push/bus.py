"""The story-evolution event bus: DecisionLog tail → subscriber fan-out.

The :class:`~repro.obs.decisions.DecisionLog` already records exactly
the events a watcher of an evolving story wants — ``created``,
``extended``, ``split``, ``merged``, ``aligned``, ``refined`` — so the
push layer does not invent a second event stream: the bus registers a
listener on the log and republishes every recorded decision, stamped
with a monotonic *cursor* and the current ReadView *generation*, to
every matching subscriber.

Fan-out discipline (the part that keeps one slow client from convoying
everything else):

* every subscriber owns a **bounded**
  :class:`~repro.runtime.queues.BoundedQueue` reusing the runtime's
  backpressure policies — ``drop`` (default: overflow is shed and
  counted), ``sample`` (a representative trickle survives overload), or
  ``block`` with a short mandatory ``put_timeout`` so even the lossless
  policy bounds how long a publish can stall;
* the publisher holds the bus lock only to stamp the cursor, append to
  the replay ring, and snapshot the subscriber list — queue puts happen
  outside it, so subscribers only contend on their own queue;
* delivery failures are *accounting*, never errors: drops show up in
  per-subscriber and aggregate metrics and the client can detect the
  gap from the cursor sequence and resume through the replay ring.

Resume rides :class:`~repro.push.ring.ReplayRing`: a subscriber that
reconnects with its last cursor replays exactly the missed events, or
receives a ``reset`` event (gap pruned, or the gap would overflow its
queue) telling it to re-snapshot via the read API at the carried
generation.  Control events (``hello``/``generation``/``reset``/
``goodbye``) bypass filters — they are the protocol, not the data.

Entity filters match against the *aligned story* entity profiles of the
most recent ReadView (fed by :meth:`EventBus.note_view` from the view
refresher), so "subscribe to everything about MH17" follows stories
across merges and alignment without the ingest path ever paying for
entity extraction twice.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import StoryPivotError
from repro.obs.trace import NULL_TRACER, add_event
from repro.push.ring import DEFAULT_RING_CAPACITY, ReplayRing
from repro.runtime.queues import (
    BACKPRESSURE_POLICIES,
    BoundedQueue,
    Empty,
    QueueClosed,
)

#: events delivered to every subscriber regardless of filters: they are
#: the subscription protocol itself (stream position, lifecycle).
CONTROL_EVENTS = ("hello", "generation", "reset", "goodbye")

#: ceiling on how long one slow blocking subscriber may stall a publish
#: — the convoy bound.  Applies to the ``block`` policy; ``drop`` and
#: ``sample`` never wait at all.
DEFAULT_PUT_TIMEOUT = 0.1

DEFAULT_QUEUE_CAPACITY = 256


class PushError(StoryPivotError):
    """A subscription request the bus refused (HTTP-mappable)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Subscription:
    """One subscriber: filters, a bounded queue, and delivery accounting."""

    def __init__(
        self,
        sub_id: int,
        queue: BoundedQueue,
        story: Optional[str] = None,
        entity: Optional[str] = None,
        source: Optional[str] = None,
        created_at: float = 0.0,
    ) -> None:
        self.id = sub_id
        self.name = f"sub-{sub_id}"
        self.queue = queue
        self.story = story
        self.entity = entity.lower() if entity else None
        self.source = source
        self.created_at = created_at
        self.delivered = 0  # events that made it into the queue
        self.read = 0  # events the client actually consumed
        self.read_cursor = 0  # cursor of the last event the client read
        self.resumed = False

    # -- delivery (bus side) ----------------------------------------------

    def offer(self, event: dict) -> bool:
        """Enqueue one event under the queue's backpressure policy."""
        try:
            enqueued = self.queue.put(event)
        except QueueClosed:
            return False
        if enqueued:
            self.delivered += 1
        return enqueued

    def finish(self, goodbye: dict) -> None:
        """Force the goodbye in (evicting backlog if needed) and close.

        A full queue means a slow client — it may lose queued data
        events (already counted as drops), but it must still learn the
        stream is over rather than time out on a dead connection.
        """
        try:
            if not self.queue.put(goodbye):
                self.queue.purge()
                self.queue.put(goodbye)
        except QueueClosed:
            return
        self.queue.close()

    # -- consumption (transport side) --------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Next event for the client; None on timeout.

        Raises :class:`~repro.runtime.queues.QueueClosed` once the
        subscription is finished and fully drained.
        """
        try:
            event = self.queue.get(timeout=timeout)
        except Empty:
            return None
        self.queue.task_done()
        self.read += 1
        cursor = event.get("cursor")
        if isinstance(cursor, int) and cursor > self.read_cursor:
            self.read_cursor = cursor
        return event

    @property
    def dropped(self) -> int:
        return self.queue.dropped

    @property
    def depth(self) -> int:
        return len(self.queue)

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.name,
            "story": self.story,
            "entity": self.entity,
            "source": self.source,
            "policy": self.queue.policy,
            "capacity": self.queue.capacity,
            "depth": self.depth,
            "delivered": self.delivered,
            "read": self.read,
            "dropped": self.dropped,
            "read_cursor": self.read_cursor,
            "resumed": self.resumed,
        }


class EventBus:
    """Fan story-evolution events out to bounded subscriber queues."""

    def __init__(
        self,
        replay_capacity: int = DEFAULT_RING_CAPACITY,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        policy: str = "drop",
        sample_every: int = 10,
        put_timeout: float = DEFAULT_PUT_TIMEOUT,
        max_subscribers: int = 4096,
        metrics=None,
        tracer=None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from "
                f"{BACKPRESSURE_POLICIES}"
            )
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.sample_every = sample_every
        self.put_timeout = put_timeout
        self.max_subscribers = max_subscribers
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)  # long-poll waiters
        self._ring = ReplayRing(replay_capacity)
        self._subs: Dict[int, Subscription] = {}
        self._next_sub_id = 0
        self._cursor = 0
        self._generation = 0
        self._closed = False
        self._decisions = None
        #: story id -> frozenset of lowercased entity names, rebuilt from
        #: each installed ReadView (aligned profiles cover every member)
        self._entity_index: Dict[str, frozenset] = {}
        #: per-source story id -> aligned story id, same provenance
        self._aligned_of: Dict[str, str] = {}
        self.published = 0
        if metrics is not None:
            metrics.counter("push.events")
            metrics.counter("push.delivered")
            metrics.counter("push.dropped")
            metrics.counter("push.subscribed")
            metrics.counter("push.unsubscribed")
            metrics.counter("push.resumes")
            metrics.counter("push.resets")
            metrics.counter("push.rejected")
            metrics.counter("push.publish_errors")
            metrics.gauge("push.subscribers")
            metrics.gauge("push.ring.size")
            metrics.histogram("push.fanout_seconds")

    # -- DecisionLog tail ---------------------------------------------------

    def attach(self, decisions) -> "EventBus":
        """Tail ``decisions``: every recorded entry is republished."""
        decisions.add_listener(self.on_decision)
        self._decisions = decisions
        return self

    def detach(self) -> None:
        if self._decisions is not None:
            self._decisions.remove_listener(self.on_decision)
            self._decisions = None

    # sp-contract: never-raises
    def on_decision(self, entry: dict) -> None:
        """DecisionLog listener — must never raise into the ingest path."""
        try:
            self._publish(dict(entry))
        except Exception as exc:
            # fan-out failure is an observability loss, not an ingest
            # failure: account it and keep the recorder alive
            if self.metrics is not None:
                self.metrics.counter("push.publish_errors").inc()
            add_event("push.publish_error", error=str(exc))

    # -- view refresh hook --------------------------------------------------

    def note_view(self, view) -> None:
        """Adopt a freshly installed ReadView.

        Rebuilds the entity/alignment indexes the filters match against
        and publishes a ``generation`` event so every subscriber learns
        the new snapshot generation (their re-snapshot coordinate).
        """
        entity_index: Dict[str, frozenset] = {}
        aligned_of: Dict[str, str] = {}
        for aligned in view.alignment.aligned.values():
            entities = frozenset(
                name.lower() for name in aligned.entity_profile()
            )
            entity_index[aligned.aligned_id] = entities
            for story_id in aligned.story_ids:
                aligned_of[story_id] = aligned.aligned_id
                entity_index[story_id] = entities
        with self._lock:
            self._entity_index = entity_index
            self._aligned_of = aligned_of
            self._generation = view.generation
        self._publish({
            "event": "generation",
            "generation": view.generation,
            "stories": len(view.stories),
        })

    # -- publishing ---------------------------------------------------------

    def _publish(self, payload: dict) -> Optional[dict]:
        """Stamp, ring, and fan out one event; returns the stamped event.

        Runs in whichever thread recorded the decision, so the ambient
        span (the ingest trace that caused the event) becomes the parent
        of the ``push.publish`` span — publish latency is attributed to
        the trace that paid it.
        """
        kind = payload.get("event", "?")
        with self.tracer.span("push.publish", kind=kind) as span:
            started = time.perf_counter()
            with self._lock:
                if self._closed:
                    return None
                self._cursor += 1
                event = dict(payload)
                event["cursor"] = self._cursor
                event.setdefault("generation", self._generation)
                self._ring.append(event)
                subs = list(self._subs.values())
                entity_index = self._entity_index
                aligned_of = self._aligned_of
                self.published += 1
                self._cond.notify_all()
            delivered = dropped = 0
            for sub in subs:
                if not _matches(
                    sub.story, sub.entity, sub.source, event,
                    entity_index, aligned_of,
                ):
                    continue
                if sub.offer(event):
                    delivered += 1
                else:
                    dropped += 1
            span.set(
                cursor=event["cursor"], subscribers=len(subs),
                delivered=delivered, dropped=dropped,
            )
            if self.metrics is not None:
                self.metrics.counter("push.events").inc()
                if delivered:
                    self.metrics.counter("push.delivered").inc(delivered)
                if dropped:
                    self.metrics.counter("push.dropped").inc(dropped)
                self.metrics.histogram("push.fanout_seconds").observe(
                    time.perf_counter() - started
                )
        return event

    # -- subscriptions ------------------------------------------------------

    def subscribe(
        self,
        story: Optional[str] = None,
        entity: Optional[str] = None,
        source: Optional[str] = None,
        queue_capacity: Optional[int] = None,
        policy: Optional[str] = None,
        last_cursor: Optional[int] = None,
    ) -> Subscription:
        """Admit one subscriber; preloads hello + any resume replay.

        ``last_cursor`` is the resume protocol: events after it still in
        the replay ring are preloaded into the queue (exactly the gap),
        a pruned or bogus cursor preloads a ``reset`` event instead.
        Raises :class:`PushError` when the bus is draining or full.
        """
        policy = policy if policy is not None else self.policy
        if policy not in BACKPRESSURE_POLICIES:
            raise PushError(
                400,
                f"unknown policy {policy!r}; choose from "
                f"{BACKPRESSURE_POLICIES}",
            )
        capacity = (
            queue_capacity if queue_capacity is not None
            else self.queue_capacity
        )
        if capacity <= 0:
            raise PushError(400, "queue capacity must be positive")
        queue = BoundedQueue(
            capacity=capacity,
            policy=policy,
            sample_every=self.sample_every,
            put_timeout=self.put_timeout,
        )
        with self._lock:
            if self._closed:
                self._count("push.rejected")
                raise PushError(503, "server is shutting down")
            if len(self._subs) >= self.max_subscribers:
                self._count("push.rejected")
                raise PushError(
                    503,
                    f"subscriber limit reached ({self.max_subscribers})",
                )
            self._next_sub_id += 1
            sub = Subscription(
                self._next_sub_id, queue,
                story=story, entity=entity, source=source,
                created_at=self._clock(),
            )
            preload: List[dict] = [self._control_locked("hello", sub)]
            if last_cursor is not None:
                sub.resumed = True
                replayed, reset = self._ring.replay(last_cursor)
                if not reset and last_cursor > self._cursor:
                    reset = True  # a cursor from another bus lifetime
                matched = [
                    e for e in replayed
                    if _matches(
                        sub.story, sub.entity, sub.source, e,
                        self._entity_index, self._aligned_of,
                    )
                ]
                # a gap wider than the queue cannot be replayed losslessly
                # — same contract as pruning: tell the client to re-snapshot
                if reset or len(matched) > capacity - len(preload):
                    preload.append(self._control_locked("reset", sub))
                    self._count("push.resets")
                else:
                    preload.extend(matched)
                    self._count("push.resumes")
            # preload under the bus lock: publishers snapshot the registry
            # under this lock too, so replay and live delivery can neither
            # overlap nor leave a gap
            for event in preload:
                sub.offer(event)
            self._subs[sub.id] = sub
            count = len(self._subs)
        self._count("push.subscribed")
        self._gauge("push.subscribers", count)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Drop one subscriber (client went away); closes its queue."""
        with self._lock:
            existed = self._subs.pop(sub.id, None) is not None
            count = len(self._subs)
        if not existed:
            return
        sub.queue.close()
        self._count("push.unsubscribed")
        self._gauge("push.subscribers", count)
        if self.metrics is not None:
            self.metrics.remove("push.queue_depth", sub=sub.id)
            self.metrics.remove("push.lag_events", sub=sub.id)
            self.metrics.remove("push.dropped_events", sub=sub.id)

    # -- long-poll ----------------------------------------------------------

    def poll(
        self,
        cursor: int,
        story: Optional[str] = None,
        entity: Optional[str] = None,
        source: Optional[str] = None,
        timeout: float = 0.0,
        limit: int = 100,
    ) -> Dict[str, object]:
        """Stateless long-poll against the replay ring.

        Returns events after ``cursor`` matching the filters, waiting up
        to ``timeout`` seconds for the first one.  ``reset: true`` means
        the cursor is unresumable (pruned or from another lifetime) and
        carries the generation to re-snapshot at.  The client's next
        request quotes ``next_cursor``.
        """
        entity = entity.lower() if entity else None
        limit = max(1, min(int(limit), 1000))
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            while True:
                replayed, reset = self._ring.replay(cursor)
                if not reset and cursor > self._cursor:
                    reset = True
                if reset:
                    self._count("push.resets")
                    return {
                        "reset": True,
                        "events": [],
                        "next_cursor": self._cursor,
                        "generation": self._generation,
                    }
                matched = [
                    e for e in replayed
                    if _matches(
                        story, entity, source, e,
                        self._entity_index, self._aligned_of,
                    )
                ][:limit]
                if matched:
                    return {
                        "reset": False,
                        "events": matched,
                        "next_cursor": matched[-1]["cursor"],
                        "generation": self._generation,
                    }
                remaining = deadline - time.monotonic()
                if self._closed or remaining <= 0:
                    return {
                        "reset": False,
                        "events": [],
                        "next_cursor": max(cursor, 0),
                        "generation": self._generation,
                    }
                self._cond.wait(min(remaining, 0.25))

    # -- shutdown -----------------------------------------------------------

    def drain(self) -> None:
        """Goodbye every subscriber and refuse new work (idempotent).

        Part of the server's graceful-drain sequence: streams end with
        an explicit ``goodbye`` event (clients distinguish shutdown from
        a dead connection) and their queues close, which wakes every
        transport thread blocked in :meth:`Subscription.pop`.
        """
        self.detach()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subs = list(self._subs.values())
            self._subs.clear()
            goodbye = {
                "event": "goodbye",
                "cursor": self._cursor,
                "generation": self._generation,
                "reason": "drain",
            }
            self._cond.notify_all()
        for sub in subs:
            sub.finish(dict(goodbye))
        self._count("push.unsubscribed", len(subs))
        self._gauge("push.subscribers", 0)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection ------------------------------------------------------

    @property
    def latest_cursor(self) -> int:
        return self._cursor

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def num_subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            subs = list(self._subs.values())
            payload = {
                "published": self.published,
                "cursor": self._cursor,
                "generation": self._generation,
                "ring": {
                    "size": len(self._ring),
                    "capacity": self._ring.capacity,
                    "earliest": self._ring.earliest_cursor,
                    "latest": self._ring.latest_cursor,
                    "pruned": self._ring.pruned,
                },
                "subscribers": [sub.describe() for sub in subs],
            }
        return payload

    def refresh_metrics(self) -> None:
        """Export per-subscriber lag/depth/drops as labeled gauges.

        Called from the ``/metricz`` render path rather than on every
        publish: fan-out stays O(matching queue puts) and the gauges are
        exactly as fresh as the scrape that reads them.
        """
        if self.metrics is None:
            return
        with self._lock:
            subs = list(self._subs.values())
            cursor = self._cursor
            ring_size = len(self._ring)
        self.metrics.gauge("push.ring.size").set(ring_size)
        self.metrics.gauge("push.subscribers").set(len(subs))
        for sub in subs:
            self.metrics.gauge("push.queue_depth", sub=sub.id).set(sub.depth)
            self.metrics.gauge("push.lag_events", sub=sub.id).set(
                max(0, cursor - sub.read_cursor)
            )
            self.metrics.gauge("push.dropped_events", sub=sub.id).set(
                sub.dropped
            )

    # -- internals ----------------------------------------------------------

    def _control_locked(self, kind: str, sub: Subscription) -> dict:
        return {
            "event": kind,
            "cursor": self._cursor,
            "generation": self._generation,
            "subscription": sub.name,
            "earliest": self._ring.earliest_cursor,
        }

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)


def _matches(
    story: Optional[str],
    entity: Optional[str],
    source: Optional[str],
    event: dict,
    entity_index: Dict[str, frozenset],
    aligned_of: Dict[str, str],
) -> bool:
    """Does an event pass a (story, entity, source) filter set?

    Filters AND together; a subscription with none matches everything.
    The story filter accepts per-source ids, the aligned id the story
    maps to in the latest view, and the absorbed side of a merge (so a
    watcher of either story sees the merge that ends one of them).
    """
    if event.get("event") in CONTROL_EVENTS:
        return True
    story_id = event.get("story_id")
    if story is not None:
        details = event.get("details") or {}
        if (
            story_id != story
            and aligned_of.get(story_id) != story
            and details.get("absorbed") != story
            and details.get("aligned_id") != story
            and event.get("aligned_id") != story
        ):
            return False
    if source is not None and event.get("source_id") != source:
        return False
    if entity is not None:
        entities = entity_index.get(story_id)
        if not entities or entity not in entities:
            return False
    return True
