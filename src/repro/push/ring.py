"""The bounded replay ring behind generation-cursor resume.

Every event the :class:`~repro.push.bus.EventBus` publishes is stamped
with a monotonically increasing *cursor* and appended here before it is
fanned out.  A reconnecting client quotes the cursor of the last event
it saw (``Last-Event-ID``) and the ring answers one of two ways:

* the gap is still retained — :meth:`replay` returns exactly the events
  with ``cursor > last_cursor``, oldest first, and the client resumes
  without loss;
* the gap was pruned (the ring is bounded; a client that slept through
  more than ``capacity`` events cannot be caught up from memory) —
  ``reset`` is True and the client must re-snapshot through the regular
  read API at the generation the ``reset`` event carries, then
  re-subscribe from the current cursor.

The ring itself is not thread-safe: the bus serializes every append and
replay under its own lock, which also makes the cursor assignment and
the append atomic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

DEFAULT_RING_CAPACITY = 4096


class ReplayRing:
    """Bounded FIFO of published events keyed by their bus cursor."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("replay ring capacity must be positive")
        self.capacity = capacity
        self._events: Deque[dict] = deque(maxlen=capacity)
        self.appended = 0
        self.pruned = 0

    def append(self, event: dict) -> None:
        if len(self._events) == self.capacity:
            self.pruned += 1
        self._events.append(event)
        self.appended += 1

    @property
    def earliest_cursor(self) -> int:
        """Cursor of the oldest retained event (0 when empty)."""
        return self._events[0]["cursor"] if self._events else 0

    @property
    def latest_cursor(self) -> int:
        """Cursor of the newest retained event (0 when nothing published)."""
        return self._events[-1]["cursor"] if self._events else 0

    def replay(self, last_cursor: int) -> Tuple[List[dict], bool]:
        """Events after ``last_cursor``, plus whether the gap was pruned.

        ``reset`` is True when events between ``last_cursor`` and the
        oldest retained cursor no longer exist — replaying would silently
        skip them, so the caller must tell the client to re-snapshot
        instead.  A cursor at or past the ring head replays cleanly (and
        possibly emptily).
        """
        if not self._events:
            # nothing retained: a cursor from before the ring's lifetime
            # is only resumable if nothing was ever pruned
            return [], self.pruned > 0 and last_cursor < self.latest_cursor
        if last_cursor + 1 < self.earliest_cursor:
            return [], True
        return [e for e in self._events if e["cursor"] > last_cursor], False

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplayRing(len={len(self._events)}, "
            f"span=[{self.earliest_cursor}, {self.latest_cursor}])"
        )
