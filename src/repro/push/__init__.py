"""repro.push — real-time story-evolution subscriptions.

An :class:`EventBus` tails the structured DecisionLog and fans
created/extended/split/merged/aligned/refined events out to subscribers
over Server-Sent Events (long-poll fallback) with a generation-cursor
resume protocol backed by a bounded :class:`ReplayRing`.  Each
subscriber owns a bounded queue reusing the runtime backpressure
policies, so a slow client sheds its own events instead of convoying
the pipeline.
"""

from repro.push.bus import (
    CONTROL_EVENTS,
    EventBus,
    PushError,
    Subscription,
)
from repro.push.ring import DEFAULT_RING_CAPACITY, ReplayRing
from repro.push.transport import (
    HEARTBEAT_FRAME,
    SSE_HEADERS,
    event_id,
    format_sse,
    parse_last_event_id,
    stream,
)

__all__ = [
    "CONTROL_EVENTS",
    "DEFAULT_RING_CAPACITY",
    "EventBus",
    "HEARTBEAT_FRAME",
    "PushError",
    "ReplayRing",
    "SSE_HEADERS",
    "Subscription",
    "event_id",
    "format_sse",
    "parse_last_event_id",
    "stream",
]
