"""Wire formats for push delivery: SSE framing and resume-id parsing.

Server-Sent Events is the native browser streaming format that fits a
stdlib ``ThreadingHTTPServer``: one long-lived chunked-ish response per
client (we use ``Connection: close`` framing — the stream *is* the rest
of the response), ``id:`` lines giving every event a resume coordinate,
and the browser's ``EventSource`` reconnecting with ``Last-Event-ID``
automatically.  No upgrade handshake, no frame masking, no second
protocol state machine — see DESIGN.md for the SSE-vs-WebSocket
rationale.

The event id is ``<generation>-<cursor>``: the cursor addresses the
replay ring for exact resume, the generation names the ReadView
snapshot to re-fetch if the server answers with a ``reset`` event
instead.  ``parse_last_event_id`` accepts either the full form or a
bare cursor.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from repro.obs.trace import NULL_TRACER
from repro.runtime.queues import QueueClosed

#: comment frame keeping idle connections alive through proxies and
#: letting the server notice a dead client between events
HEARTBEAT_FRAME = b": heartbeat\n\n"

DEFAULT_HEARTBEAT_SECONDS = 15.0

SSE_HEADERS = (
    ("Content-Type", "text/event-stream; charset=utf-8"),
    ("Cache-Control", "no-cache"),
    ("Connection", "close"),
    ("X-Accel-Buffering", "no"),
)


def event_id(event: dict) -> str:
    """``<generation>-<cursor>`` — the client's resume coordinate."""
    return f"{event.get('generation', 0)}-{event.get('cursor', 0)}"


# sp-taint: sanitizer -- returns a validated non-negative int or None
def parse_last_event_id(value: Optional[str]) -> Optional[int]:
    """Cursor from a ``Last-Event-ID`` header (or ``cursor`` param).

    Accepts ``<generation>-<cursor>`` or a bare cursor; returns None for
    a missing or malformed value (treated as a fresh subscription — the
    safe reading of an id we cannot interpret).
    """
    if not value:
        return None
    tail = value.strip().rsplit("-", 1)[-1]
    try:
        cursor = int(tail)
    except ValueError:
        return None
    return cursor if cursor >= 0 else None


#: SSE framing is line-oriented: a CR/LF smuggled into a field value
#: would terminate the line early and forge extra frames
_FRAME_UNSAFE = re.compile(r"[\r\n\x00]")


def _frame_field(value: object) -> str:
    return _FRAME_UNSAFE.sub("", str(value))


# sp-taint: sanitizer -- data is JSON-encoded, framing fields escaped
def format_sse(event: dict) -> bytes:
    """One SSE frame: id, event name, and the payload as one data line.

    The payload is JSON (newline-free by construction with compact
    separators); the ``id:`` and ``event:`` framing fields are stripped
    of CR/LF so no value that ultimately came off the wire — a resumed
    cursor, a subscription filter echoed in a hello frame — can
    terminate a line early and inject frames into the stream.
    """
    data = json.dumps(
        event, separators=(",", ":"), sort_keys=True, default=str
    )
    return (
        f"id: {_frame_field(event_id(event))}\n"
        f"event: {_frame_field(event.get('event', 'message'))}\n"
        f"data: {data}\n\n"
    ).encode("utf-8")


def stream(
    sub,
    wfile,
    heartbeat: float = DEFAULT_HEARTBEAT_SECONDS,
    tracer=None,
    max_events: Optional[int] = None,
) -> str:
    """Pump a subscription's queue into an SSE response until it ends.

    Returns why the stream ended: ``"goodbye"`` (server drain),
    ``"closed"`` (subscription torn down), or ``"limit"`` (client asked
    for at most ``max_events`` data events — handy for curl and CI).
    Write failures (client went away) propagate as ``OSError`` for the
    caller to unsubscribe on.

    Every write is flushed immediately: the request handler's buffered
    ``wfile`` would otherwise sit on frames until 64 KiB accumulate,
    which is the opposite of a push channel.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    sent = 0
    while True:
        try:
            event = sub.pop(timeout=heartbeat)
        except QueueClosed:
            return "closed"
        if event is None:
            wfile.write(HEARTBEAT_FRAME)
            wfile.flush()
            continue
        kind = event.get("event", "message")
        with tracer.span(
            "push.deliver",
            kind=kind,
            cursor=event.get("cursor", 0),
            subscription=sub.name,
            source_trace=event.get("trace_id", ""),
        ):
            wfile.write(format_sse(event))
            wfile.flush()
        if kind == "goodbye":
            return "goodbye"
        if kind not in ("hello", "reset", "generation"):
            sent += 1
            if max_events is not None and sent >= max_events:
                return "limit"
