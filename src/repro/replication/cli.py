"""``storypivot-replica`` — serve the read path from a follower.

Point it at a leader started with ``storypivot-api --follow --wal-dir
... --replication-port N``: the follower bootstraps from the leader's
latest checkpoint snapshot, tails its WAL segments, and serves the same
read-path API from its own materialized views.  Aggregate read
throughput scales with follower count while the leader keeps the write
path to itself.

Examples::

    storypivot-api --synthetic 500 --follow --wal-dir state/ \\
        --replication-port 8421 &
    storypivot-replica --leader http://127.0.0.1:8421 --port 8322 &
    storypivot-replica --leader http://127.0.0.1:8421 --port 8323 &
    curl -s localhost:8322/healthz | python -m json.tool
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Optional, Sequence

import os

from repro.errors import StoryPivotError
from repro.obs import SpanStore, Tracer
from repro.obs.propagate import make_node_id
from repro.obs.slo import SLOEngine, default_objectives
from repro.push import EventBus
from repro.resilience.breaker import CircuitOpenError

from repro.replication.follower import ReplicaRuntime, SourceMetaShim
from repro.server.app import StoryPivotAPI
from repro.server.views import ViewRefresher, ViewStore

DEFAULT_PORT = 8322


def build_parser(prog: str = "storypivot-replica") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Serve the StoryPivot read-path API from a replica "
                    "that tails a leader's WAL.",
    )
    parser.add_argument("--leader", required=True, metavar="URL",
                        help="leader replication endpoint, e.g. "
                             "http://127.0.0.1:8421")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             f"0 = ephemeral)")
    parser.add_argument("--poll-interval", type=float, default=0.2,
                        metavar="SEC",
                        help="WAL tail cadence (default 0.2s; a backlog "
                             "is drained at full speed regardless)")
    parser.add_argument("--refresh-interval", type=float, default=1.0,
                        metavar="SEC", help="view rebuild cadence")
    parser.add_argument("--lag-budget", type=float, default=None,
                        metavar="SEC",
                        help="replication + view staleness budget: past "
                             "this, /healthz degrades and data requests "
                             "are shed with 503 + Retry-After")
    parser.add_argument("--cache-size", type=int, default=512, metavar="N",
                        help="response cache entries (0 disables)")
    parser.add_argument("--rate-limit", type=float, default=0.0,
                        metavar="RPS",
                        help="per-client requests/second (0 = unlimited)")
    parser.add_argument("--burst", type=float, default=20.0,
                        help="rate-limiter burst size (default 20)")
    parser.add_argument("--access-log", action="store_true",
                        help="write JSON access log lines to stderr")
    parser.add_argument("--trace-sample", type=float, default=0.0,
                        metavar="RATE",
                        help="head-sampling rate in [0, 1] for apply and "
                             "request traces (default 0.0)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="persist replication cursors + shard state "
                             "here; a restarted replica then warm-starts "
                             "and tails from its saved position instead "
                             "of re-bootstrapping from the leader")
    parser.add_argument("--persist-every", type=float, default=5.0,
                        metavar="SEC",
                        help="--state-dir save cadence (default 5s)")
    parser.add_argument("--node-id", default=None, metavar="ID",
                        help="fleet identity stamped on spans, announced "
                             "to the leader's /clusterz registry "
                             "(default: follower@host:port)")
    parser.add_argument("--advertise-url", default=None, metavar="URL",
                        help="base URL the leader should scrape this "
                             "node's /metricz at (default: "
                             "http://<host>:<port>)")
    parser.add_argument("--trace-export-mb", type=int, default=64,
                        metavar="MB",
                        help="rotate the JSONL trace export (under "
                             "--state-dir) past this size (default 64)")
    parser.add_argument("--trace-keep", type=int, default=3, metavar="N",
                        help="sealed trace-export files retained after "
                             "rotation (default 3)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    node_id = args.node_id or make_node_id("follower", args.port or None)
    export_path = (
        os.path.join(args.state_dir, "traces.jsonl")
        if args.state_dir else None
    )
    span_store = SpanStore(
        export_path=export_path,
        export_max_bytes=args.trace_export_mb * 1024 * 1024,
        export_keep_files=args.trace_keep,
    )
    tracer = Tracer(
        sample_rate=args.trace_sample, store=span_store, node_id=node_id
    )

    replica = ReplicaRuntime(
        args.leader,
        poll_interval=args.poll_interval,
        lag_budget=args.lag_budget,
        tracer=tracer,
        state_dir=args.state_dir,
        persist_every=args.persist_every,
        node_id=node_id,
        advertise_url=args.advertise_url,
    )
    try:
        replica.start()
    except (StoryPivotError, CircuitOpenError, OSError) as exc:
        parser.exit(2, f"error: cannot bootstrap from {args.leader}: "
                       f"{exc}\n")

    # followers serve /subscribez too: the bus tails the *replica's*
    # decision log, so subscribers see the story evolution implied by
    # the replicated WAL as it is applied locally
    bus = EventBus(metrics=replica.metrics, tracer=tracer).attach(
        replica.decisions
    )
    store = ViewStore(dataset=replica.dataset)
    refresher = ViewRefresher(
        replica, store,
        interval=args.refresh_interval,
        corpus=SourceMetaShim(replica.source_meta),
        lag_budget=args.lag_budget,
        metrics=replica.metrics,
        tracer=tracer,
        decisions=replica.decisions,
        # mirror the leader: generation = accepted-snippet count, so the
        # same generation means the same replicated prefix on every node
        pin_generations=True,
        bus=bus,
    ).start()

    span_store.bind_metrics(replica.metrics)
    slo = SLOEngine(default_objectives(
        replica.metrics, refresher=refresher, runtime=replica,
        staleness_limit=args.lag_budget,
    )).start(interval=2.0)

    api = StoryPivotAPI(
        store,
        host=args.host,
        port=args.port,
        metrics=replica.metrics,
        cache_entries=args.cache_size,
        rate_limit=args.rate_limit,
        burst=args.burst,
        access_log=sys.stderr if args.access_log else None,
        refresher=refresher,
        runtime=replica,
        tracer=tracer,
        decisions=replica.decisions,
        bus=bus,
        node_id=node_id,
        slo=slo,
    ).start()
    # the listener knows its real port only now: advertise it to the
    # leader's registry so /clusterz can scrape this node's /metricz
    if not replica.advertise_url:
        replica.advertise_url = args.advertise_url or api.address
    replica._maybe_register(force=True)
    print(f"replica of {args.leader} serving {replica.dataset} on "
          f"{api.address} (generation {store.generation}) as {node_id}",
          flush=True)

    stop = threading.Event()

    def _shutdown(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        print("shutting down: draining in-flight requests", flush=True)
        slo.stop()
        api.close()
        refresher.stop()
        replica.stop()
        span_store.close()
    return 0


def _console_entry() -> int:
    try:
        return main()
    except BrokenPipeError:
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)


if __name__ == "__main__":
    raise SystemExit(_console_entry())
