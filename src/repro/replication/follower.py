"""Follower side of WAL-shipping replication.

:class:`ReplicaRuntime` is the read-only twin of
:class:`~repro.runtime.runtime.ShardedRuntime`: it bootstraps each shard
from a leader snapshot, then tails the leader's WAL and applies records
through ordinary identification — replay is byte-identical, so a
follower that has applied the same accepted prefix materializes exactly
the leader's story state.  It duck-types the runtime surface the server
stack consumes (``accepted``, ``merged_pivot()``, ``health()``,
``decisions``), so a :class:`~repro.server.views.ViewRefresher` and
:class:`~repro.server.app.StoryPivotAPI` serve from a follower
unchanged.

Resilience: every leader fetch runs through a
:class:`~repro.resilience.policies.RetryPolicy` and a
:class:`~repro.resilience.breaker.CircuitBreaker` — a dead leader trips
the breaker open and the follower degrades to *stale but serving*, never
to crashed.  Applied batches are ``replication.apply`` spans; per-shard
lag is exported as ``replication.lag_records{shard=N}`` gauges plus an
aggregate ``replication.lag_seconds``.

Delivery hazards are handled at apply time: records are sorted by
sequence (out-of-order delivery inside a batch), already-applied
sequences are skipped (duplicate delivery; also ``has_snippet`` makes
the apply idempotent), a response for a future cursor is discarded
(reordered responses), and a CRC32 frame mismatch aborts the batch so
the records are re-fetched rather than applied corrupt.
"""

from __future__ import annotations

import inspect
import json
import os
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import StoryPivotConfig
from repro.core.persistence import (
    dumps_state,
    load_state,
    snippet_from_record,
)
from repro.core.pipeline import StoryPivot
from repro.errors import DataFormatError, StoryPivotError
from repro.obs.decisions import DecisionLog
from repro.obs.propagate import (
    inject_headers,
    make_node_id,
    parse_traceparent,
)
from repro.obs.trace import NULL_TRACER, add_event
from repro.replication.protocol import (
    DEFAULT_BATCH_RECORDS,
    MANIFEST_KIND,
    REGISTER_KIND,
    SNAPSHOT_KIND,
    WAL_KIND,
    check_payload,
    manifest_url,
    register_url,
    snapshot_url,
    wal_url,
)
from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.policies import RetryPolicy
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.wal import verify_record

#: fetch schedule while tailing: quick, bounded — the next poll is the
#: real retry, this only rides out socket-level blips
DEFAULT_FETCH_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.05, factor=2.0, max_delay=0.5, jitter=0.1
)

#: bootstrap schedule: patient, because the leader may still be starting
DEFAULT_BOOTSTRAP_RETRY = RetryPolicy(
    max_attempts=20, base_delay=0.1, factor=1.5, max_delay=1.0, jitter=0.1
)


class ReplicationError(StoryPivotError):
    """A replication fetch or apply failed past its retry budget."""


def _http_transport(timeout: float) -> Callable[..., bytes]:
    def fetch(url: str, headers: Optional[Dict[str, str]] = None) -> bytes:
        request = urllib.request.Request(url, headers=headers or {})
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read()

    return fetch


def _transport_takes_headers(transport: Callable[..., bytes]) -> bool:
    """Whether ``transport`` accepts a second ``headers`` argument.

    The transport has been injectable since PR 6 with a one-argument
    ``transport(url)`` contract; existing fault-injection transports
    keep working untouched — they simply don't carry the traceparent.
    """
    try:
        parameters = inspect.signature(transport).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = [
        p for p in parameters
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(positional) >= 2:
        return True
    return any(p.kind == p.VAR_POSITIONAL for p in parameters) or any(
        p.name == "headers" and p.kind == p.KEYWORD_ONLY for p in parameters
    )


class ReplicationClient:
    """Pull-side HTTP client: retries, breaker, injectable transport."""

    def __init__(
        self,
        leader_url: str,
        timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        transport: Optional[Callable[..., bytes]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.leader_url = leader_url.rstrip("/")
        self.retry = retry if retry is not None else DEFAULT_FETCH_RETRY
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                name="replication",
                failure_threshold=0.6,
                window=20,
                min_calls=5,
                reset_timeout=1.0,
                metrics=metrics,
            )
        )
        self._transport = (
            transport if transport is not None else _http_transport(timeout)
        )
        self._headers_ok = _transport_takes_headers(self._transport)

    def _fetch_json(
        self, url: str, kind: str, retry: Optional[RetryPolicy] = None
    ) -> Dict[str, object]:
        retry = retry if retry is not None else self.retry

        def pull() -> Dict[str, object]:
            if self._headers_ok:
                # ambient span (bootstrap root, traced read) rides along
                raw = self._transport(url, inject_headers())
            else:
                raw = self._transport(url)
            return check_payload(json.loads(raw.decode("utf-8")), kind)

        return self.breaker.call_with_retry(pull, retry=retry, key=url)

    def fetch_manifest(
        self, retry: Optional[RetryPolicy] = None
    ) -> Dict[str, object]:
        return self._fetch_json(
            manifest_url(self.leader_url), MANIFEST_KIND, retry=retry
        )

    def fetch_snapshot(self, shard_id: int) -> Dict[str, object]:
        return self._fetch_json(
            snapshot_url(self.leader_url, shard_id), SNAPSHOT_KIND
        )

    def fetch_wal(
        self, shard_id: int, from_seq: int, max_records: int
    ) -> Dict[str, object]:
        return self._fetch_json(
            wal_url(self.leader_url, shard_id, from_seq, max_records),
            WAL_KIND,
        )

    def register(self, node_id: str, metrics_url: str = "") -> Dict[str, object]:
        return self._fetch_json(
            register_url(self.leader_url, node_id, metrics_url),
            REGISTER_KIND,
        )


class _ReplicaShard:
    """One follower shard: a pivot, a cursor, and a lock."""

    def __init__(self, shard_id: int, config: StoryPivotConfig) -> None:
        self.shard_id = shard_id
        self.pivot = StoryPivot(config)
        self.lock = threading.RLock()
        self.cursor = 0  # next leader sequence to apply
        self.leader_position = 0  # last position the leader reported
        self.caught_up_at: Optional[float] = None
        self.behind_since: Optional[float] = None
        self.applied = 0
        self.dirty = False  # applied records not yet persisted locally
        self.saved_at = 0.0


class ReplicaRuntime:
    """Bootstrap from a leader snapshot, tail its WAL, serve reads."""

    role = "follower"

    def __init__(
        self,
        leader_url: str,
        poll_interval: float = 0.2,
        batch_records: int = DEFAULT_BATCH_RECORDS,
        lag_budget: Optional[float] = None,
        client: Optional[ReplicationClient] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        decisions: Optional[DecisionLog] = None,
        bootstrap_retry: Optional[RetryPolicy] = None,
        state_dir: Optional[str] = None,
        persist_every: float = 5.0,
        node_id: Optional[str] = None,
        advertise_url: Optional[str] = None,
        register_interval: float = 10.0,
    ) -> None:
        self.leader_url = leader_url.rstrip("/")
        self.poll_interval = poll_interval
        self.batch_records = batch_records
        self.lag_budget = lag_budget
        #: fleet identity announced to the leader's follower registry;
        #: ``advertise_url`` is where this node's /metricz lives (the
        #: CLI fills it in once the API listener knows its port)
        self.node_id = node_id if node_id else make_node_id("follower")
        self.advertise_url = advertise_url
        self.register_interval = register_interval
        self._registered_at = 0.0
        #: local directory for {cursor, state} persistence — a restarted
        #: follower warm-starts from here and tails from its saved
        #: cursor instead of re-bootstrapping snapshot-then-segments
        self.state_dir = state_dir
        self.persist_every = persist_every
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.decisions = decisions if decisions is not None else DecisionLog()
        self.client = (
            client
            if client is not None
            else ReplicationClient(leader_url, metrics=self.metrics)
        )
        self._bootstrap_retry = (
            bootstrap_retry
            if bootstrap_retry is not None
            else DEFAULT_BOOTSTRAP_RETRY
        )
        self.config: Optional[StoryPivotConfig] = None
        self.dataset = "corpus"
        self.source_meta: Dict[str, Dict[str, str]] = {}
        self._shards: List[_ReplicaShard] = []
        self._started = False
        self._stopped = False
        self._bootstrapped = False
        self._consecutive_errors = 0
        self._last_error: Optional[str] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.metrics.counter("replication.apply.batches")
        self.metrics.counter("replication.apply.records")
        self.metrics.counter("replication.bootstraps")
        self.metrics.counter("replication.resets")
        self.metrics.counter("replication.crc_failures")
        self.metrics.counter("replication.stale_batches")
        self.metrics.counter("replication.errors")
        self.metrics.counter("replication.state_saves")
        self.metrics.counter("replication.warm_starts")
        self.metrics.counter("replication.registrations")
        self.metrics.counter("replication.register_failures")
        self.metrics.counter("wal.torn_records")
        self.metrics.gauge("replication.lag_seconds")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ReplicaRuntime":
        if self._started:
            return self
        self._started = True
        # the bootstrap is one trace: its root is ambient while the
        # manifest and snapshots are pulled, so every fetch carries the
        # traceparent and the leader-side ship spans parent under it —
        # a cold start renders as one stitched cross-node tree
        with self.tracer.span(
            "replication.bootstrap", leader=self.leader_url,
            node=self.node_id,
        ) as boot:
            manifest = self.client.fetch_manifest(retry=self._bootstrap_retry)
            self.config = StoryPivotConfig(**manifest["config"])
            self.dataset = manifest.get("dataset", "corpus")
            self.source_meta = dict(manifest.get("sources", {}))
            num_shards = int(manifest["num_shards"])
            self._shards = [
                _ReplicaShard(shard_id, self.config)
                for shard_id in range(num_shards)
            ]
            # warm start only when the saved state describes the same
            # topology and pipeline config — a reconfigured leader makes
            # local state meaningless, so it is discarded, not migrated
            local = self._load_local_manifest()
            warm = (
                local is not None
                and int(local.get("num_shards", -1)) == num_shards
                and local.get("config") == manifest["config"]
            )
            for shard in self._shards:
                self.metrics.gauge(
                    "replication.lag_records", shard=shard.shard_id
                )
                if warm and self._load_shard(shard):
                    continue
                self._bootstrap_shard(shard)
            if self.state_dir is not None:
                self._save_local_manifest(manifest)
            boot.set(shards=num_shards, warm=bool(warm))
        self._bootstrapped = True
        self._maybe_register(force=True)
        self._thread = threading.Thread(
            target=self._tail_loop,
            name="storypivot-replica-tail",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopped = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # final save so the next start tails from exactly where we stopped
        for shard in self._shards:
            if shard.dirty:
                self._save_shard(shard)

    def __enter__(self) -> "ReplicaRuntime":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- bootstrap ---------------------------------------------------------

    def _bootstrap_shard(self, shard: _ReplicaShard) -> None:
        """Snapshot-then-segments: load the state, cursor to its position."""
        payload = self.client.fetch_snapshot(shard.shard_id)
        pivot = load_state(payload["state"])
        pivot.set_decision_log(self.decisions)
        self._record_restored(pivot)
        with shard.lock:
            shard.pivot = pivot
            shard.cursor = int(payload["position"])
            shard.leader_position = shard.cursor
            shard.applied = 0
            shard.dirty = True  # snapshot state not yet on local disk
        self.metrics.counter("replication.bootstraps").inc()
        add_event(
            "replication.bootstrap", shard=shard.shard_id,
            position=shard.cursor, snippets=pivot.num_snippets,
        )
        if self.state_dir is not None:
            # persist immediately: a crash right after bootstrap should
            # warm-start, not pay the snapshot transfer twice
            self._save_shard(shard)

    def _record_restored(self, pivot: StoryPivot) -> None:
        """Found every adopted story in the decision log.

        Mirrors what :meth:`repro.runtime.shard.Shard.restore` does on
        the leader's resume path: stories arriving via snapshot (or a
        local warm start) enter the log through a ``restored`` founding
        event, so ``/storyz/{id}/history`` on a follower covers
        creation-time lineage instead of starting mid-life.
        """
        for source_id, story_set in sorted(pivot.story_sets().items()):
            for story in story_set:
                self.decisions.record(
                    "restored", story.story_id, source_id,
                    num_snippets=len(story),
                )

    # -- local state persistence -------------------------------------------

    def _shard_path(self, shard_id: int) -> str:
        return os.path.join(self.state_dir, f"shard-{shard_id}.json")

    def _manifest_path(self) -> str:
        return os.path.join(self.state_dir, "manifest.json")

    def _load_local_manifest(self) -> Optional[Dict[str, object]]:
        if self.state_dir is None:
            return None
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _save_local_manifest(self, manifest: Dict[str, object]) -> None:
        os.makedirs(self.state_dir, exist_ok=True)
        record = {
            "num_shards": int(manifest["num_shards"]),
            "config": manifest["config"],
            "dataset": manifest.get("dataset", "corpus"),
            "sources": manifest.get("sources", {}),
        }
        self._write_atomic(self._manifest_path(), json.dumps(
            record, sort_keys=True
        ))

    def _load_shard(self, shard: _ReplicaShard) -> bool:
        """Warm-start one shard from its local save; False = bootstrap."""
        try:
            with open(
                self._shard_path(shard.shard_id), "r", encoding="utf-8"
            ) as fh:
                payload = json.load(fh)
            cursor = int(payload["cursor"])
            pivot = load_state(payload["state"])
        except (OSError, ValueError, KeyError, TypeError, DataFormatError):
            # missing or torn save: fall back to a fresh bootstrap — a
            # local file must never be able to brick the follower
            return False
        pivot.set_decision_log(self.decisions)
        self._record_restored(pivot)
        with shard.lock:
            shard.pivot = pivot
            shard.cursor = cursor
            shard.leader_position = cursor
            shard.applied = 0
            shard.dirty = False
            shard.saved_at = time.time()
        self.metrics.counter("replication.warm_starts").inc()
        add_event(
            "replication.warm_start", shard=shard.shard_id,
            cursor=cursor, snippets=pivot.num_snippets,
        )
        return True

    def _save_shard(self, shard: _ReplicaShard) -> None:
        if self.state_dir is None:
            return
        with shard.lock:
            cursor = shard.cursor
            state = dumps_state(shard.pivot)
        os.makedirs(self.state_dir, exist_ok=True)
        self._write_atomic(
            self._shard_path(shard.shard_id),
            json.dumps({"cursor": cursor, "state": state}, sort_keys=True),
        )
        with shard.lock:
            # records applied while we serialized stay dirty (cursor
            # moved past what was written); only an unchanged cursor
            # means the save is complete
            if shard.cursor == cursor:
                shard.dirty = False
            shard.saved_at = time.time()
        self.metrics.counter("replication.state_saves").inc()

    @staticmethod
    def _write_atomic(path: str, text: str) -> None:
        """tmp + rename so a crash mid-write leaves the old save intact."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _maybe_persist(self) -> None:
        if self.state_dir is None:
            return
        now = time.time()
        for shard in self._shards:
            if shard.dirty and now - shard.saved_at >= self.persist_every:
                self._save_shard(shard)

    # -- tailing -----------------------------------------------------------

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            pause = self.poll_interval
            try:
                progressed = False
                for shard in self._shards:
                    if self._stop.is_set():
                        return
                    progressed |= self._poll_shard(shard)
                self._consecutive_errors = 0
                self._last_error = None
                if progressed:
                    pause = 0.0  # drain a backlog at full speed
            except CircuitOpenError as exc:
                # the leader is down; the breaker already knows — wait
                # out (a bounded slice of) the cool-down and keep serving
                self._last_error = str(exc)
                pause = min(max(exc.retry_after, 0.05), 1.0)
            except Exception as exc:
                self._consecutive_errors += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                self.metrics.counter("replication.errors").inc()
            self._refresh_lag_gauges()
            self._maybe_persist()
            self._maybe_register()
            if pause:
                self._stop.wait(pause)

    def _maybe_register(self, force: bool = False) -> None:
        """Refresh this node's entry in the leader's follower registry.

        Best-effort on purpose: registration is observability plumbing
        and must never be able to stall or fail replication — a leader
        that predates the register endpoint 404s, and that is fine.
        """
        now = time.time()
        if not force and now - self._registered_at < self.register_interval:
            return
        self._registered_at = now
        try:
            self.client.register(self.node_id, self.advertise_url or "")
            self.metrics.counter("replication.registrations").inc()
        except Exception:
            self.metrics.counter("replication.register_failures").inc()

    def _poll_shard(self, shard: _ReplicaShard) -> bool:
        """One fetch+apply round; True when records were applied."""
        payload = self.client.fetch_wal(
            shard.shard_id, shard.cursor, self.batch_records
        )
        if int(payload["shard"]) != shard.shard_id:
            self.metrics.counter("replication.stale_batches").inc()
            return False
        if payload.get("reset"):
            # our cursor fell behind the leader's retention window:
            # tailing cannot bridge the gap, re-bootstrap from snapshot
            self.metrics.counter("replication.resets").inc()
            add_event(
                "replication.reset", shard=shard.shard_id,
                cursor=shard.cursor, earliest=payload.get("earliest"),
            )
            self._bootstrap_shard(shard)
            return True
        if int(payload["from"]) > shard.cursor:
            # a response for a future cursor (reordered delivery):
            # applying it would skip records — discard and re-fetch
            self.metrics.counter("replication.stale_batches").inc()
            return False
        applied = self._apply_records(
            shard, payload["records"],
            ship_context=parse_traceparent(payload.get("trace")),
        )
        position = int(payload["position"])
        with shard.lock:
            shard.leader_position = max(shard.leader_position, position)
            if shard.cursor >= shard.leader_position:
                shard.caught_up_at = time.time()
                shard.behind_since = None
            elif shard.behind_since is None:
                shard.behind_since = time.time()
        return applied > 0

    def _apply_records(
        self,
        shard: _ReplicaShard,
        records: List[Dict[str, object]],
        ship_context=None,
    ) -> int:
        """Apply a batch in sequence order; returns records applied.

        The leader is authoritative about gaps: a fetch starts at our
        cursor, so a first record past the cursor means the skipped
        sequences do not exist on the leader (torn records pruned from
        its WAL) — the cursor jumps forward.  A CRC mismatch, by
        contrast, means *our copy* is bad: the batch is abandoned and
        re-fetched next poll.

        ``ship_context`` is the leader-side ``replication.ship`` span's
        traceparent (from the payload): when present, the apply span
        *continues that trace* instead of rooting a fresh one, so
        /tracez shows leader ship → follower apply as one tree with the
        leader's sampling verdict governing both halves.
        """
        if not records:
            return 0
        ordered = sorted(
            (r for r in records if isinstance(r.get("seq"), int)),
            key=lambda r: r["seq"],
        )
        applied = 0
        if ship_context is not None:
            span_cm = self.tracer.start_remote(
                "replication.apply", ship_context,
                shard=shard.shard_id, batch=len(ordered),
            )
        else:
            # sp-lint: disable=SP301 -- entered by the `with span_cm` below; the branch only picks remote vs local root
            span_cm = self.tracer.span(
                "replication.apply", shard=shard.shard_id, batch=len(ordered)
            )
        links: List[str] = []
        for record in ordered:
            ingest = record.get("trace")
            if ingest and ingest not in links:
                links.append(ingest)
                if len(links) >= 8:
                    break
        with span_cm as span:
            if links:
                # back-links to the leader-side ingest traces whose
                # snippets this batch materializes
                span.set(links=links)
            with shard.lock:
                for record in ordered:
                    seq = record["seq"]
                    if seq < shard.cursor:
                        continue  # duplicate delivery; already applied
                    if seq > shard.cursor:
                        # the leader is authoritative about gaps (torn
                        # records pruned from its WAL) — but a jump is
                        # rare enough that it must leave a trail
                        self.metrics.counter(
                            "replication.gap_jumps"
                        ).inc()
                        span.add_event(
                            "replication.gap_jump", shard=shard.shard_id,
                            cursor=shard.cursor, seq=seq,
                        )
                    if not verify_record(record):
                        self.metrics.counter(
                            "replication.crc_failures"
                        ).inc()
                        self.metrics.counter("wal.torn_records").inc()
                        span.add_event(
                            "replication.crc_mismatch", seq=seq,
                            shard=shard.shard_id,
                        )
                        break  # refetch the batch rather than apply junk
                    try:
                        snippet = snippet_from_record(record)
                    except (KeyError, TypeError, ValueError) as exc:
                        self.metrics.counter("wal.torn_records").inc()
                        span.add_event(
                            "replication.bad_record", seq=seq,
                            error=str(exc),
                        )
                        break
                    if not shard.pivot.has_snippet(snippet.snippet_id):
                        shard.pivot.add_snippet(snippet)
                    shard.cursor = seq + 1
                    shard.applied += 1
                    shard.dirty = True
                    applied += 1
            span.set(applied=applied, cursor=shard.cursor)
        if applied:
            self.metrics.counter("replication.apply.batches").inc()
            self.metrics.counter("replication.apply.records").inc(applied)
        return applied

    # -- lag ---------------------------------------------------------------

    def _refresh_lag_gauges(self) -> None:
        for shard in self._shards:
            self.metrics.gauge(
                "replication.lag_records", shard=shard.shard_id
            ).set(max(0, shard.leader_position - shard.cursor))
        self.metrics.gauge("replication.lag_seconds").set(
            round(self.lag_seconds(), 3)
        )

    def lag_records(self) -> int:
        """Total records the follower trails the leader by."""
        return sum(
            max(0, shard.leader_position - shard.cursor)
            for shard in self._shards
        )

    def lag_seconds(self) -> float:
        """Seconds the worst shard has been behind (0.0 when caught up).

        Mirrors :meth:`ViewRefresher.staleness` semantics: 0 while every
        shard's cursor matches the last leader position it saw, else the
        age of the oldest catch-up deficit.  A follower that cannot
        reach the leader at all keeps aging from its last contact.
        """
        worst = 0.0
        now = time.time()
        for shard in self._shards:
            if shard.cursor >= shard.leader_position:
                continue
            since = shard.behind_since
            if since is None:
                since = now
            worst = max(worst, now - since)
        return worst

    # -- the runtime read surface the server stack expects -----------------

    @property
    def accepted(self) -> int:
        """Applied-snippet count — the follower's generation clock.

        Equals the leader's accepted count for the replicated prefix
        (snapshot base + applied WAL records), which is what lets a
        pinned-generation follower view carry the same generation as the
        leader view built from the same prefix.
        """
        return sum(shard.cursor for shard in self._shards)

    def merged_pivot(self) -> StoryPivot:
        """A standalone pivot holding every shard's stories (read-only)."""
        if self.config is None:
            raise ReplicationError("replica is not bootstrapped yet")
        with self.tracer.span("shards.merge"):
            # shard locks in ascending shard order — same global order
            # the leader uses, so lockwatch sees one consistent ranking
            story_sets: Dict[str, object] = {}
            acquired = []
            try:
                for shard in self._shards:
                    shard.lock.acquire()
                    acquired.append(shard.lock)
                for shard in self._shards:
                    story_sets.update(shard.pivot.story_sets())
                merged = StoryPivot(self.config)
                for source_id in sorted(story_sets):
                    for story in story_sets[source_id]:
                        merged.restore_story(
                            source_id, story.story_id, story.snippets()
                        )
            finally:
                for lock in reversed(acquired):
                    lock.release()
            return merged

    def dumps_state(self) -> str:
        """Canonical checkpoint text of the merged replicated state."""
        return dumps_state(self.merged_pivot(), canonical_ids=True)

    def health(self) -> Dict[str, object]:
        """Follower replication health for ``/healthz``.

        ``ok`` — bootstrapped, tailing, within the lag budget;
        ``degraded`` — behind budget, erroring, or breaker open (still
        serving the last replicated state); ``unhealthy`` — the tail
        thread died or the replica never bootstrapped.
        """
        lag_seconds = self.lag_seconds()
        lag_records = self.lag_records()
        tailing = self._thread is not None and self._thread.is_alive()
        if self._stopped or not self._started:
            status = "unhealthy"
        elif not self._bootstrapped or not tailing:
            status = "unhealthy"
        elif (
            self._consecutive_errors > 0
            or self.client.breaker.state != "closed"
            or (self.lag_budget is not None and lag_seconds > self.lag_budget)
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "role": self.role,
            "leader": self.leader_url,
            "bootstrapped": self._bootstrapped,
            "lag_seconds": round(lag_seconds, 3),
            "lag_records": lag_records,
            "lag_budget": self.lag_budget,
            "breaker": self.client.breaker.state,
            "consecutive_errors": self._consecutive_errors,
            "last_error": self._last_error,
            "shards": [
                {
                    "shard": shard.shard_id,
                    "cursor": shard.cursor,
                    "leader_position": shard.leader_position,
                    "lag_records": max(
                        0, shard.leader_position - shard.cursor
                    ),
                    "applied": shard.applied,
                }
                for shard in self._shards
            ],
        }

    def stats(self) -> Dict[str, int]:
        snap = self.metrics.snapshot()

        def value(name: str) -> int:
            return int(snap.get(name, {}).get("value", 0))

        return {
            "applied": value("replication.apply.records"),
            "batches": value("replication.apply.batches"),
            "bootstraps": value("replication.bootstraps"),
            "resets": value("replication.resets"),
            "crc_failures": value("replication.crc_failures"),
            "stale_batches": value("replication.stale_batches"),
            "errors": value("replication.errors"),
            "lag_records": self.lag_records(),
        }

    def metrics_json(self, indent: int = 2) -> str:
        return self.metrics.to_json(indent=indent)


class SourceMetaShim:
    """Corpus stand-in carrying only source metadata.

    :class:`~repro.server.views.ReadView` reads ``corpus.sources`` (a
    mapping of objects with ``name``/``kind``) to label ``/sources``
    rows; the follower has no corpus, only the manifest's metadata, so
    this shim rehydrates just enough for view parity with the leader.
    """

    class _Meta:
        __slots__ = ("name", "kind")

        def __init__(self, name: str, kind: str) -> None:
            self.name = name
            self.kind = kind

    def __init__(self, sources: Dict[str, Dict[str, str]]) -> None:
        self.sources = {
            source_id: self._Meta(
                meta.get("name", source_id), meta.get("kind", "unknown")
            )
            for source_id, meta in sources.items()
        }


def source_meta_record(corpus) -> Dict[str, Dict[str, str]]:
    """Manifest-ready source metadata of a corpus (leader side)."""
    if corpus is None:
        return {}
    return {
        source_id: {"name": source.name, "kind": source.kind}
        for source_id, source in corpus.sources.items()
    }
