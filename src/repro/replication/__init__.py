"""``repro.replication`` — read-replica scale-out via WAL shipping.

A **leader** (the sharded ingestion runtime) owns the write path; any
number of **followers** bootstrap from a leader checkpoint snapshot,
then tail the leader's per-shard WAL segments over a localhost HTTP
replication protocol and materialize the same
:class:`~repro.core.pipeline.StoryPivot` state (recovery replay is
byte-identical, so replaying the same records yields the same stories).
Followers serve the existing read path from their own
:class:`~repro.server.views.ReadView` snapshots — read throughput scales
with follower count while the leader touches only the write path.

* :class:`~repro.replication.leader.ReplicationServer` — the leader-side
  HTTP endpoint shipping manifest, snapshots and WAL records;
* :class:`~repro.replication.follower.ReplicaRuntime` — the follower:
  bootstrap, tailing, apply, and the runtime read surface
  (``merged_pivot``/``accepted``/``health``) the server stack expects;
* ``storypivot-replica`` (:mod:`repro.replication.cli`) — serve the API
  from a follower.
"""

from repro.replication.follower import ReplicaRuntime, ReplicationClient
from repro.replication.leader import ReplicationServer

__all__ = ["ReplicaRuntime", "ReplicationClient", "ReplicationServer"]
