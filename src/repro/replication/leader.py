"""Leader side of WAL-shipping replication.

:class:`ReplicationServer` exposes a live
:class:`~repro.runtime.runtime.ShardedRuntime` (thread executor with a
WAL directory — the configuration where per-shard WALs exist) over the
pull protocol in :mod:`repro.replication.protocol`.  It runs on its own
``ThreadingHTTPServer`` and port so replication traffic never competes
with the read-path listener, and it touches the runtime only through
the leader accessors (``shard_snapshot`` takes the shard lock for an
atomic state+position pair; WAL record reads are lock-free — sealed
segments are immutable and the active file tolerates a racing append).

Every shipped response is a ``replication.ship`` span and counted into
the shared metrics registry, so ``/metricz`` and ``/tracez`` on the
leader show shipping next to ingestion.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.core.persistence import config_record
from repro.obs.propagate import extract_context, span_traceparent
from repro.obs.trace import Tracer, current_span
from repro.replication.protocol import (
    DEFAULT_BATCH_RECORDS,
    MANIFEST_KIND,
    MANIFEST_PATH,
    PROTOCOL_VERSION,
    REGISTER_KIND,
    REGISTER_PATH,
    SNAPSHOT_KIND,
    SNAPSHOT_PATH,
    WAL_KIND,
    WAL_PATH,
)

JSON_TYPE = "application/json"

#: hard ceiling on records per WAL response, whatever the client asks
MAX_BATCH_RECORDS = 4096


class ReplicationServer:
    """Ship snapshots and WAL segments from a leader runtime."""

    def __init__(
        self,
        runtime,
        host: str = "127.0.0.1",
        port: int = 0,
        dataset: str = "corpus",
        sources: Optional[Dict[str, Dict[str, str]]] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self._requested_port = port
        self.dataset = dataset
        #: source metadata shipped in the manifest so follower views
        #: render identical /sources payloads (names and kinds are not
        #: recoverable from WAL records alone)
        self.sources = sources if sources is not None else {}
        self.metrics = metrics if metrics is not None else runtime.metrics
        self.tracer = tracer if tracer is not None else Tracer(sample_rate=0.0)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        # soft-state follower registry for the observability plane:
        # node id -> {url, registered_at, registrations}; populated by
        # /replication/v1/register, consumed by the FleetCollector
        self._followers: Dict[str, Dict[str, object]] = {}
        self._followers_lock = threading.Lock()
        # touch the WAL accessor now: a runtime that cannot lead
        # (process executor / no wal_dir) must fail at construction,
        # not on the first follower request
        runtime.start()
        runtime.shard_wal(0)
        self.metrics.counter("replication.ship.requests")
        self.metrics.counter("replication.ship.records")
        self.metrics.counter("replication.ship.bytes")
        self.metrics.counter("replication.ship.snapshots")
        self.metrics.counter("replication.ship.resets")
        self.metrics.counter("replication.ship.registrations")

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("replication server is not started")
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReplicationServer":
        if self._server is not None:
            return self
        source = self

        class Handler(_ReplicationRequestHandler):
            ship = source

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="storypivot-replication",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ReplicationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- payloads ----------------------------------------------------------

    def manifest_payload(self) -> Dict[str, object]:
        return {
            "kind": MANIFEST_KIND,
            "version": PROTOCOL_VERSION,
            "role": "leader",
            "num_shards": self.runtime.options.num_shards,
            "config": config_record(self.runtime.config),
            "dataset": self.dataset,
            "sources": self.sources,
            "positions": self.runtime.wal_positions(),
        }

    def snapshot_payload(self, shard_id: int) -> Dict[str, object]:
        text, position = self.runtime.shard_snapshot(shard_id)
        self.metrics.counter("replication.ship.snapshots").inc()
        payload = {
            "kind": SNAPSHOT_KIND,
            "version": PROTOCOL_VERSION,
            "shard": shard_id,
            "position": position,
            "state": text,
        }
        trace = span_traceparent(current_span())
        if trace is not None:
            payload["trace"] = trace
        return payload

    def wal_payload(
        self, shard_id: int, from_seq: int, max_records: int
    ) -> Dict[str, object]:
        wal = self.runtime.shard_wal(shard_id)
        max_records = max(1, min(max_records, MAX_BATCH_RECORDS))
        earliest = wal.earliest_available_seq()
        if from_seq < earliest:
            # the cursor predates the oldest retained segment: the gap
            # is unbridgeable by tailing, the follower must re-snapshot
            self.metrics.counter("replication.ship.resets").inc()
            return {
                "kind": WAL_KIND,
                "version": PROTOCOL_VERSION,
                "shard": shard_id,
                "from": from_seq,
                "earliest": earliest,
                "position": wal.position,
                "reset": True,
                "records": [],
            }
        records: List[Dict[str, object]] = list(
            wal.iter_records(from_seq, max_records)
        )
        self.metrics.counter("replication.ship.records").inc(len(records))
        payload = {
            "kind": WAL_KIND,
            "version": PROTOCOL_VERSION,
            "shard": shard_id,
            "from": from_seq,
            "earliest": earliest,
            "position": wal.position,
            "reset": False,
            "records": records,
        }
        span = current_span()
        trace = span_traceparent(span)
        if trace is not None:
            payload["trace"] = trace
        if span is not None and span.sampled:
            # the ship span links back to the ingest traces whose
            # records it carries, so /tracez can walk from a shipped
            # batch to the leader-side accepts it forwarded
            links: List[str] = []
            for record in records:
                ingest = record.get("trace")
                if ingest and ingest not in links:
                    links.append(ingest)
                    if len(links) >= 8:
                        break
            if links:
                span.set(links=links)
        return payload

    # -- follower registry -------------------------------------------------

    def register_follower(self, node_id: str, url: str = "") -> Dict[str, object]:
        """Record (or refresh) a follower's presence; returns the ack."""
        if not node_id:
            raise ValueError("register requires a non-empty node id")
        now = time.time()
        with self._followers_lock:
            entry = self._followers.get(node_id)
            if entry is None:
                entry = self._followers[node_id] = {
                    "node": node_id,
                    "first_seen": round(now, 3),
                    "registrations": 0,
                }
            if url:
                entry["url"] = url
            entry["registered_at"] = round(now, 3)
            entry["registrations"] = int(entry["registrations"]) + 1
            count = len(self._followers)
        self.metrics.counter("replication.ship.registrations").inc()
        return {
            "kind": REGISTER_KIND,
            "version": PROTOCOL_VERSION,
            "node": node_id,
            "followers": count,
        }

    def followers(self) -> List[Dict[str, object]]:
        """Registered followers, most recently refreshed first."""
        with self._followers_lock:
            entries = [dict(entry) for entry in self._followers.values()]
        entries.sort(key=lambda e: -float(e.get("registered_at", 0)))
        return entries

    def health(self) -> Dict[str, object]:
        """Leader-side replication component for ``/healthz``."""
        snap = self.metrics.snapshot()

        def value(name: str) -> int:
            return int(snap.get(name, {}).get("value", 0))

        with self._followers_lock:
            followers = len(self._followers)
        return {
            "status": "ok" if self._server is not None else "degraded",
            "role": "leader",
            "address": self.address if self._server is not None else None,
            "positions": self.runtime.wal_positions(),
            "snapshots_shipped": value("replication.ship.snapshots"),
            "records_shipped": value("replication.ship.records"),
            "resets": value("replication.ship.resets"),
            "followers": followers,
        }


class _ReplicationRequestHandler(BaseHTTPRequestHandler):
    """One replication request: route, render JSON, count bytes."""

    ship: ReplicationServer  # bound by ReplicationServer.start()
    protocol_version = "HTTP/1.1"
    server_version = "StoryPivotReplication/1.0"
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        ship = self.ship
        ship.metrics.counter("replication.ship.requests").inc()
        split = urlsplit(self.path)
        path = split.path.rstrip("/")
        params = dict(parse_qsl(split.query))
        # a caller that is itself tracing (follower bootstrap, client
        # read) hands us its context; the ship span then parents into
        # the remote trace instead of rooting a new one
        remote = extract_context(self.headers)
        if remote is not None:
            span_cm = ship.tracer.start_remote(
                "replication.ship", remote, path=path
            )
        else:
            # sp-lint: disable=SP301 -- entered by the `with span_cm` below; the branch only picks remote vs local root
            span_cm = ship.tracer.span("replication.ship", path=path)
        with span_cm as span:
            try:
                if path == MANIFEST_PATH:
                    self._send_json(200, ship.manifest_payload())
                    return
                if path == REGISTER_PATH:
                    node_id = params.get("node", "")
                    span.set(kind="register", node=node_id)
                    if not node_id:
                        self._send_json(
                            400, {"error": "register requires ?node=<id>"}
                        )
                        return
                    self._send_json(
                        200,
                        ship.register_follower(node_id, params.get("url", "")),
                    )
                    return
                shard_id = self._shard_of(path, SNAPSHOT_PATH)
                if shard_id is not None:
                    span.set(shard=shard_id, kind="snapshot")
                    self._send_json(200, ship.snapshot_payload(shard_id))
                    return
                shard_id = self._shard_of(path, WAL_PATH)
                if shard_id is not None:
                    from_seq = self._int_param(params, "from", 0)
                    max_records = self._int_param(
                        params, "max", DEFAULT_BATCH_RECORDS
                    )
                    span.set(shard=shard_id, kind="wal", cursor=from_seq)
                    self._send_json(
                        200, ship.wal_payload(shard_id, from_seq, max_records)
                    )
                    return
                self._send_json(404, {"error": f"unknown path {path!r}"})
            except (BrokenPipeError, ConnectionResetError):
                span.set(outcome="client_gone")
            except Exception as exc:  # keep the shipping thread alive
                span.record_error(exc)
                try:
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                except (BrokenPipeError, ConnectionResetError, OSError):
                    pass

    do_HEAD = do_POST = do_PUT = do_DELETE = do_GET

    def _shard_of(self, path: str, prefix: str) -> Optional[int]:
        if not path.startswith(prefix + "/"):
            return None
        tail = path[len(prefix) + 1:]
        try:
            shard_id = int(tail)
        except ValueError:
            return None
        if not 0 <= shard_id < self.ship.runtime.options.num_shards:
            raise IndexError(f"shard {shard_id} out of range")
        return shard_id

    @staticmethod
    def _int_param(params: Dict[str, str], name: str, default: int) -> int:
        try:
            return int(params.get(name, default))
        except ValueError:
            return default

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.ship.metrics.counter("replication.ship.bytes").inc(len(body))
        self.send_response(status)
        self.send_header("Content-Type", JSON_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
