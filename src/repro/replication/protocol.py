"""Wire format of the WAL-shipping replication protocol.

Everything is JSON over HTTP on a localhost-friendly port, pulled by the
follower (see DESIGN.md for the pull-vs-push rationale).  Three
endpoints, all GET:

``/replication/v1/manifest``
    Leader identity and topology: shard count, pipeline config, dataset
    name, source metadata, and per-shard WAL positions.  A follower
    refuses to tail a leader whose shard count or config differs from
    the one it bootstrapped against.

``/replication/v1/snapshot/<shard>``
    The shard's serialized pivot state plus the WAL ``position`` the
    snapshot covers, taken atomically under the shard lock.  This is the
    cold-follower bootstrap: load the state, set the cursor to
    ``position``, start tailing.

``/replication/v1/wal/<shard>?from=<seq>&max=<n>``
    Framed WAL records with ``seq >= from``, oldest first, plus the
    leader's current ``position``.  When ``from`` predates the oldest
    retained segment the response says ``reset: true`` and carries no
    records — the follower re-bootstraps from a fresh snapshot instead
    of silently skipping a gap.

``/replication/v1/register?node=<id>&url=<metrics-url>``
    Follower presence for the observability plane: a follower announces
    its node id and the base URL its ``/metricz`` lives on, piggybacked
    on the replication channel it already authenticates nothing extra
    for.  Registration is soft state — the leader's
    :class:`~repro.obs.fleet.FleetCollector` scrapes registered nodes
    and an unreachable one is *reported* as down, never unregistered by
    the scrape itself; re-registration on every poll keeps the map
    fresh across leader restarts.

Record integrity: every shipped record carries the CRC32 frame stamped
by :func:`repro.runtime.wal.frame_record`; the follower re-verifies on
receipt, so corruption in transit is detected and the batch re-fetched.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DataFormatError

PROTOCOL_VERSION = 1

MANIFEST_PATH = "/replication/v1/manifest"
SNAPSHOT_PATH = "/replication/v1/snapshot"
WAL_PATH = "/replication/v1/wal"
REGISTER_PATH = "/replication/v1/register"

MANIFEST_KIND = "storypivot-replication-manifest"
SNAPSHOT_KIND = "storypivot-replication-snapshot"
WAL_KIND = "storypivot-replication-wal"
REGISTER_KIND = "storypivot-replication-register"

#: default records per WAL fetch — small enough to keep per-poll apply
#: latency bounded, large enough to amortize the HTTP round trip
DEFAULT_BATCH_RECORDS = 512


def check_payload(payload: Dict[str, object], kind: str) -> Dict[str, object]:
    """Validate a protocol payload's kind/version envelope."""
    if not isinstance(payload, dict) or payload.get("kind") != kind:
        raise DataFormatError(
            f"replication payload is not a {kind!r} "
            f"(got {payload.get('kind') if isinstance(payload, dict) else payload!r})"
        )
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise DataFormatError(
            f"unsupported replication protocol version {version!r} "
            f"(this node speaks {PROTOCOL_VERSION})"
        )
    return payload


def snapshot_url(base: str, shard_id: int) -> str:
    return f"{base.rstrip('/')}{SNAPSHOT_PATH}/{shard_id}"


def manifest_url(base: str) -> str:
    return f"{base.rstrip('/')}{MANIFEST_PATH}"


def wal_url(
    base: str, shard_id: int, from_seq: int,
    max_records: Optional[int] = None,
) -> str:
    url = f"{base.rstrip('/')}{WAL_PATH}/{shard_id}?from={from_seq}"
    if max_records is not None:
        url += f"&max={max_records}"
    return url


def register_url(base: str, node_id: str, metrics_url: str = "") -> str:
    from urllib.parse import urlencode

    params = {"node": node_id}
    if metrics_url:
        params["url"] = metrics_url
    return f"{base.rstrip('/')}{REGISTER_PATH}?{urlencode(params)}"
