"""Query language over detected stories.

Section 4.2: "queries will consist of enquiries about specified real-world
events or entities."  This package turns that into a small, composable
query language::

    entity:UKR keyword:crash after:2014-07-01 before:2014-09-30 source:s1

parsed by :mod:`repro.query.parser` into a :class:`~repro.query.parser.
StoryQuery` and executed by :mod:`repro.query.engine` against an
:class:`~repro.core.alignment.Alignment` (story-level hits, relevance
ranked) or a :class:`~repro.eventdata.corpus.Corpus` (snippet-level hits).
"""

from repro.query.parser import QuerySyntaxError, StoryQuery, parse_query
from repro.query.engine import QueryEngine, StoryHit

__all__ = [
    "StoryQuery",
    "parse_query",
    "QuerySyntaxError",
    "QueryEngine",
    "StoryHit",
]
