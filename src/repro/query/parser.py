"""Parser for the story query language.

Grammar (whitespace-separated terms, all of them optional):

* ``entity:CODE`` — story must mention the entity (repeatable: AND);
* ``keyword:WORD`` — story must contain the stemmed term (repeatable: AND);
* ``source:ID`` — story must include reporting from the source;
* ``after:DATE`` / ``before:DATE`` — story span must intersect the range
  (dates in ``YYYY-MM-DD`` or ``MM/DD/YYYY``);
* ``role:aligning|enriching`` — restrict snippet-level results by role;
* a bare word — shorthand for ``keyword:<word>``, unless it matches a
  known entity code exactly (``UKR``), in which case it is an entity term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import StoryPivotError
from repro.eventdata.models import parse_timestamp


class QuerySyntaxError(StoryPivotError, ValueError):
    """The query string could not be parsed."""


@dataclass
class StoryQuery:
    """A parsed query: conjunctive criteria."""

    entities: Tuple[str, ...] = ()
    keywords: Tuple[str, ...] = ()
    sources: Tuple[str, ...] = ()
    after: Optional[float] = None
    before: Optional[float] = None
    role: Optional[str] = None

    @property
    def is_empty(self) -> bool:
        return not (self.entities or self.keywords or self.sources
                    or self.after is not None or self.before is not None
                    or self.role is not None)


_FIELDS = ("entity", "keyword", "source", "after", "before", "role")


def parse_query(text: str, known_entities: Optional[set] = None) -> StoryQuery:
    """Parse a query string into a :class:`StoryQuery`.

    ``known_entities`` lets bare ALL-CAPS tokens resolve as entity terms
    ("UKR crash" == "entity:UKR keyword:crash").
    """
    entities: List[str] = []
    keywords: List[str] = []
    sources: List[str] = []
    after: Optional[float] = None
    before: Optional[float] = None
    role: Optional[str] = None

    for token in text.split():
        if ":" in token:
            fieldname, _, value = token.partition(":")
            fieldname = fieldname.lower()
            if fieldname not in _FIELDS:
                raise QuerySyntaxError(f"unknown query field {fieldname!r}")
            if not value:
                raise QuerySyntaxError(f"empty value for field {fieldname!r}")
            if fieldname == "entity":
                entities.append(value)
            elif fieldname == "keyword":
                keywords.append(value.lower())
            elif fieldname == "source":
                sources.append(value)
            elif fieldname in ("after", "before"):
                try:
                    timestamp = parse_timestamp(value)
                except ValueError as exc:
                    raise QuerySyntaxError(
                        f"bad date {value!r} for {fieldname}:"
                    ) from exc
                if fieldname == "after":
                    after = timestamp
                else:
                    before = timestamp
            elif fieldname == "role":
                if value not in ("aligning", "enriching"):
                    raise QuerySyntaxError(
                        f"role must be aligning|enriching, got {value!r}"
                    )
                role = value
        else:
            if known_entities is not None and token in known_entities:
                entities.append(token)
            elif token.isupper() and known_entities is None and len(token) <= 6:
                entities.append(token)
            else:
                keywords.append(token.lower())

    if after is not None and before is not None and after > before:
        raise QuerySyntaxError("after: date is later than before: date")
    return StoryQuery(
        entities=tuple(entities),
        keywords=tuple(keywords),
        sources=tuple(sources),
        after=after,
        before=before,
        role=role,
    )
