"""Query execution over alignments and corpora.

Story-level execution scores each integrated story against the query's
entity/keyword terms (profile mass), applies the hard filters (sources,
time range) and returns relevance-ranked :class:`StoryHit` rows with
per-term match explanations — the demo's query box with explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.core.alignment import AlignedStory, Alignment
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet
from repro.query.parser import StoryQuery, parse_query
from repro.text.stem import stem

#: entity vocabularies cached per alignment instance, so constructing a
#: throwaway engine per request (the API server's pattern) costs nothing
#: beyond the first request against each snapshot.
_ENTITY_CACHE: "WeakKeyDictionary[Alignment, FrozenSet[str]]" = (
    WeakKeyDictionary()
)


def known_entities(alignment: Alignment) -> FrozenSet[str]:
    """Entity codes mentioned anywhere in ``alignment`` (cached per instance)."""
    cached = _ENTITY_CACHE.get(alignment)
    if cached is None:
        entities = set()
        for aligned in alignment.aligned.values():
            entities |= set(aligned.entity_profile())
        cached = frozenset(entities)
        _ENTITY_CACHE[alignment] = cached
    return cached


@dataclass(frozen=True)
class StoryHit:
    """One ranked story result."""

    story: AlignedStory
    relevance: float
    matched: Tuple[str, ...]  # human-readable per-term explanations


class QueryEngine:
    """Execute parsed (or raw) queries.

    Construction is O(1): the known-entity vocabulary used to resolve bare
    query tokens is computed lazily on first use and shared across every
    engine over the same :class:`Alignment`.
    """

    def __init__(self, alignment: Alignment,
                 corpus: Optional[Corpus] = None) -> None:
        self.alignment = alignment
        self.corpus = corpus

    @property
    def _known_entities(self) -> FrozenSet[str]:
        return known_entities(self.alignment)

    # -- story-level ------------------------------------------------------

    def execute(self, query, limit: int = 10, offset: int = 0) -> List[StoryHit]:
        """One page of ranked stories matching ``query``.

        ``query`` is a string or :class:`StoryQuery`; ``offset`` skips that
        many ranked hits before taking ``limit`` — the server's pagination
        entry point.  Ranking ties break on ``aligned_id``, so pages are
        deterministic and non-overlapping.
        """
        if isinstance(query, str):
            query = parse_query(query, known_entities=self._known_entities)
        if query.is_empty:
            raise ValueError("empty query")
        if limit <= 0:
            raise ValueError("limit must be positive")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        hits: List[StoryHit] = []
        for aligned in self.alignment.aligned.values():
            hit = self._match_story(aligned, query)
            if hit is not None:
                hits.append(hit)
        hits.sort(key=lambda h: (-h.relevance, h.story.aligned_id))
        return hits[offset:offset + limit]

    def search(self, query, limit: int = 10) -> List[StoryHit]:
        """Ranked stories matching ``query`` (a string or StoryQuery)."""
        return self.execute(query, limit=limit)

    def _match_story(
        self, aligned: AlignedStory, query: StoryQuery
    ) -> Optional[StoryHit]:
        # hard filters first
        if query.sources and not set(query.sources) <= set(aligned.source_ids):
            return None
        if query.after is not None and aligned.end < query.after:
            return None
        if query.before is not None and aligned.start > query.before:
            return None

        relevance = 0.0
        matched: List[str] = []
        entity_profile = aligned.entity_profile()
        term_profile = aligned.term_profile()
        for entity in query.entities:
            weight = entity_profile.get(entity, 0.0)
            if weight <= 0:
                return None  # conjunctive: every entity term must match
            relevance += weight
            matched.append(f"entity {entity} ×{weight:g}")
        for keyword in query.keywords:
            stemmed = stem(keyword)
            weight = term_profile.get(stemmed, 0.0)
            if weight <= 0:
                return None
            relevance += weight
            matched.append(f"keyword {keyword} ({stemmed}) ×{weight:g}")
        if not query.entities and not query.keywords:
            relevance = float(len(aligned))  # filter-only query: rank by size
            matched.append("matched filters")
        return StoryHit(story=aligned, relevance=relevance,
                        matched=tuple(matched))

    # -- snippet-level -----------------------------------------------------

    def search_snippets(self, query, limit: int = 20) -> List[Snippet]:
        """Snippets matching the query's criteria, most recent first."""
        if isinstance(query, str):
            query = parse_query(query, known_entities=self._known_entities)
        if query.is_empty:
            raise ValueError("empty query")
        if limit <= 0:
            raise ValueError("limit must be positive")
        stems = {stem(k) for k in query.keywords}
        results: List[Snippet] = []
        for aligned in self.alignment.aligned.values():
            for snippet in aligned.snippets():
                if query.sources and snippet.source_id not in query.sources:
                    continue
                if query.after is not None and snippet.timestamp < query.after:
                    continue
                if query.before is not None and snippet.timestamp > query.before:
                    continue
                if query.entities and not (
                    set(query.entities) <= snippet.entities
                ):
                    continue
                if stems:
                    from repro.storage.event_store import match_terms
                    if not stems <= set(match_terms(snippet)):
                        continue
                if query.role is not None and (
                    self.alignment.role(snippet.snippet_id) != query.role
                ):
                    continue
                results.append(snippet)
        results.sort(key=lambda s: (-s.timestamp, s.snippet_id))
        return results[:limit]

    def explain(self, query, limit: int = 5) -> str:
        """Human-readable result block (the demo's query answer panel)."""
        hits = self.search(query, limit=limit)
        if not hits:
            return "(no stories match)"
        lines = []
        for hit in hits:
            start, end = hit.story.date_range()
            lines.append(
                f"{hit.story.aligned_id}  relevance {hit.relevance:g}  "
                f"[{', '.join(hit.story.source_ids)}]  {start} – {end}"
            )
            for explanation in hit.matched:
                lines.append(f"    {explanation}")
        return "\n".join(lines)
