"""Story granularity levels (Section 4.3).

"[The two-step mechanism] inherently guarantees that users can choose the
granularity of stories presented to them" — a snippet belongs, at
increasing granularity, to

1. itself (an **event**),
2. a **per-source story** (story identification's output),
3. an **integrated story** (story alignment's output),
4. a **theme**: a cluster of content-similar integrated stories (e.g. all
   Ukraine-crisis threads), computed here by single-link agglomeration
   over integrated-story profiles.

:class:`StoryHierarchy` materializes all four levels from a
:class:`~repro.core.pipeline.PivotResult` and supports navigation in both
directions plus a tree rendering for the demo.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.alignment import AlignedStory, Alignment
from repro.core.pipeline import PivotResult
from repro.errors import UnknownSnippetError
from repro.text.similarity import overlap_coefficient

LEVELS = ("event", "story", "integrated", "theme")


@dataclass
class Theme:
    """A cluster of content-similar integrated stories."""

    theme_id: str
    aligned_ids: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.aligned_ids)


def _story_similarity(a: AlignedStory, b: AlignedStory) -> float:
    """Content similarity of two integrated stories.

    Overlap coefficients (not Jaccard): a one-snippet side story about the
    same actors as a 60-snippet crisis thread *is* the same theme, and must
    not be punished for the size mismatch.  No temporal term: a theme may
    span threads that never overlap in time.
    """
    entity_sim = overlap_coefficient(
        set(a.entity_profile()), set(b.entity_profile())
    )
    term_sim = overlap_coefficient(set(a.term_profile()), set(b.term_profile()))
    return 0.5 * entity_sim + 0.5 * term_sim


def cluster_themes(
    alignment: Alignment, threshold: float = 0.2
) -> List[Theme]:
    """Single-link agglomeration of integrated stories into themes."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    aligned_ids = sorted(alignment.aligned)
    parent = {aid: aid for aid in aligned_ids}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, id_a in enumerate(aligned_ids):
        for id_b in aligned_ids[i + 1:]:
            if find(id_a) == find(id_b):
                continue
            similarity = _story_similarity(
                alignment.aligned[id_a], alignment.aligned[id_b]
            )
            if similarity >= threshold:
                parent[max(find(id_a), find(id_b))] = min(find(id_a),
                                                          find(id_b))
    groups: Dict[str, List[str]] = defaultdict(list)
    for aid in aligned_ids:
        groups[find(aid)].append(aid)
    themes = []
    for index, root in enumerate(sorted(groups)):
        themes.append(Theme(f"theme_{index:03d}", sorted(groups[root])))
    return themes


class StoryHierarchy:
    """Four-level navigation over one pipeline result."""

    def __init__(self, result: PivotResult, theme_threshold: float = 0.2) -> None:
        self.result = result
        self.alignment = result.alignment
        self.themes = cluster_themes(result.alignment, theme_threshold)
        self._theme_of_aligned: Dict[str, str] = {}
        for theme in self.themes:
            for aligned_id in theme.aligned_ids:
                self._theme_of_aligned[aligned_id] = theme.theme_id
        self._theme_by_id = {theme.theme_id: theme for theme in self.themes}
        self._story_of_snippet: Dict[str, str] = {}
        self._aligned_of_story: Dict[str, str] = dict(
            self.alignment.story_to_aligned
        )
        for source_id, story_set in result.story_sets.items():
            for story in story_set:
                for snippet in story.snippets():
                    self._story_of_snippet[snippet.snippet_id] = story.story_id

    # -- upward navigation ---------------------------------------------------

    def path(self, snippet_id: str) -> Dict[str, str]:
        """The snippet's containers at every level.

        >>> # {'event': 's1:v1', 'story': 's1/c0001',
        >>> #  'integrated': "c'0002", 'theme': 'theme_000'}
        """
        story_id = self._story_of_snippet.get(snippet_id)
        if story_id is None:
            raise UnknownSnippetError(snippet_id)
        aligned_id = self._aligned_of_story[story_id]
        return {
            "event": snippet_id,
            "story": story_id,
            "integrated": aligned_id,
            "theme": self._theme_of_aligned[aligned_id],
        }

    # -- downward navigation -----------------------------------------------------

    def theme(self, theme_id: str) -> Theme:
        return self._theme_by_id[theme_id]

    def members(self, level: str, container_id: str) -> List[str]:
        """Ids one level below ``container_id``.

        ``members("theme", t)`` → integrated ids;
        ``members("integrated", c')`` → per-source story ids;
        ``members("story", c)`` → snippet ids.
        """
        if level == "theme":
            return list(self._theme_by_id[container_id].aligned_ids)
        if level == "integrated":
            return sorted(
                self.alignment.aligned[container_id].story_ids
            )
        if level == "story":
            for story_set in self.result.story_sets.values():
                if container_id in story_set:
                    return sorted(
                        story_set.story(container_id).snippet_ids()
                    )
            raise KeyError(container_id)
        raise ValueError(f"level must be theme|integrated|story, got {level!r}")

    # -- rendering -----------------------------------------------------------------

    def render(self, max_themes: int = 10, max_children: int = 6) -> str:
        """Indented tree of the hierarchy (largest themes first)."""
        lines = [f"Story hierarchy: {len(self._story_of_snippet)} events · "
                 f"{len(self._aligned_of_story)} stories · "
                 f"{len(self.alignment)} integrated · "
                 f"{len(self.themes)} themes"]
        ranked = sorted(
            self.themes,
            key=lambda t: (-sum(len(self.alignment.aligned[a])
                                for a in t.aligned_ids), t.theme_id),
        )
        for theme in ranked[:max_themes]:
            total = sum(len(self.alignment.aligned[a])
                        for a in theme.aligned_ids)
            lines.append(f"{theme.theme_id}  ({len(theme)} stories, "
                         f"{total} events)")
            for aligned_id in theme.aligned_ids[:max_children]:
                aligned = self.alignment.aligned[aligned_id]
                terms = ", ".join(t for t, _ in aligned.top_terms(3))
                lines.append(
                    f"  {aligned_id} [{', '.join(aligned.source_ids)}] "
                    f"{len(aligned)} events — {terms}"
                )
                for story in aligned.stories[:max_children]:
                    lines.append(f"    {story.story_id} ({len(story)})")
        return "\n".join(lines)
