"""Configuration for the StoryPivot pipeline.

One dataclass carries every knob of both phases so that the demo can
"combine the implemented methods on the fly" (Section 4.1) by swapping a
config.  Values are validated eagerly; the defaults are the ones used by
the examples and reproduce the paper's qualitative results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.eventdata.models import DAY

#: identification execution modes (Figure 2 + the single-pass baseline the
#: paper contrasts with, Allan et al. 1998).
IDENTIFICATION_MODES = ("temporal", "complete", "single_pass")

#: alignment matching strategies.
ALIGNMENT_STRATEGIES = ("greedy", "optimal", "none")


@dataclass
class StoryPivotConfig:
    """All parameters of identification, alignment and refinement."""

    # -- identification (Section 2.2) ----------------------------------
    identification_mode: str = "temporal"
    window: float = 14 * DAY  # ω — the sliding-window radius of Fig. 2b
    match_threshold: float = 0.48  # min snippet→story score to join
    merge_threshold: float = 0.62  # bridge score at which two stories merge
    split_gap: float = 45 * DAY  # internal silence that splits a story
    enable_merge: bool = True
    enable_split: bool = True
    decay_half_life: float = 14 * DAY  # profile decay in temporal mode
    weights: Dict[str, float] = field(
        default_factory=lambda: {"entity": 0.45, "term": 0.45, "temporal": 0.10}
    )

    # -- sketches (Section 2.4) -------------------------------------------
    use_sketches: bool = False  # MinHash/LSH fast path for candidates
    minhash_permutations: int = 64
    lsh_bands: int = 32
    sketch_candidate_floor: float = 0.05  # min estimated sim to consider

    # -- alignment (Section 2.3) ------------------------------------------
    alignment_strategy: str = "greedy"
    align_threshold: float = 0.30  # min story–story score to align
    alignment_tolerance: float = 2.0  # temporal slack, in multiples of ω
    snippet_align_threshold: float = 0.35  # snippet counterpart similarity
    snippet_align_tolerance: float = 7 * DAY  # counterpart time slack
    trust_weighted_alignment: bool = False  # scale scores by source trust

    # -- refinement (Section 2.3, Figure 1d) ----------------------------
    enable_refinement: bool = True
    refinement_margin: float = 0.10  # evidence margin to move a snippet
    max_refinement_rounds: int = 3

    def __post_init__(self) -> None:
        if self.identification_mode not in IDENTIFICATION_MODES:
            raise ConfigurationError(
                f"identification_mode must be one of {IDENTIFICATION_MODES}, "
                f"got {self.identification_mode!r}"
            )
        if self.alignment_strategy not in ALIGNMENT_STRATEGIES:
            raise ConfigurationError(
                f"alignment_strategy must be one of {ALIGNMENT_STRATEGIES}, "
                f"got {self.alignment_strategy!r}"
            )
        if self.window <= 0:
            raise ConfigurationError("window must be positive")
        for name in ("match_threshold", "merge_threshold", "align_threshold",
                     "snippet_align_threshold"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.merge_threshold < self.match_threshold:
            raise ConfigurationError(
                "merge_threshold must be >= match_threshold"
            )
        if self.decay_half_life <= 0:
            raise ConfigurationError("decay_half_life must be positive")
        if not self.weights:
            raise ConfigurationError("weights must be non-empty")
        if any(w < 0 for w in self.weights.values()) or sum(self.weights.values()) <= 0:
            raise ConfigurationError("weights must be non-negative, sum > 0")
        if self.minhash_permutations % self.lsh_bands != 0:
            raise ConfigurationError(
                "minhash_permutations must be divisible by lsh_bands"
            )
        if self.alignment_tolerance < 0:
            raise ConfigurationError("alignment_tolerance must be non-negative")
        if self.max_refinement_rounds < 0:
            raise ConfigurationError("max_refinement_rounds must be >= 0")

    # -- presets ------------------------------------------------------------

    @classmethod
    def temporal(cls, **overrides) -> "StoryPivotConfig":
        """The paper's recommended temporal mode (Figure 2b)."""
        return cls(identification_mode="temporal", **overrides)

    @classmethod
    def complete(cls, **overrides) -> "StoryPivotConfig":
        """The complete-matching baseline (Figure 2a)."""
        overrides.setdefault("decay_half_life", 3650 * DAY)  # effectively none
        return cls(identification_mode="complete", **overrides)

    @classmethod
    def single_pass(cls, **overrides) -> "StoryPivotConfig":
        """Single-pass on-line event detection baseline (no merge/split)."""
        overrides.setdefault("enable_merge", False)
        overrides.setdefault("enable_split", False)
        return cls(identification_mode="single_pass", **overrides)

    def with_(self, **overrides) -> "StoryPivotConfig":
        """A modified copy (validated)."""
        return replace(self, **overrides)
