"""The StoryPivot facade.

Ties the two phases together exactly as Figure 1 lays them out: per-source
story identification over the partitions ``V_i``, story alignment across
sources, and story refinement propagating alignment decisions back.  Both
batch (:meth:`StoryPivot.run`) and incremental (:meth:`StoryPivot.add_snippet`,
:meth:`StoryPivot.remove_snippet`, :meth:`StoryPivot.add_source_snippets`)
operation are supported — the demo's interactive module adds and removes
documents at will and new sources integrate without recomputing old ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.alignment import AlignedStory, Alignment, StoryAligner
from repro.core.config import StoryPivotConfig
from repro.core.identification import BaseIdentifier, make_identifier
from repro.core.refinement import RefinementResult, StoryRefiner
from repro.core.stories import StorySet
from repro.errors import UnknownSnippetError, UnknownSourceError
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet
from repro.text.stem import stem


@dataclass
class PivotResult:
    """Everything one full pass produces, plus wall-clock timings."""

    story_sets: Dict[str, StorySet]
    alignment: Alignment
    refinement: Optional[RefinementResult]
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def num_stories(self) -> int:
        """Total per-source stories (before integration)."""
        return sum(len(s) for s in self.story_sets.values())

    @property
    def num_integrated(self) -> int:
        return len(self.alignment)

    def source_clusters(self, source_id: str) -> Dict[str, set]:
        return self.story_sets[source_id].as_clusters()

    def global_clusters(self) -> Dict[str, set]:
        return self.alignment.as_clusters()


class StoryPivot:
    """The full system: identification + alignment + refinement."""

    def __init__(
        self,
        config: Optional[StoryPivotConfig] = None,
        decision_log=None,
    ) -> None:
        self.config = config if config is not None else StoryPivotConfig()
        self.aligner = StoryAligner(self.config)
        self.decisions = decision_log
        self.refiner = StoryRefiner(self.config, decisions=decision_log)
        self._identifiers: Dict[str, BaseIdentifier] = {}
        self._snippet_count = 0

    # -- incremental ingestion ---------------------------------------------

    def identifier(self, source_id: str) -> BaseIdentifier:
        """The (lazily created) identifier owning source ``source_id``."""
        identifier = self._identifiers.get(source_id)
        if identifier is None:
            identifier = make_identifier(
                source_id, self.config, decisions=self.decisions
            )
            self._identifiers[source_id] = identifier
        return identifier

    def set_decision_log(self, decision_log) -> None:
        """Attach a decision log after construction (restore path)."""
        self.decisions = decision_log
        self.refiner.decisions = decision_log
        for identifier in self._identifiers.values():
            identifier.decisions = decision_log

    def add_snippet(self, snippet: Snippet):
        """Integrate one snippet into its source's stories.

        Returns the (possibly merged/split) story now holding the snippet.
        """
        story = self.identifier(snippet.source_id).add(snippet)
        self._snippet_count += 1
        return story

    def restore_story(self, source_id: str, story_id: str,
                      snippets: Iterable[Snippet]):
        """Bulk-restore one persisted story without re-running identification.

        The public restoration entry point used by checkpoint loading and
        the sharded runtime's shard merge: the story keeps ``story_id`` and
        its exact snippet membership, all identifier indexes are rebuilt,
        and the snippet count is advanced.  Returns the restored story.
        """
        story = self.identifier(source_id).restore_story(story_id, snippets)
        self._snippet_count += len(story)
        return story

    def has_snippet(self, snippet_id: str) -> bool:
        """Whether any source currently holds ``snippet_id``."""
        return any(
            snippet_id in identifier
            for identifier in self._identifiers.values()
        )

    def remove_snippet(self, snippet_id: str) -> Snippet:
        """Withdraw a snippet from whichever source holds it."""
        for identifier in self._identifiers.values():
            if snippet_id in identifier.stories._story_of:
                self._snippet_count -= 1
                return identifier.remove(snippet_id)
        raise UnknownSnippetError(snippet_id)

    def remove_source(self, source_id: str) -> StorySet:
        """Drop a source entirely (Section 2.4: sources come and go)."""
        identifier = self._identifiers.pop(source_id, None)
        if identifier is None:
            raise UnknownSourceError(source_id)
        self._snippet_count -= identifier.stories.num_snippets
        return identifier.stories

    @property
    def num_snippets(self) -> int:
        return self._snippet_count

    @property
    def source_ids(self) -> List[str]:
        return sorted(self._identifiers)

    def story_sets(self) -> Dict[str, StorySet]:
        return {
            source_id: identifier.stories
            for source_id, identifier in self._identifiers.items()
        }

    # -- batch ---------------------------------------------------------------

    def run(self, corpus: Corpus, order: str = "time") -> PivotResult:
        """Full pass over a corpus: identify per source, align, refine.

        ``order`` chooses the ingestion order: ``"time"`` (occurrence,
        the batch setting) or ``"publication"`` (what a live feed delivers;
        exercises out-of-order integration, Section 2.4).
        """
        if order == "time":
            snippets = corpus.snippets_by_time()
        elif order == "publication":
            snippets = corpus.snippets_by_publication()
        else:
            raise ValueError(f"unknown order {order!r}")
        if self.config.trust_weighted_alignment:
            self.aligner.set_source_trust(
                {s.source_id: s.trust for s in corpus.sources.values()}
            )
        started = time.perf_counter()
        for snippet in snippets:
            self.add_snippet(snippet)
        identified = time.perf_counter()
        result = self.finish()
        result.timings["identification"] = identified - started
        result.timings["total"] = time.perf_counter() - started
        return result

    def finish(self) -> PivotResult:
        """Run alignment (and refinement, if enabled) on the current state."""
        story_sets = self.story_sets()
        align_started = time.perf_counter()
        alignment = self.aligner.align(story_sets)
        align_done = time.perf_counter()
        refinement = None
        if self.config.enable_refinement:
            refinement = self.refiner.refine(story_sets, alignment)
            if refinement.alignment is not None:
                alignment = refinement.alignment
        refine_done = time.perf_counter()
        if self.decisions is not None:
            self.decisions.note_alignment(alignment)
        return PivotResult(
            story_sets=story_sets,
            alignment=alignment,
            refinement=refinement,
            timings={
                "alignment": align_done - align_started,
                "refinement": refine_done - align_done,
            },
        )

    def add_source_snippets(
        self, snippets: Iterable[Snippet], alignment: Alignment
    ) -> Alignment:
        """Integrate a brand-new source into an existing alignment.

        Identification runs only on the new source; its stories then extend
        the alignment incrementally (Section 2.1's efficient handling of
        source additions).
        """
        snippets = list(snippets)
        if not snippets:
            return alignment
        source_ids = {s.source_id for s in snippets}
        if len(source_ids) != 1:
            raise ValueError("add_source_snippets expects a single-source batch")
        source_id = source_ids.pop()
        if source_id in self._identifiers:
            raise ValueError(f"source {source_id!r} already integrated")
        identifier = self.identifier(source_id)
        for snippet in sorted(snippets, key=lambda s: (s.timestamp, s.snippet_id)):
            identifier.add(snippet)
            self._snippet_count += 1
        return self.aligner.extend(alignment, identifier.stories)

    # -- queries (Section 4.2: "enquiries about real-world events or entities")

    def query(
        self,
        alignment: Alignment,
        entity: Optional[str] = None,
        keyword: Optional[str] = None,
        limit: int = 10,
    ) -> List[Tuple[AlignedStory, float]]:
        """Integrated stories mentioning ``entity`` and/or ``keyword``."""
        if entity is None and keyword is None:
            raise ValueError("query needs an entity or a keyword")
        stemmed = stem(keyword) if keyword is not None else None
        scored: List[Tuple[AlignedStory, float]] = []
        for aligned in alignment.aligned.values():
            relevance = 0.0
            if entity is not None:
                relevance += aligned.entity_profile().get(entity, 0.0)
            if stemmed is not None:
                relevance += aligned.term_profile().get(stemmed, 0.0)
            if relevance > 0:
                scored.append((aligned, relevance))
        scored.sort(key=lambda kv: (-kv[1], kv[0].aligned_id))
        return scored[:limit]

    # -- statistics (the Figure 7 dataset card) ------------------------------

    def statistics(self) -> Dict[str, object]:
        """Counters for the statistics module."""
        story_sets = self.story_sets()
        entities = set()
        timestamps: List[float] = []
        for story_set in story_sets.values():
            for story in story_set:
                entities |= story.sketch.entity_set()
                timestamps.extend(story.sketch.timestamps())
        identification_stats = {
            source_id: identifier.stats.snapshot()
            for source_id, identifier in self._identifiers.items()
        }
        return {
            "num_sources": len(self._identifiers),
            "num_snippets": self._snippet_count,
            "num_stories": sum(len(s) for s in story_sets.values()),
            "num_entities": len(entities),
            "start": min(timestamps) if timestamps else None,
            "end": max(timestamps) if timestamps else None,
            "identification": identification_stats,
        }
