"""Persistence: checkpoint and restore StoryPivot state.

A live deployment (Section 2.4's dynamic setting) cannot recompute stories
from scratch on every restart.  This module serializes per-source story
sets — snippets plus their story assignments — to JSON-lines and restores
a fully functional :class:`~repro.core.pipeline.StoryPivot` from them:
identifiers are rebuilt with their indexes and each story is reassembled
with its sketch, so incremental processing continues exactly where the
checkpoint left off.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, TextIO

from repro.core.config import StoryPivotConfig
from repro.core.pipeline import StoryPivot
from repro.core.stories import StorySet
from repro.errors import DataFormatError
from repro.eventdata.models import Snippet


def _snippet_record(snippet: Snippet) -> Dict[str, object]:
    return {
        "snippet_id": snippet.snippet_id,
        "source_id": snippet.source_id,
        "timestamp": snippet.timestamp,
        "published": snippet.published,
        "description": snippet.description,
        "entities": sorted(snippet.entities),
        "keywords": list(snippet.keywords),
        "text": snippet.text,
        "event_type": snippet.event_type,
        "document_id": snippet.document_id,
        "url": snippet.url,
    }


def _snippet_from_record(record: Mapping[str, object]) -> Snippet:
    return Snippet(
        snippet_id=record["snippet_id"],
        source_id=record["source_id"],
        timestamp=record["timestamp"],
        published=record.get("published"),
        description=record["description"],
        entities=frozenset(record.get("entities", [])),
        keywords=tuple(record.get("keywords", [])),
        text=record.get("text", ""),
        event_type=record.get("event_type", "unknown"),
        document_id=record.get("document_id", ""),
        url=record.get("url", ""),
    )


def _config_record(config: StoryPivotConfig) -> Dict[str, object]:
    from dataclasses import asdict

    return asdict(config)


# public aliases: the runtime's write-ahead log reuses the snippet wire format
snippet_record = _snippet_record
snippet_from_record = _snippet_from_record
config_record = _config_record


def canonical_story_ids(story_set) -> Dict[str, str]:
    """Deterministic, content-derived story ids for one source.

    Live story ids come from a process-global counter, so two runs over the
    same corpus — or a killed-and-resumed run — produce equivalent stories
    under different ids.  Ordering stories by ``(start, min snippet id)``
    (a total order: a snippet belongs to exactly one story) yields ids that
    depend only on story *content*, making checkpoints of equivalent states
    byte-comparable.
    """
    ordered = sorted(
        story_set, key=lambda story: (story.start, min(story.snippet_ids()))
    )
    return {
        story.story_id: f"{story_set.source_id}/s{index:06d}"
        for index, story in enumerate(ordered)
    }


def dump_state(pivot: StoryPivot, stream: TextIO,
               canonical_ids: bool = False) -> int:
    """Write the pivot's configuration and story state as JSON lines.

    With ``canonical_ids`` the stories are renumbered by
    :func:`canonical_story_ids`, so equivalent pivots (however their live
    counter ids were allocated) serialize byte-identically.  Returns the
    number of snippets written.
    """
    # sort_keys so the header is canonical: a config that took a JSON
    # round trip (replication manifest) serializes byte-identically to
    # the original whatever its dict insertion order
    stream.write(json.dumps({
        "kind": "storypivot-checkpoint",
        "version": 1,
        "config": _config_record(pivot.config),
    }, sort_keys=True) + "\n")
    written = 0
    for source_id, story_set in sorted(pivot.story_sets().items()):
        renamed = canonical_story_ids(story_set) if canonical_ids else None
        stories = story_set
        if renamed is not None:
            stories = sorted(story_set, key=lambda s: renamed[s.story_id])
        for story in stories:
            story_id = renamed[story.story_id] if renamed else story.story_id
            for snippet in story.snippets():
                record = _snippet_record(snippet)
                record["kind"] = "assignment"
                record["story_id"] = story_id
                stream.write(json.dumps(record) + "\n")
                written += 1
    return written


def dumps_state(pivot: StoryPivot, canonical_ids: bool = False) -> str:
    """String-returning convenience wrapper around :func:`dump_state`."""
    import io

    buffer = io.StringIO()
    dump_state(pivot, buffer, canonical_ids=canonical_ids)
    return buffer.getvalue()


def load_state(stream_or_text) -> StoryPivot:
    """Rebuild a StoryPivot from a checkpoint written by :func:`dump_state`.

    Story ids are preserved; identifier indexes (temporal, inverted, LSH)
    are reconstructed from the stored snippets, so the restored pivot
    accepts new snippets and removals immediately.
    """
    if isinstance(stream_or_text, str):
        lines = stream_or_text.splitlines()
    else:
        lines = stream_or_text.read().splitlines()
    if not lines:
        raise DataFormatError("empty checkpoint")
    header = json.loads(lines[0])
    if header.get("kind") != "storypivot-checkpoint":
        raise DataFormatError("not a StoryPivot checkpoint")
    if header.get("version") != 1:
        raise DataFormatError(f"unsupported version {header.get('version')!r}")
    config_record = dict(header["config"])
    config = StoryPivotConfig(**config_record)

    pivot = StoryPivot(config)
    # first pass: group assignments by (source, story) in file order
    pending: Dict[str, Dict[str, list]] = {}
    for line_no, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") != "assignment":
            raise DataFormatError(f"line {line_no}: unexpected record")
        snippet = _snippet_from_record(record)
        pending.setdefault(snippet.source_id, {}).setdefault(
            record["story_id"], []
        ).append(snippet)

    for source_id in sorted(pending):
        for story_id in sorted(pending[source_id]):
            pivot.restore_story(source_id, story_id, pending[source_id][story_id])
    return pivot
