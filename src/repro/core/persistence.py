"""Persistence: checkpoint and restore StoryPivot state.

A live deployment (Section 2.4's dynamic setting) cannot recompute stories
from scratch on every restart.  This module serializes per-source story
sets — snippets plus their story assignments — to JSON-lines and restores
a fully functional :class:`~repro.core.pipeline.StoryPivot` from them:
identifiers are rebuilt with their indexes and each story is reassembled
with its sketch, so incremental processing continues exactly where the
checkpoint left off.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, TextIO

from repro.core.config import StoryPivotConfig
from repro.core.pipeline import StoryPivot
from repro.core.stories import StorySet
from repro.errors import DataFormatError
from repro.eventdata.models import Snippet


def _snippet_record(snippet: Snippet) -> Dict[str, object]:
    return {
        "snippet_id": snippet.snippet_id,
        "source_id": snippet.source_id,
        "timestamp": snippet.timestamp,
        "published": snippet.published,
        "description": snippet.description,
        "entities": sorted(snippet.entities),
        "keywords": list(snippet.keywords),
        "text": snippet.text,
        "event_type": snippet.event_type,
        "document_id": snippet.document_id,
        "url": snippet.url,
    }


def _snippet_from_record(record: Mapping[str, object]) -> Snippet:
    return Snippet(
        snippet_id=record["snippet_id"],
        source_id=record["source_id"],
        timestamp=record["timestamp"],
        published=record.get("published"),
        description=record["description"],
        entities=frozenset(record.get("entities", [])),
        keywords=tuple(record.get("keywords", [])),
        text=record.get("text", ""),
        event_type=record.get("event_type", "unknown"),
        document_id=record.get("document_id", ""),
        url=record.get("url", ""),
    )


def _config_record(config: StoryPivotConfig) -> Dict[str, object]:
    from dataclasses import asdict

    return asdict(config)


def dump_state(pivot: StoryPivot, stream: TextIO) -> int:
    """Write the pivot's configuration and story state as JSON lines.

    Returns the number of snippets written.
    """
    stream.write(json.dumps({
        "kind": "storypivot-checkpoint",
        "version": 1,
        "config": _config_record(pivot.config),
    }) + "\n")
    written = 0
    for source_id, story_set in sorted(pivot.story_sets().items()):
        for story in story_set:
            for snippet in story.snippets():
                record = _snippet_record(snippet)
                record["kind"] = "assignment"
                record["story_id"] = story.story_id
                stream.write(json.dumps(record) + "\n")
                written += 1
    return written


def dumps_state(pivot: StoryPivot) -> str:
    """String-returning convenience wrapper around :func:`dump_state`."""
    import io

    buffer = io.StringIO()
    dump_state(pivot, buffer)
    return buffer.getvalue()


def load_state(stream_or_text) -> StoryPivot:
    """Rebuild a StoryPivot from a checkpoint written by :func:`dump_state`.

    Story ids are preserved; identifier indexes (temporal, inverted, LSH)
    are reconstructed from the stored snippets, so the restored pivot
    accepts new snippets and removals immediately.
    """
    if isinstance(stream_or_text, str):
        lines = stream_or_text.splitlines()
    else:
        lines = stream_or_text.read().splitlines()
    if not lines:
        raise DataFormatError("empty checkpoint")
    header = json.loads(lines[0])
    if header.get("kind") != "storypivot-checkpoint":
        raise DataFormatError("not a StoryPivot checkpoint")
    if header.get("version") != 1:
        raise DataFormatError(f"unsupported version {header.get('version')!r}")
    config_record = dict(header["config"])
    config = StoryPivotConfig(**config_record)

    pivot = StoryPivot(config)
    # first pass: group assignments by (source, story) in file order
    pending: Dict[str, Dict[str, list]] = {}
    for line_no, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") != "assignment":
            raise DataFormatError(f"line {line_no}: unexpected record")
        snippet = _snippet_from_record(record)
        pending.setdefault(snippet.source_id, {}).setdefault(
            record["story_id"], []
        ).append(snippet)

    for source_id in sorted(pending):
        identifier = pivot.identifier(source_id)
        for story_id in sorted(pending[source_id]):
            story = identifier.stories.new_story()
            # preserve the persisted story id (new_story allocated a fresh
            # one; rebind it under the stored id for stable references)
            del identifier.stories._stories[story.story_id]
            story.story_id = story_id
            identifier.stories._stories[story_id] = story
            for snippet in sorted(pending[source_id][story_id],
                                  key=lambda s: (s.timestamp, s.snippet_id)):
                identifier.stories.assign(snippet, story)
                identifier._snippets[snippet.snippet_id] = snippet
                identifier._index(snippet)
                pivot._snippet_count += 1
    return pivot
