"""Story identification (Section 2.2).

Connects the snippets of one source into stories, incrementally: every
arriving snippet is matched against *candidate stories*, joins the best one
if its score clears the threshold, and founds a new story otherwise.  Three
execution modes are provided:

* :class:`TemporalIdentifier` — Figure 2(b): candidates are stories with a
  member inside the window ``[t - ω, t + ω]``, scored against the story's
  time-decayed profile.  This is the paper's proposal.
* :class:`CompleteIdentifier` — Figure 2(a): candidates are all stories
  sharing any feature, scored against the full undecayed profile.  The
  paper's baseline; it "overfits stories ... independently of the evolution
  of the story in between".
* :class:`SinglePassIdentifier` — classic on-line new-event detection
  (Allan et al. 1998): one pass, nearest centroid, no merges or splits.

All modes construct stories *incrementally* (the paper follows Gruenheid et
al.'s incremental record linkage rather than single-pass detection), so the
identifiers also support merging stories when a snippet bridges two of
them, splitting stories across long silences, and exact removal of
snippets when documents are withdrawn in the demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import StoryPivotConfig
from repro.core.matchers import SnippetMatcher
from repro.core.stories import Story, StorySet, snippet_shingles
from repro.errors import DuplicateSnippetError, UnknownSnippetError
from repro.eventdata.models import Snippet
from repro.sketch.lsh import LshIndex
from repro.sketch.minhash import MinHash
from repro.storage.event_store import match_terms
from repro.storage.inverted_index import InvertedIndex
from repro.storage.temporal_index import TemporalIndex


@dataclass
class IdentificationStats:
    """Work counters the statistics module and benchmarks report."""

    snippets: int = 0
    comparisons: int = 0  # snippet-vs-story scorings performed
    candidates: int = 0  # candidate stories retrieved
    new_stories: int = 0
    merges: int = 0
    splits: int = 0
    removals: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "snippets": self.snippets,
            "comparisons": self.comparisons,
            "candidates": self.candidates,
            "new_stories": self.new_stories,
            "merges": self.merges,
            "splits": self.splits,
            "removals": self.removals,
        }


class BaseIdentifier:
    """Shared machinery: indexes, assignment, merge/split, removal."""

    #: subclasses set this; mirrors config.identification_mode
    mode = "base"

    def __init__(
        self,
        source_id: str,
        config: Optional[StoryPivotConfig] = None,
        decisions=None,
    ) -> None:
        self.source_id = source_id
        self.config = config if config is not None else StoryPivotConfig()
        #: optional repro.obs.decisions.DecisionLog receiving lifecycle
        #: events (created/extended/merged/split/restored) with scores
        self.decisions = decisions
        self.matcher = SnippetMatcher(self.config)
        self._minhash = (
            MinHash(self.config.minhash_permutations)
            if self.config.use_sketches
            else None
        )
        self.stories = StorySet(
            source_id,
            minhash=self._minhash,
            decay_half_life=self.config.decay_half_life,
        )
        self._snippets: Dict[str, Snippet] = {}
        self._temporal = TemporalIndex()
        self._entity_index = InvertedIndex()
        self._term_index = InvertedIndex()
        self._lsh = (
            LshIndex(self.config.minhash_permutations, self.config.lsh_bands)
            if self.config.use_sketches
            else None
        )
        self.stats = IdentificationStats()

    # -- public API ---------------------------------------------------------

    def identify(self, snippets: Iterable[Snippet]) -> StorySet:
        """Process a batch of snippets (in the order given) and return C_i."""
        for snippet in snippets:
            self.add(snippet)
        return self.stories

    def add(self, snippet: Snippet) -> Story:
        """Incrementally integrate one snippet; returns its story."""
        if snippet.source_id != self.source_id:
            raise ValueError(
                f"identifier for {self.source_id!r} got snippet of "
                f"{snippet.source_id!r}"
            )
        if snippet.snippet_id in self._snippets:
            raise DuplicateSnippetError(snippet.snippet_id)
        ranked = self._score_candidates(snippet)
        story = self._place(snippet, ranked)
        self._index(snippet)
        self._post_assign(snippet, story, ranked)
        self.stats.snippets += 1
        return self.stories.story_of(snippet.snippet_id)

    def __contains__(self, snippet_id: str) -> bool:
        return snippet_id in self._snippets

    def restore_story(self, story_id: str, snippets: Iterable[Snippet]) -> Story:
        """Bulk-restore a persisted story under its original id.

        Bypasses candidate scoring entirely — the snippets are assigned to
        one story exactly as a checkpoint recorded them — while still
        maintaining every internal index (temporal, inverted, LSH), so the
        restored identifier accepts incremental adds and removals
        immediately.  Identification *work* counters are not replayed;
        only :attr:`IdentificationStats.snippets` is advanced.
        """
        members = sorted(snippets, key=lambda s: (s.timestamp, s.snippet_id))
        if not members:
            raise ValueError("restore_story requires at least one snippet")
        if story_id in self.stories:
            raise ValueError(f"story {story_id!r} already present")
        story = self.stories.new_story()
        story = self.stories.rebind_story_id(story.story_id, story_id)
        for snippet in members:
            if snippet.snippet_id in self._snippets:
                raise DuplicateSnippetError(snippet.snippet_id)
            self.stories.assign(snippet, story)
            self._snippets[snippet.snippet_id] = snippet
            self._index(snippet)
            self.stats.snippets += 1
        if self.decisions is not None:
            self.decisions.record(
                "restored", story_id, self.source_id,
                num_snippets=len(members),
            )
        return story

    def remove(self, snippet_id: str) -> Snippet:
        """Withdraw a snippet (demo: removing a document from the system)."""
        if snippet_id not in self._snippets:
            raise UnknownSnippetError(snippet_id)
        snippet = self.stories.unassign(snippet_id)
        del self._snippets[snippet_id]
        self._temporal.remove(snippet_id)
        self._entity_index.remove(snippet_id)
        self._term_index.remove(snippet_id)
        if self._lsh is not None and snippet_id in self._lsh:
            self._lsh.remove(snippet_id)
        self.stats.removals += 1
        return snippet

    # -- candidate retrieval (mode-specific) ---------------------------------

    def _candidate_story_ids(self, snippet: Snippet) -> Set[str]:
        raise NotImplementedError

    def _score_candidates(self, snippet: Snippet) -> List[Tuple[Story, float]]:
        candidate_ids = self._candidate_story_ids(snippet)
        self.stats.candidates += len(candidate_ids)
        scored: List[Tuple[Story, float]] = []
        for story_id in sorted(candidate_ids):
            story = self.stories.story(story_id)
            score = self._score(snippet, story)
            self.stats.comparisons += 1
            scored.append((story, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0].story_id))
        return scored

    def _score(self, snippet: Snippet, story: Story) -> float:
        raise NotImplementedError

    # -- placement -------------------------------------------------------------

    def _place(self, snippet: Snippet, ranked: List[Tuple[Story, float]]) -> Story:
        best_score = ranked[0][1] if ranked else None
        if ranked and ranked[0][1] >= self.config.match_threshold:
            story = ranked[0][0]
            event = "extended"
        else:
            story = self.stories.new_story()
            self.stats.new_stories += 1
            event = "created"
        self.stories.assign(snippet, story)
        self._snippets[snippet.snippet_id] = snippet
        if self.decisions is not None:
            self.decisions.record(
                event, story.story_id, self.source_id,
                snippet_id=snippet.snippet_id, score=best_score,
            )
        return story

    def _post_assign(
        self,
        snippet: Snippet,
        story: Story,
        ranked: List[Tuple[Story, float]],
    ) -> None:
        if self.config.enable_merge:
            self._maybe_merge(snippet, story, ranked)
        # story may have been merged away; follow the snippet
        story = self.stories.story_of(snippet.snippet_id)
        if self.config.enable_split:
            self._maybe_split(story)

    def _maybe_merge(
        self,
        snippet: Snippet,
        story: Story,
        ranked: List[Tuple[Story, float]],
    ) -> None:
        """Bridge merge: the new snippet matched two stories strongly.

        If the runner-up story also clears the match threshold and the two
        stories resemble each other above ``merge_threshold``, they are one
        evolving story that had been tracked separately — merge them
        (Section 2.1's story merging).
        """
        for other, score in ranked:
            if other.story_id == story.story_id:
                continue
            if score < self.config.match_threshold:
                break  # ranked is sorted; nothing below can qualify
            pair = self.matcher.story_pair_score(story, other)
            if pair >= self.config.merge_threshold:
                keep, absorb = story, other
                if len(absorb) > len(keep):
                    keep, absorb = absorb, keep
                self.stories.merge(keep.story_id, absorb.story_id)
                self.stats.merges += 1
                if self.decisions is not None:
                    self.decisions.record(
                        "merged", keep.story_id, self.source_id,
                        snippet_id=snippet.snippet_id, score=pair,
                        absorbed=absorb.story_id,
                    )
                return

    def _maybe_split(self, story: Story) -> None:
        """Split a story across an internal silence longer than split_gap."""
        if len(story) < 2:
            return
        gap, index = story.largest_gap()
        if gap <= self.config.split_gap:
            return
        members = story.snippets()
        tail = {s.snippet_id for s in members[index + 1 :]}
        if not tail or len(tail) >= len(members):
            return
        fresh = self.stories.split(story.story_id, tail)
        self.stats.splits += 1
        if self.decisions is not None:
            self.decisions.record(
                "split", fresh.story_id, self.source_id,
                from_story=story.story_id, gap_seconds=round(gap, 3),
                moved=len(tail),
            )

    # -- indexing ---------------------------------------------------------------

    def _index(self, snippet: Snippet) -> None:
        self._temporal.insert(snippet.snippet_id, snippet.timestamp)
        self._entity_index.insert(snippet.snippet_id, snippet.entities)
        self._term_index.insert(snippet.snippet_id, match_terms(snippet))
        if self._lsh is not None:
            self._lsh.insert(
                snippet.snippet_id, self._snippet_signature(snippet)
            )

    def _snippet_signature(self, snippet: Snippet):
        assert self._minhash is not None
        return self._minhash.signature(snippet_shingles(snippet))

    # -- feature candidates shared by modes ----------------------------------

    def _feature_candidate_snippets(self, snippet: Snippet) -> Set[str]:
        ids = self._entity_index.candidates(snippet.entities)
        ids |= self._term_index.candidates(match_terms(snippet))
        ids.discard(snippet.snippet_id)
        return ids

    def _stories_of_snippets(self, snippet_ids: Set[str]) -> Set[str]:
        story_ids: Set[str] = set()
        for snippet_id in snippet_ids:
            story_ids.add(self.stories.story_of(snippet_id).story_id)
        return story_ids

    def _sketch_candidates(self, snippet: Snippet) -> Set[str]:
        """Candidate *snippet* ids colliding with the query in the LSH.

        The LSH indexes snippet signatures, not merged story signatures:
        Jaccard between a snippet and a whole story shrinks as the story
        grows, which would defeat the banding; snippet-to-snippet Jaccard
        stays meaningful, and candidates map to their stories afterwards.
        """
        assert self._lsh is not None
        signature = self._snippet_signature(snippet)
        return {
            snippet_id
            for snippet_id, similarity in self._lsh.query(
                signature, self.config.sketch_candidate_floor
            )
        }


class TemporalIdentifier(BaseIdentifier):
    """Sliding-window identification (Figure 2b) — the paper's method."""

    mode = "temporal"

    def _candidate_story_ids(self, snippet: Snippet) -> Set[str]:
        window_ids = set(
            self._temporal.around(snippet.timestamp, self.config.window)
        )
        window_ids.discard(snippet.snippet_id)
        if self._lsh is not None:
            candidate_ids = self._sketch_candidates(snippet) & window_ids
        else:
            candidate_ids = self._feature_candidate_snippets(snippet) & window_ids
        return self._stories_of_snippets(candidate_ids)

    def _score(self, snippet: Snippet, story: Story) -> float:
        return self.matcher.story_score(snippet, story, decayed=True)


class CompleteIdentifier(BaseIdentifier):
    """Complete matching (Figure 2a): compare against all history."""

    mode = "complete"

    def _candidate_story_ids(self, snippet: Snippet) -> Set[str]:
        if self._lsh is not None:
            return self._stories_of_snippets(self._sketch_candidates(snippet))
        return self._stories_of_snippets(self._feature_candidate_snippets(snippet))

    def _score(self, snippet: Snippet, story: Story) -> float:
        return self.matcher.story_score(snippet, story, decayed=False)


class SinglePassIdentifier(BaseIdentifier):
    """On-line new-event-detection baseline: nearest story, no repair."""

    mode = "single_pass"

    def _candidate_story_ids(self, snippet: Snippet) -> Set[str]:
        return set(self.stories.story_ids())

    def _score(self, snippet: Snippet, story: Story) -> float:
        return self.matcher.story_score(snippet, story, decayed=False)


_IDENTIFIER_CLASSES = {
    "temporal": TemporalIdentifier,
    "complete": CompleteIdentifier,
    "single_pass": SinglePassIdentifier,
}


def make_identifier(
    source_id: str,
    config: Optional[StoryPivotConfig] = None,
    decisions=None,
) -> BaseIdentifier:
    """Instantiate the identifier class the config's mode selects."""
    config = config if config is not None else StoryPivotConfig()
    cls = _IDENTIFIER_CLASSES[config.identification_mode]
    return cls(source_id, config, decisions=decisions)
