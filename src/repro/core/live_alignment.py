"""Incremental alignment maintenance (Section 2.4).

The batch aligner recomputes every story pair; a live deployment cannot
afford that per arrival.  :class:`LiveAligner` keeps the alignment current
*incrementally*: whenever identification places a snippet into a story,
only that story is re-scored — against candidate stories of other sources
retrieved through a feature index — and any new above-threshold edge
merges the affected integrated components (union-find).

Two effects cannot be handled edge-by-edge and are deferred to periodic
:meth:`compact` (and to any :meth:`snapshot`, which validates edges):

* **edge decay** — a story can drift away from a former partner, so old
  edges are re-verified against the *current* profiles before use;
* **story deletions/merges** — identification may merge stories away;
  stale ids are dropped lazily.

This trades a small staleness window for per-arrival cost proportional to
one story's candidates, exactly the "efficient representation ... to
provide near real-time integration" the paper calls for.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.alignment import AlignedStory, Alignment, StoryAligner
from repro.core.config import StoryPivotConfig
from repro.core.stories import Story, StorySet


@dataclass
class LiveAlignerStats:
    updates: int = 0
    scores_computed: int = 0
    edges_added: int = 0
    edges_dropped: int = 0
    compactions: int = 0


class _UnionFind:
    """Merge-only disjoint sets over story ids."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: str) -> str:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[max(ra, rb)] = min(ra, rb)
        return True

    def components(self) -> Dict[str, Set[str]]:
        groups: Dict[str, Set[str]] = defaultdict(set)
        for item in self._parent:
            groups[self.find(item)].add(item)
        return dict(groups)


class LiveAligner:
    """Maintain story alignment under per-snippet updates."""

    def __init__(
        self,
        config: Optional[StoryPivotConfig] = None,
        story_sets: Optional[Mapping[str, StorySet]] = None,
    ) -> None:
        self.config = config if config is not None else StoryPivotConfig()
        self._scorer = StoryAligner(self.config)
        self._story_sets: Dict[str, StorySet] = dict(story_sets or {})
        self._union = _UnionFind()
        self._edges: Dict[Tuple[str, str], float] = {}
        self._feature_index: Dict[object, Set[str]] = defaultdict(set)
        self._features_of: Dict[str, Set[object]] = {}
        self._source_of: Dict[str, str] = {}
        self.stats = LiveAlignerStats()
        for source_id, story_set in self._story_sets.items():
            for story in story_set:
                self.update_story(story)

    # -- bookkeeping -----------------------------------------------------

    def attach_story_set(self, story_set: StorySet) -> None:
        """Register a (possibly new) source's story set."""
        self._story_sets[story_set.source_id] = story_set
        for story in story_set:
            self.update_story(story)

    def _story_features(self, story: Story) -> Set[object]:
        features: Set[object] = {
            ("e", entity) for entity, _ in story.sketch.top_entities(8)
        }
        features |= {("t", term) for term, _ in story.sketch.top_terms(10)}
        return features

    def _reindex(self, story: Story) -> None:
        story_id = story.story_id
        old = self._features_of.get(story_id, set())
        new = self._story_features(story)
        for feature in old - new:
            self._feature_index[feature].discard(story_id)
        for feature in new - old:
            self._feature_index[feature].add(story_id)
        self._features_of[story_id] = new
        self._source_of[story_id] = story.source_id
        self._union.add(story_id)

    def _live_story(self, story_id: str) -> Optional[Story]:
        source_id = self._source_of.get(story_id)
        if source_id is None:
            return None
        story_set = self._story_sets.get(source_id)
        if story_set is None or story_id not in story_set:
            return None
        return story_set.story(story_id)

    # -- incremental update ---------------------------------------------------

    def update_story(self, story: Story) -> List[Tuple[str, str, float]]:
        """Re-score one changed story; returns the new edges added.

        Call after identification adds a snippet to (or creates) ``story``.
        """
        self.stats.updates += 1
        if story.source_id not in self._story_sets:
            raise KeyError(
                f"source {story.source_id!r} not attached to the live aligner"
            )
        self._reindex(story)
        tolerance = max(1.0, self.config.alignment_tolerance * self.config.window)
        candidates: Set[str] = set()
        for feature in self._features_of[story.story_id]:
            candidates |= self._feature_index.get(feature, set())
        added: List[Tuple[str, str, float]] = []
        for candidate_id in sorted(candidates):
            if candidate_id == story.story_id:
                continue
            if self._source_of.get(candidate_id) == story.source_id:
                continue
            other = self._live_story(candidate_id)
            if other is None:
                continue  # stale id: cleaned up at compaction
            gap = max(0.0, max(story.start, other.start)
                      - min(story.end, other.end))
            if gap > 3 * tolerance:
                continue
            score = self._scorer.story_pair_score(story, other)
            self.stats.scores_computed += 1
            key = (min(story.story_id, candidate_id),
                   max(story.story_id, candidate_id))
            if score >= self.config.align_threshold:
                is_new = key not in self._edges
                self._edges[key] = score
                if is_new:
                    self.stats.edges_added += 1
                    added.append((key[0], key[1], score))
                self._union.union(story.story_id, candidate_id)
            elif key in self._edges:
                # drifted below threshold: forget the edge (components are
                # only re-derived from surviving edges at compaction)
                del self._edges[key]
                self.stats.edges_dropped += 1
        return added

    # -- views ------------------------------------------------------------------

    def snapshot(self) -> Alignment:
        """Materialize the current components as an Alignment.

        Membership comes from the union-find; edges are re-validated
        against live stories so the snapshot never references merged-away
        stories.  Snippet roles are classified exactly as the batch
        aligner does.
        """
        import itertools
        from repro.core import alignment as alignment_module

        live_stories: Dict[str, Story] = {}
        for story_set in self._story_sets.values():
            for story in story_set:
                live_stories[story.story_id] = story

        snapshot = Alignment()
        groups: Dict[str, List[str]] = defaultdict(list)
        for story_id in live_stories:
            groups[self._union.find(story_id)].append(story_id)
        for root in sorted(groups):
            members = sorted(groups[root])
            aligned = AlignedStory(
                f"c'{next(alignment_module._aligned_counter):06d}"
            )
            for story_id in members:
                aligned.stories.append(live_stories[story_id])
                snapshot.story_to_aligned[story_id] = aligned.aligned_id
            snapshot.aligned[aligned.aligned_id] = aligned
        for (id_a, id_b), score in self._edges.items():
            if id_a in live_stories and id_b in live_stories:
                snapshot.edge_scores[(id_a, id_b)] = score
        snapshot.stats.story_pairs_scored = self.stats.scores_computed
        snapshot.stats.edges = len(snapshot.edge_scores)
        self._scorer._classify_snippets(snapshot)
        return snapshot

    def compact(self) -> None:
        """Re-derive components from surviving, re-validated edges.

        Removes stale story ids (merged away or emptied) and splits
        components whose bridging edges have decayed — the corrective pass
        that union-find alone cannot do.
        """
        self.stats.compactions += 1
        live: Dict[str, Story] = {}
        for story_set in self._story_sets.values():
            for story in story_set:
                live[story.story_id] = story
        surviving: Dict[Tuple[str, str], float] = {}
        for (id_a, id_b) in list(self._edges):
            story_a, story_b = live.get(id_a), live.get(id_b)
            if story_a is None or story_b is None:
                self.stats.edges_dropped += 1
                continue
            score = self._scorer.story_pair_score(story_a, story_b)
            self.stats.scores_computed += 1
            if score >= self.config.align_threshold:
                surviving[(id_a, id_b)] = score
            else:
                self.stats.edges_dropped += 1
        self._edges = surviving
        self._union = _UnionFind()
        self._feature_index = defaultdict(set)
        self._features_of = {}
        self._source_of = {}
        for story in live.values():
            self._reindex(story)
        for id_a, id_b in surviving:
            self._union.union(id_a, id_b)
