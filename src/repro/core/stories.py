"""Story model: mutable snippet clusters with sketches.

A :class:`Story` is a set of snippets from *one* source plus a
:class:`~repro.sketch.story_sketch.StorySketch` summarizing it; a
:class:`StorySet` is a source's full story collection ``C_i`` with the
bookkeeping identification needs (snippet → story lookup, merge, split).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import UnknownSnippetError, UnknownStoryError
from repro.eventdata.models import Snippet, format_timestamp
from repro.sketch.minhash import MinHash
from repro.sketch.story_sketch import StorySketch
from repro.storage.event_store import match_terms  # noqa: F401  (re-exported)

_story_counter = itertools.count()


def snippet_shingles(snippet: Snippet) -> Set:
    """Content features hashed into MinHash signatures.

    Unigram match terms plus entities (not word k-shingles): two reports of
    the same event paraphrase each other, so their k-shingle sets barely
    intersect while their term/entity sets overlap strongly — and MinHash
    banding needs that overlap to recall candidates.
    """
    return {("t", term) for term in match_terms(snippet)} | {
        ("e", entity) for entity in snippet.entities
    }


class Story:
    """A mutable story: snippets of one source plus their sketch."""

    def __init__(
        self,
        story_id: str,
        source_id: str,
        minhash: Optional[MinHash] = None,
        decay_half_life: float = 14 * 86400.0,
    ) -> None:
        self.story_id = story_id
        self.source_id = source_id
        self.sketch = StorySketch(minhash=minhash, decay_half_life=decay_half_life)
        self._snippets: Dict[str, Snippet] = {}

    def __len__(self) -> int:
        return len(self._snippets)

    def __contains__(self, snippet_id: str) -> bool:
        return snippet_id in self._snippets

    def __repr__(self) -> str:
        return f"Story({self.story_id!r}, {self.source_id!r}, n={len(self)})"

    def add(self, snippet: Snippet) -> None:
        """Add a snippet (ValueError on duplicates, wrong source)."""
        if snippet.source_id != self.source_id:
            raise ValueError(
                f"snippet {snippet.snippet_id!r} from source "
                f"{snippet.source_id!r} cannot join story of {self.source_id!r}"
            )
        self.sketch.add(
            snippet.snippet_id,
            snippet.timestamp,
            snippet.entities,
            match_terms(snippet),
            shingles=snippet_shingles(snippet),
        )
        self._snippets[snippet.snippet_id] = snippet

    def remove(self, snippet_id: str) -> Snippet:
        if snippet_id not in self._snippets:
            raise UnknownSnippetError(snippet_id)
        self.sketch.remove(snippet_id)
        return self._snippets.pop(snippet_id)

    def snippets(self) -> List[Snippet]:
        """Member snippets in time order."""
        return sorted(
            self._snippets.values(), key=lambda s: (s.timestamp, s.snippet_id)
        )

    def snippet_ids(self) -> Set[str]:
        return set(self._snippets)

    def get(self, snippet_id: str) -> Snippet:
        return self._snippets[snippet_id]

    @property
    def start(self) -> float:
        return self.sketch.start

    @property
    def end(self) -> float:
        return self.sketch.end

    def date_range(self) -> Tuple[str, str]:
        """('Jul 17, 2014', 'Sep 12, 2014') — as the overview module shows."""
        return format_timestamp(self.start), format_timestamp(self.end)

    def largest_gap(self) -> Tuple[float, int]:
        """(largest inter-snippet silence, index after which it occurs).

        The split check uses this: a story whose members are separated by a
        long silence is really two stories.
        """
        members = self.snippets()
        if len(members) < 2:
            return 0.0, 0
        best_gap, best_index = 0.0, 0
        for i in range(len(members) - 1):
            gap = members[i + 1].timestamp - members[i].timestamp
            if gap > best_gap:
                best_gap, best_index = gap, i
        return best_gap, best_index


class StorySet:
    """The stories ``C_i`` of one source, with snippet→story lookup."""

    def __init__(
        self,
        source_id: str,
        minhash: Optional[MinHash] = None,
        decay_half_life: float = 14 * 86400.0,
    ) -> None:
        self.source_id = source_id
        self._minhash = minhash
        self._decay_half_life = decay_half_life
        self._stories: Dict[str, Story] = {}
        self._story_of: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._stories)

    def __iter__(self) -> Iterator[Story]:
        return iter(sorted(self._stories.values(), key=lambda s: s.story_id))

    def __contains__(self, story_id: str) -> bool:
        return story_id in self._stories

    @property
    def num_snippets(self) -> int:
        return len(self._story_of)

    def story(self, story_id: str) -> Story:
        story = self._stories.get(story_id)
        if story is None:
            raise UnknownStoryError(story_id)
        return story

    def story_of(self, snippet_id: str) -> Story:
        story_id = self._story_of.get(snippet_id)
        if story_id is None:
            raise UnknownSnippetError(snippet_id)
        return self._stories[story_id]

    def story_ids(self) -> List[str]:
        return sorted(self._stories)

    def new_story(self) -> Story:
        """Create and register an empty story with a globally fresh id."""
        story_id = f"{self.source_id}/c{next(_story_counter):06d}"
        # the counter is process-global, but restored stories keep ids
        # minted elsewhere (a checkpoint, a forked shard process) that may
        # sit ahead of it — never clobber, skip to the next free id
        while story_id in self._stories:
            story_id = f"{self.source_id}/c{next(_story_counter):06d}"
        story = Story(
            story_id,
            self.source_id,
            minhash=self._minhash,
            decay_half_life=self._decay_half_life,
        )
        self._stories[story_id] = story
        return story

    def rebind_story_id(self, old_id: str, new_id: str) -> Story:
        """Re-key a registered story under ``new_id``.

        State restoration (checkpoints, WAL recovery) must preserve story
        ids across process restarts; :meth:`new_story` always allocates a
        fresh counter-based id, so restorers create a story and rebind it
        under the persisted id.  Snippet→story lookups follow the move.
        """
        story = self.story(old_id)
        if new_id == old_id:
            return story
        if new_id in self._stories:
            raise ValueError(f"story id {new_id!r} already in use")
        del self._stories[old_id]
        story.story_id = new_id
        self._stories[new_id] = story
        for snippet_id in story.snippet_ids():
            self._story_of[snippet_id] = new_id
        return story

    def assign(self, snippet: Snippet, story: Story) -> None:
        """Put a snippet into a story of this set."""
        if story.story_id not in self._stories:
            raise UnknownStoryError(story.story_id)
        story.add(snippet)
        self._story_of[snippet.snippet_id] = story.story_id

    def unassign(self, snippet_id: str) -> Snippet:
        """Remove a snippet from whatever story holds it; prune empties."""
        story = self.story_of(snippet_id)
        snippet = story.remove(snippet_id)
        del self._story_of[snippet_id]
        if len(story) == 0:
            del self._stories[story.story_id]
        return snippet

    def merge(self, keep_id: str, absorb_id: str) -> Story:
        """Merge story ``absorb_id`` into ``keep_id`` and drop it."""
        if keep_id == absorb_id:
            raise ValueError("cannot merge a story with itself")
        keep = self.story(keep_id)
        absorb = self.story(absorb_id)
        for snippet in absorb.snippets():
            absorb.remove(snippet.snippet_id)
            keep.add(snippet)
            self._story_of[snippet.snippet_id] = keep_id
        del self._stories[absorb_id]
        return keep

    def split(self, story_id: str, snippet_ids: Set[str]) -> Story:
        """Move ``snippet_ids`` out of ``story_id`` into a fresh story.

        Raises if the move would empty the original or move nothing.
        """
        story = self.story(story_id)
        if not snippet_ids:
            raise ValueError("split requires a non-empty snippet set")
        missing = snippet_ids - story.snippet_ids()
        if missing:
            raise UnknownSnippetError(sorted(missing)[0])
        if snippet_ids >= story.snippet_ids():
            raise ValueError("split must leave at least one snippet behind")
        fresh = self.new_story()
        for snippet_id in sorted(snippet_ids):
            snippet = story.remove(snippet_id)
            fresh.add(snippet)
            self._story_of[snippet_id] = fresh.story_id
        return fresh

    def as_clusters(self) -> Dict[str, Set[str]]:
        """story id → snippet ids (the shape evaluation metrics consume)."""
        return {
            story_id: story.snippet_ids()
            for story_id, story in self._stories.items()
        }

    def stories_by_size(self) -> List[Story]:
        return sorted(
            self._stories.values(), key=lambda s: (-len(s), s.story_id)
        )
