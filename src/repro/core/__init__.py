"""StoryPivot core: story identification, alignment and refinement.

The two-phase mechanism of Section 2: per-source *story identification*
(:mod:`repro.core.identification`, with the temporal and complete execution
modes of Figure 2), cross-source *story alignment*
(:mod:`repro.core.alignment`), *story refinement* feeding alignment
decisions back (:mod:`repro.core.refinement`), and the
:class:`~repro.core.pipeline.StoryPivot` facade tying them together for
batch and streaming use.
"""

from repro.core.config import StoryPivotConfig
from repro.core.stories import Story, StorySet
from repro.core.identification import (
    CompleteIdentifier,
    SinglePassIdentifier,
    TemporalIdentifier,
    make_identifier,
)
from repro.core.alignment import AlignedStory, Alignment, StoryAligner
from repro.core.refinement import RefinementResult, StoryRefiner
from repro.core.pipeline import PivotResult, StoryPivot

__all__ = [
    "StoryPivotConfig",
    "Story",
    "StorySet",
    "TemporalIdentifier",
    "CompleteIdentifier",
    "SinglePassIdentifier",
    "make_identifier",
    "StoryAligner",
    "Alignment",
    "AlignedStory",
    "StoryRefiner",
    "RefinementResult",
    "StoryPivot",
    "PivotResult",
]
