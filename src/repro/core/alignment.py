"""Story alignment across sources (Section 2.3).

Two stories from different sources align when "their evolution is similar
and their content is similar as well": content similarity over entity and
term profiles, temporal similarity over the stories' life spans ("it is
highly unlikely that two stories are similar if c1 ends at time t_i and c2
starts at t_j with t_i << t_j").

Aligned stories from multiple sources form *integrated stories* (the
``c'`` of Figure 1(c)).  Stories that align with nothing survive as
singleton integrated stories — a story reported by a single source "may
still hold interest for a variety of users".  Within an integrated story,
each snippet is classified as *aligning* (it has a temporally close,
similar counterpart in another source) or *enriching* (source-exclusive
background, special reports etc.).
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.core.config import StoryPivotConfig
from repro.core.matchers import SnippetMatcher
from repro.core.stories import Story, StorySet
from repro.errors import AlignmentError
from repro.eventdata.models import DEFAULT_TRUST, Snippet, format_timestamp
from repro.text.similarity import temporal_proximity, weighted_jaccard

_aligned_counter = itertools.count()


@dataclass
class AlignedStory:
    """An integrated story ``c'``: member stories across sources."""

    aligned_id: str
    stories: List[Story] = field(default_factory=list)

    @property
    def source_ids(self) -> List[str]:
        return sorted({story.source_id for story in self.stories})

    @property
    def story_ids(self) -> List[str]:
        return sorted(story.story_id for story in self.stories)

    def snippets(self) -> List[Snippet]:
        """All member snippets across sources, in time order."""
        pool = [s for story in self.stories for s in story.snippets()]
        return sorted(pool, key=lambda s: (s.timestamp, s.snippet_id))

    def __len__(self) -> int:
        return sum(len(story) for story in self.stories)

    @property
    def start(self) -> float:
        return min(story.start for story in self.stories)

    @property
    def end(self) -> float:
        return max(story.end for story in self.stories)

    def date_range(self) -> Tuple[str, str]:
        return format_timestamp(self.start), format_timestamp(self.end)

    def entity_profile(self) -> Dict[str, float]:
        profile: Dict[str, float] = defaultdict(float)
        for story in self.stories:
            for entity, weight in story.sketch.entity_profile().items():
                profile[entity] += weight
        return dict(profile)

    def term_profile(self) -> Dict[str, float]:
        profile: Dict[str, float] = defaultdict(float)
        for story in self.stories:
            for term, weight in story.sketch.term_profile().items():
                profile[term] += weight
        return dict(profile)

    def top_entities(self, k: int = 5) -> List[Tuple[str, int]]:
        profile = self.entity_profile()
        ranked = sorted(profile.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(entity, int(round(weight))) for entity, weight in ranked[:k]]

    def top_terms(self, k: int = 9) -> List[Tuple[str, int]]:
        profile = self.term_profile()
        ranked = sorted(profile.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(term, int(round(weight))) for term, weight in ranked[:k]]


@dataclass(frozen=True)
class SnippetLink:
    """A cross-source counterpart pair found during alignment."""

    snippet_a: str
    snippet_b: str
    score: float


@dataclass
class AlignmentStats:
    story_pairs_scored: int = 0
    edges: int = 0
    snippet_pairs_scored: int = 0


class Alignment:
    """The output of story alignment: integrated stories + snippet roles."""

    def __init__(self) -> None:
        self.aligned: Dict[str, AlignedStory] = {}
        self.story_to_aligned: Dict[str, str] = {}
        self.links: List[SnippetLink] = []
        self.roles: Dict[str, str] = {}  # snippet id -> "aligning"|"enriching"
        self.edge_scores: Dict[Tuple[str, str], float] = {}
        self.stats = AlignmentStats()

    def __len__(self) -> int:
        return len(self.aligned)

    def aligned_of(self, story_id: str) -> AlignedStory:
        aligned_id = self.story_to_aligned.get(story_id)
        if aligned_id is None:
            raise AlignmentError(f"story {story_id!r} is not in this alignment")
        return self.aligned[aligned_id]

    def aligned_of_snippet(self, snippet_id: str) -> AlignedStory:
        for aligned in self.aligned.values():
            for story in aligned.stories:
                if snippet_id in story:
                    return aligned
        raise AlignmentError(f"snippet {snippet_id!r} is not in this alignment")

    def role(self, snippet_id: str) -> str:
        """'aligning' or 'enriching' (Section 2.3's two snippet purposes)."""
        return self.roles.get(snippet_id, "enriching")

    def cross_source_stories(self) -> List[AlignedStory]:
        """Integrated stories spanning more than one source."""
        return [a for a in self.aligned.values() if len(a.source_ids) > 1]

    def singleton_stories(self) -> List[AlignedStory]:
        """Integrated stories seen in a single source only."""
        return [a for a in self.aligned.values() if len(a.source_ids) == 1]

    def as_clusters(self) -> Dict[str, Set[str]]:
        """aligned id -> snippet ids (global clustering for evaluation)."""
        return {
            aligned_id: {s.snippet_id for s in aligned.snippets()}
            for aligned_id, aligned in self.aligned.items()
        }

    def counterparts(self, snippet_id: str) -> List[Tuple[str, float]]:
        """Cross-source counterpart snippets recorded for ``snippet_id``."""
        found = []
        for link in self.links:
            if link.snippet_a == snippet_id:
                found.append((link.snippet_b, link.score))
            elif link.snippet_b == snippet_id:
                found.append((link.snippet_a, link.score))
        return sorted(found, key=lambda kv: -kv[1])


class StoryAligner:
    """Compute story alignment over per-source story sets."""

    def __init__(self, config: Optional[StoryPivotConfig] = None) -> None:
        self.config = config if config is not None else StoryPivotConfig()
        self.matcher = SnippetMatcher(self.config)
        self._source_trust: Dict[str, int] = {}

    def set_source_trust(self, trust: Mapping[str, int]) -> None:
        """Install per-source trust (0–10) for trust-weighted alignment.

        Only consulted when ``config.trust_weighted_alignment`` is on;
        sources absent from the mapping score as the neutral default 5.
        """
        self._source_trust = dict(trust)

    # -- story-level similarity ----------------------------------------------

    def _trust_factor(self, a: Story, b: Story) -> float:
        """Confidence multiplier from the pair's source trust.

        ``0.75 + 0.025 * (trust_a + trust_b)``: 1.0 when both sources sit
        at the default trust of 5, 1.25 for two fully trusted wires, 0.75
        for two untrusted feeds.  Identity when the knob is off.
        """
        if not self.config.trust_weighted_alignment:
            return 1.0
        trust_a = self._source_trust.get(a.source_id, DEFAULT_TRUST)
        trust_b = self._source_trust.get(b.source_id, DEFAULT_TRUST)
        return 0.75 + 0.025 * (trust_a + trust_b)

    def story_pair_score(self, a: Story, b: Story) -> float:
        """Cross-source story similarity: content + evolution."""
        if len(a) == 0 or len(b) == 0:
            return 0.0
        entity_sim = weighted_jaccard(
            a.sketch.entity_profile(), b.sketch.entity_profile()
        )
        term_sim = weighted_jaccard(a.sketch.term_profile(), b.sketch.term_profile())
        temporal_sim = self._span_score(a, b)
        weights = self.config.weights
        total = sum(weights.values())
        score = (
            weights.get("entity", 0.0) * entity_sim
            + weights.get("term", 0.0) * term_sim
            + weights.get("temporal", 0.0) * temporal_sim
        ) / total
        return min(1.0, score * self._trust_factor(a, b))

    def _span_score(self, a: Story, b: Story) -> float:
        """1.0 for overlapping spans, decaying with the gap beyond that."""
        gap = max(0.0, max(a.start, b.start) - min(a.end, b.end))
        tolerance = max(1.0, self.config.alignment_tolerance * self.config.window)
        return math.exp(-gap / tolerance)

    # -- alignment -------------------------------------------------------------

    def align(self, story_sets: Mapping[str, StorySet]) -> Alignment:
        """Align stories across all sources into integrated stories."""
        alignment = Alignment()
        stories: Dict[str, Story] = {}
        for story_set in story_sets.values():
            for story in story_set:
                stories[story.story_id] = story
        if not stories:
            return alignment

        if self.config.alignment_strategy == "none":
            edges: List[Tuple[str, str, float]] = []
        else:
            pairs = self._candidate_pairs(stories)
            edges = []
            for id_a, id_b in pairs:
                score = self.story_pair_score(stories[id_a], stories[id_b])
                alignment.stats.story_pairs_scored += 1
                if score >= self.config.align_threshold:
                    edges.append((id_a, id_b, score))
            if self.config.alignment_strategy == "optimal":
                edges = self._one_to_one(edges, stories)
        alignment.stats.edges = len(edges)

        graph = nx.Graph()
        graph.add_nodes_from(stories)
        for id_a, id_b, score in edges:
            graph.add_edge(id_a, id_b, weight=score)
            alignment.edge_scores[(min(id_a, id_b), max(id_a, id_b))] = score

        for component in nx.connected_components(graph):
            aligned = AlignedStory(f"c'{next(_aligned_counter):06d}")
            for story_id in sorted(component):
                aligned.stories.append(stories[story_id])
                alignment.story_to_aligned[story_id] = aligned.aligned_id
            alignment.aligned[aligned.aligned_id] = aligned

        self._classify_snippets(alignment)
        return alignment

    def extend(
        self, alignment: Alignment, new_set: StorySet
    ) -> Alignment:
        """Integrate a *new source* into an existing alignment (Section 2.1).

        "As new sources become available, we first identify the stories
        associated with them and then align them with existing stories" —
        each new story attaches to the best-matching existing integrated
        story, or founds its own, without recomputing the old alignment.
        """
        for story in new_set:
            best_id, best_score = None, 0.0
            for aligned in alignment.aligned.values():
                for member in aligned.stories:
                    if member.source_id == new_set.source_id:
                        continue
                    score = self.story_pair_score(story, member)
                    alignment.stats.story_pairs_scored += 1
                    if score > best_score:
                        best_id, best_score = aligned.aligned_id, score
            if best_id is not None and best_score >= self.config.align_threshold:
                target = alignment.aligned[best_id]
                target.stories.append(story)
                alignment.story_to_aligned[story.story_id] = best_id
            else:
                aligned = AlignedStory(f"c'{next(_aligned_counter):06d}")
                aligned.stories.append(story)
                alignment.aligned[aligned.aligned_id] = aligned
                alignment.story_to_aligned[story.story_id] = aligned.aligned_id
        self._classify_snippets(alignment)
        return alignment

    # -- candidates ---------------------------------------------------------

    def _candidate_pairs(
        self, stories: Dict[str, Story]
    ) -> List[Tuple[str, str]]:
        """Cross-source story pairs sharing at least one salient feature.

        Uses an inverted index over each story's top entities/terms; pairs
        whose spans are farther apart than 3× the alignment tolerance are
        dropped outright.
        """
        feature_map: Dict[object, List[str]] = defaultdict(list)
        for story_id, story in stories.items():
            for entity, _ in story.sketch.top_entities(8):
                feature_map[("e", entity)].append(story_id)
            for term, _ in story.sketch.top_terms(10):
                feature_map[("t", term)].append(story_id)
        tolerance = max(1.0, self.config.alignment_tolerance * self.config.window)
        pairs: Set[Tuple[str, str]] = set()
        for ids in feature_map.values():
            if len(ids) < 2:
                continue
            for id_a, id_b in itertools.combinations(sorted(ids), 2):
                story_a, story_b = stories[id_a], stories[id_b]
                if story_a.source_id == story_b.source_id:
                    continue
                gap = max(
                    0.0,
                    max(story_a.start, story_b.start)
                    - min(story_a.end, story_b.end),
                )
                if gap > 3 * tolerance:
                    continue
                # sketch fast path (Section 2.4): when story signatures are
                # maintained, a MinHash estimate prunes pairs before the
                # exact profile comparison
                signature_a = story_a.sketch.signature
                signature_b = story_b.sketch.signature
                if (signature_a is not None and signature_b is not None
                        and signature_a.similarity(signature_b)
                        < self.config.sketch_candidate_floor):
                    continue
                pairs.add((id_a, id_b))
        return sorted(pairs)

    def _one_to_one(
        self,
        edges: List[Tuple[str, str, float]],
        stories: Dict[str, Story],
    ) -> List[Tuple[str, str, float]]:
        """Optimal 1–1 matching per source pair (Hungarian algorithm)."""
        import numpy as np
        from scipy.optimize import linear_sum_assignment

        by_source_pair: Dict[Tuple[str, str], List[Tuple[str, str, float]]] = (
            defaultdict(list)
        )
        for id_a, id_b, score in edges:
            source_a = stories[id_a].source_id
            source_b = stories[id_b].source_id
            if source_a > source_b:
                id_a, id_b = id_b, id_a
                source_a, source_b = source_b, source_a
            by_source_pair[(source_a, source_b)].append((id_a, id_b, score))

        kept: List[Tuple[str, str, float]] = []
        for pair_edges in by_source_pair.values():
            left_ids = sorted({e[0] for e in pair_edges})
            right_ids = sorted({e[1] for e in pair_edges})
            left_pos = {sid: i for i, sid in enumerate(left_ids)}
            right_pos = {sid: i for i, sid in enumerate(right_ids)}
            matrix = np.zeros((len(left_ids), len(right_ids)))
            for id_a, id_b, score in pair_edges:
                matrix[left_pos[id_a], right_pos[id_b]] = score
            rows, cols = linear_sum_assignment(-matrix)
            for row, col in zip(rows, cols):
                score = matrix[row, col]
                if score >= self.config.align_threshold:
                    kept.append((left_ids[row], right_ids[col], float(score)))
        return kept

    # -- snippet roles -----------------------------------------------------------

    def _classify_snippets(self, alignment: Alignment) -> None:
        """Label every snippet aligning/enriching and record counterpart links."""
        alignment.links = []
        alignment.roles = {}
        threshold = self.config.snippet_align_threshold
        tolerance = self.config.snippet_align_tolerance
        for aligned in alignment.aligned.values():
            snippets = aligned.snippets()  # time-ordered
            for i, snippet_a in enumerate(snippets):
                # two-pointer: later snippets are time-sorted, so stop at
                # the first one beyond the tolerance window
                for snippet_b in snippets[i + 1 :]:
                    if snippet_b.timestamp - snippet_a.timestamp > tolerance:
                        break
                    if snippet_a.source_id == snippet_b.source_id:
                        continue
                    score = self.matcher.snippet_score(snippet_a, snippet_b)
                    alignment.stats.snippet_pairs_scored += 1
                    if score >= threshold:
                        alignment.links.append(
                            SnippetLink(
                                snippet_a.snippet_id, snippet_b.snippet_id, score
                            )
                        )
                        alignment.roles[snippet_a.snippet_id] = "aligning"
                        alignment.roles[snippet_b.snippet_id] = "aligning"
            for snippet in snippets:
                alignment.roles.setdefault(snippet.snippet_id, "enriching")
