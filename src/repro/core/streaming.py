"""Dynamic (streaming) integration of identification and alignment.

Section 2.4: snippets "are generated dynamically every time a news document
is published online", sources "do not necessarily publish their information
in a temporally ordered manner", and the system must provide "live
information on ongoing stories".  The :class:`StreamProcessor` consumes
snippets in *publication* order (which is out-of-order along the event-time
axis), deduplicates re-deliveries with a Bloom-filter fast path, keeps
identification fully incremental, and refreshes alignment+refinement every
``realign_every`` arrivals so a live view is always available.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional

from repro.core.config import StoryPivotConfig
from repro.core.live_alignment import LiveAligner
from repro.core.pipeline import PivotResult, StoryPivot
from repro.errors import DuplicateSnippetError
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet
from repro.sketch.bloom import BloomFilter


class BoundedSeenSet:
    """Insertion-ordered set that evicts its oldest member beyond capacity.

    The exact-confirmation half of stream deduplication.  An unbounded set
    grows forever on an infinite feed; this one keeps the most recent
    ``capacity`` ids.  The trade-off of evicting: a re-delivery *older*
    than the retained window is no longer confirmed here and falls through
    to the identifier's exact per-snippet check (still a duplicate, just
    off the fast path) — and if that snippet had meanwhile been *removed*
    from the system, the stale re-delivery is accepted as new (a false
    non-duplicate).  Size ``capacity`` to exceed the redelivery horizon of
    the feed, not its total cardinality.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def add(self, item: Hashable) -> bool:
        """Insert; returns False if already present.  Evicts the oldest."""
        if item in self._entries:
            return False
        self._entries[item] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return True

    def discard(self, item: Hashable) -> None:
        self._entries.pop(item, None)


@dataclass
class StreamStats:
    arrived: int = 0
    accepted: int = 0
    duplicates: int = 0
    realignments: int = 0
    max_disorder: float = 0.0  # largest event-time regression observed


class StreamProcessor:
    """Live wrapper around :class:`StoryPivot`."""

    def __init__(
        self,
        config: Optional[StoryPivotConfig] = None,
        realign_every: int = 100,
        dedup_capacity: int = 100_000,
        live_alignment: bool = False,
    ) -> None:
        if realign_every <= 0:
            raise ValueError("realign_every must be positive")
        self.pivot = StoryPivot(config)
        self.realign_every = realign_every
        self.stats = StreamStats()
        self.live_alignment = live_alignment
        self._live: Optional[LiveAligner] = (
            LiveAligner(self.pivot.config) if live_alignment else None
        )
        self._bloom = BloomFilter(capacity=dedup_capacity)
        self._seen = BoundedSeenSet(dedup_capacity)
        self._since_alignment = 0
        self._latest_event_time: Optional[float] = None
        self._result: Optional[PivotResult] = None

    # -- ingestion --------------------------------------------------------

    def offer(self, snippet: Snippet) -> bool:
        """Deliver one snippet; returns False for duplicates.

        The Bloom filter answers "definitely new" without touching the
        exact set; its (rare) positives are confirmed exactly against the
        bounded seen-set, so recent duplicates never slip through.  An id
        evicted from the seen-set (older than ``dedup_capacity`` arrivals)
        is caught by the identifier's own exact check instead — see
        :class:`BoundedSeenSet` for the trade-off.
        """
        self.stats.arrived += 1
        if snippet.snippet_id in self._bloom and snippet.snippet_id in self._seen:
            self.stats.duplicates += 1
            return False
        self._bloom.add(snippet.snippet_id)
        self._seen.add(snippet.snippet_id)
        try:
            story = self.pivot.add_snippet(snippet)
        except DuplicateSnippetError:
            # evicted from the bounded seen-set but still live in a story
            self.stats.duplicates += 1
            return False
        if self._latest_event_time is not None:
            regression = self._latest_event_time - snippet.timestamp
            if regression > self.stats.max_disorder:
                self.stats.max_disorder = regression
        self._latest_event_time = max(
            self._latest_event_time or snippet.timestamp, snippet.timestamp
        )
        self.stats.accepted += 1
        if self._live is not None:
            if story.source_id not in self._live._story_sets:
                self._live.attach_story_set(
                    self.pivot.identifier(story.source_id).stories
                )
            else:
                self._live.update_story(story)
        self._since_alignment += 1
        if self._since_alignment >= self.realign_every:
            if self._live is not None:
                self._live.compact()  # periodic corrective pass, no rescan
                self._since_alignment = 0
            else:
                self.flush()
        return True

    def consume(self, snippets: Iterable[Snippet]) -> "StreamProcessor":
        for snippet in snippets:
            self.offer(snippet)
        return self

    def consume_corpus(self, corpus: Corpus) -> "StreamProcessor":
        """Replay a corpus in publication order (the live delivery order)."""
        return self.consume(corpus.snippets_by_publication())

    # -- views -------------------------------------------------------------

    def flush(self) -> PivotResult:
        """Refresh the live view.

        With ``live_alignment`` the view is the incremental aligner's
        snapshot (no full pair rescan and no refinement — the trade the
        live mode makes); otherwise alignment (+refinement) is recomputed.
        """
        if self._live is not None:
            alignment = self._live.snapshot()
            self._result = PivotResult(
                story_sets=self.pivot.story_sets(),
                alignment=alignment,
                refinement=None,
            )
        else:
            self._result = self.pivot.finish()
        self._since_alignment = 0
        self.stats.realignments += 1
        return self._result

    def result(self) -> PivotResult:
        """The live view; recomputes only if arrivals happened since."""
        if self._result is None or self._since_alignment > 0:
            return self.flush()
        return self._result

    def pending(self) -> int:
        """Arrivals since the last alignment refresh."""
        return self._since_alignment


def replay_out_of_order(
    corpus: Corpus,
    config: Optional[StoryPivotConfig] = None,
    realign_every: int = 100,
) -> PivotResult:
    """Convenience: stream a corpus in publication order, return final view."""
    processor = StreamProcessor(config, realign_every=realign_every)
    processor.consume_corpus(corpus)
    return processor.flush()
