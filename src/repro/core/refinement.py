"""Story refinement (Section 2.3, Figure 1(d)).

Alignment can reveal identification mistakes: in Figure 1, ``v^1_4`` was
assigned to story ``c^1_1`` by source s1's identification, yet its
cross-source counterparts live with *different* snippets than its
story-mates' counterparts do.  Refinement detects exactly this
irregularity: a snippet whose counterpart stories (the other-source stories
holding its counterparts) are disjoint from the counterpart stories of the
rest of its own story is in conflict, and "the decisions made during story
alignment [are] propagated back into the story sets of data sources" — the
snippet moves to the same-source story whose cross-source evidence it
shares, or founds a fresh story there.

After each round of moves the alignment is recomputed over the corrected
story sets, so transitive gluing caused by a mis-assignment (the crash and
Gaza stories fused through ``v^1_4`` in Figure 1(c)) comes apart.  The
process repeats until no snippet moves or ``max_refinement_rounds`` is
reached; every move is recorded so the demo can explain the correction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.alignment import Alignment, StoryAligner
from repro.core.config import StoryPivotConfig
from repro.core.matchers import SnippetMatcher, snippet_features
from repro.core.stories import Story, StorySet
from repro.errors import UnknownSnippetError
from repro.eventdata.models import Snippet
from repro.storage.inverted_index import InvertedIndex
from repro.storage.temporal_index import TemporalIndex


@dataclass(frozen=True)
class Move:
    """One refinement correction."""

    snippet_id: str
    source_id: str
    from_story: str
    to_story: str
    evidence: float  # counterpart vote mass supporting the move


@dataclass
class RefinementResult:
    """All corrections applied, plus the re-aligned view."""

    moves: List[Move] = field(default_factory=list)
    rounds: int = 0
    conflicts_checked: int = 0
    alignment: Optional[Alignment] = None

    @property
    def num_moves(self) -> int:
        return len(self.moves)


class StoryRefiner:
    """Resolve SI/SA conflicts by moving snippets between stories."""

    def __init__(
        self,
        config: Optional[StoryPivotConfig] = None,
        decisions=None,
    ) -> None:
        self.config = config if config is not None else StoryPivotConfig()
        self.matcher = SnippetMatcher(self.config)
        self._aligner = StoryAligner(self.config)
        #: optional repro.obs.decisions.DecisionLog; every applied Move
        #: is recorded as a "refined" event with its evidence mass
        self.decisions = decisions

    def refine(
        self,
        story_sets: Mapping[str, StorySet],
        alignment: Alignment,
    ) -> RefinementResult:
        """Refine ``story_sets`` in place.

        Returns the result carrying the final re-computed alignment (also
        the passed ``alignment`` object stays valid only if no moves
        happened; callers should use ``result.alignment``).
        """
        result = RefinementResult(alignment=alignment)
        for _ in range(self.config.max_refinement_rounds):
            moves = self._one_round(story_sets, result)
            result.rounds += 1
            if not moves:
                break
            result.alignment = self._aligner.align(story_sets)
        return result

    # -- counterpart computation ------------------------------------------

    def _build_indexes(
        self, story_sets: Mapping[str, StorySet]
    ) -> Tuple[Dict[str, Snippet], Dict[str, TemporalIndex], Dict[str, InvertedIndex]]:
        snippets: Dict[str, Snippet] = {}
        temporal: Dict[str, TemporalIndex] = {}
        features: Dict[str, InvertedIndex] = {}
        for source_id, story_set in story_sets.items():
            time_index = TemporalIndex()
            feature_index = InvertedIndex()
            for story in story_set:
                for snippet in story.snippets():
                    snippets[snippet.snippet_id] = snippet
                    time_index.insert(snippet.snippet_id, snippet.timestamp)
                    entities, terms = snippet_features(snippet)
                    feature_index.insert(
                        snippet.snippet_id,
                        [("e", e) for e in entities] + [("t", t) for t in terms],
                    )
            temporal[source_id] = time_index
            features[source_id] = feature_index
        return snippets, temporal, features

    def _counterpart_votes(
        self,
        snippet: Snippet,
        snippets: Dict[str, Snippet],
        temporal: Dict[str, TemporalIndex],
        features: Dict[str, InvertedIndex],
        story_sets: Mapping[str, StorySet],
    ) -> Dict[str, Dict[str, float]]:
        """Per other source: counterpart story id → vote mass.

        A counterpart is a cross-source snippet within the align tolerance
        whose similarity clears the snippet-align threshold; its vote mass
        is that similarity, accumulated on the story that holds it.
        """
        tolerance = self.config.snippet_align_tolerance
        threshold = self.config.snippet_align_threshold
        entities, terms = snippet_features(snippet)
        query = [("e", e) for e in entities] + [("t", t) for t in terms]
        votes: Dict[str, Dict[str, float]] = {}
        for source_id, index in temporal.items():
            if source_id == snippet.source_id:
                continue
            sharing = features[source_id].candidates(query)
            for other_id in index.around(snippet.timestamp, tolerance):
                if other_id not in sharing:
                    continue
                score = self.matcher.snippet_score(snippet, snippets[other_id])
                if score < threshold:
                    continue
                story_id = story_sets[source_id].story_of(other_id).story_id
                per_source = votes.setdefault(source_id, {})
                per_source[story_id] = per_source.get(story_id, 0.0) + score
        return votes

    # -- one refinement round ------------------------------------------------

    def _one_round(
        self,
        story_sets: Mapping[str, StorySet],
        result: RefinementResult,
    ) -> List[Move]:
        snippets, temporal, features = self._build_indexes(story_sets)

        # counterpart votes — only members of multi-member stories can be in
        # (or resolve) a conflict, so singleton stories are skipped entirely
        votes_of: Dict[str, Dict[str, Dict[str, float]]] = {}
        for story_set in story_sets.values():
            for story in story_set:
                if len(story) < 2:
                    continue
                for snippet in story.snippets():
                    votes_of[snippet.snippet_id] = self._counterpart_votes(
                        snippet, snippets, temporal, features, story_sets
                    )
        # reverse index: evidence story -> snippets voting for it
        voted_by: Dict[str, Set[str]] = {}
        for snippet_id, per_source_votes in votes_of.items():
            for per_source in per_source_votes.values():
                for story_id in per_source:
                    voted_by.setdefault(story_id, set()).add(snippet_id)

        moves: List[Move] = []
        # fresh stories created this round, keyed by (source, evidence
        # stories): conflicting snippets sharing evidence group together
        fresh_homes: Dict[Tuple[str, frozenset], Story] = {}

        for source_id, story_set in sorted(story_sets.items()):
            for story in list(story_set):
                members = story.snippets()
                if len(members) < 2:
                    continue
                for snippet in members:
                    conflict = self._find_conflict(snippet, members, votes_of)
                    result.conflicts_checked += 1
                    if conflict is None:
                        continue
                    evidence_stories, evidence_mass = conflict
                    move = self._apply_move(
                        snippet, story, story_set, voted_by,
                        evidence_stories, evidence_mass, fresh_homes,
                    )
                    if move is not None:
                        moves.append(move)
                        result.moves.append(move)
        return moves

    def _find_conflict(
        self,
        snippet: Snippet,
        members: List[Snippet],
        votes_of: Dict[str, Dict[str, Dict[str, float]]],
    ) -> Optional[Tuple[Set[str], float]]:
        """Does the snippet's evidence point elsewhere than its story-mates'?

        For each other source, compare the snippet's top-voted counterpart
        story with the story its mates collectively vote for.  A conflict
        needs the snippet's own favourite to beat its vote for the mates'
        favourite by ``refinement_margin``.  Returns the evidence stories
        (per-source favourites) and their total mass, or ``None``.
        """
        margin = self.config.refinement_margin
        my_votes = votes_of[snippet.snippet_id]
        if not my_votes:
            return None
        evidence_stories: Set[str] = set()
        evidence_mass = 0.0
        agreements = 0
        conflicts = 0
        for source_id, per_source in my_votes.items():
            my_top = max(per_source, key=lambda k: (per_source[k], k))
            rest: Dict[str, float] = {}
            for other in members:
                if other.snippet_id == snippet.snippet_id:
                    continue
                for story_id, mass in votes_of[other.snippet_id].get(
                    source_id, {}
                ).items():
                    rest[story_id] = rest.get(story_id, 0.0) + mass
            if not rest:
                continue
            rest_top = max(rest, key=lambda k: (rest[k], k))
            if rest_top == my_top:
                agreements += 1
                continue
            if per_source[my_top] < per_source.get(rest_top, 0.0) + margin:
                agreements += 1
                continue
            conflicts += 1
            evidence_stories.add(my_top)
            evidence_mass += per_source[my_top]
        # a single disagreeing source must not outweigh sources confirming
        # the current placement: conflicts need a strict majority of the
        # sources that expressed a preference at all
        if not evidence_stories or conflicts <= agreements:
            return None
        return evidence_stories, evidence_mass

    def _apply_move(
        self,
        snippet: Snippet,
        story: Story,
        story_set: StorySet,
        voted_by: Dict[str, Set[str]],
        evidence_stories: Set[str],
        evidence: float,
        fresh_homes: Dict[Tuple[str, frozenset], Story],
    ) -> Optional[Move]:
        """Move the snippet to the same-source story sharing its evidence."""
        # candidate destinations: same-source stories holding a snippet that
        # also voted for one of the snippet's evidence stories (looked up at
        # move time, so earlier moves this round are taken into account)
        candidate_ids: Set[str] = set()
        for evidence_story in evidence_stories:
            for voter_id in voted_by.get(evidence_story, ()):
                try:
                    home = story_set.story_of(voter_id)
                except UnknownSnippetError:
                    continue  # voter lives in another source's set
                if home.story_id != story.story_id:
                    candidate_ids.add(home.story_id)
        best_story: Optional[Story] = None
        best_score = -1.0
        for candidate_id in sorted(candidate_ids):
            candidate = story_set.story(candidate_id)
            score = self.matcher.story_score(snippet, candidate)
            if score > best_score:
                best_story, best_score = candidate, score

        from_story_id = story.story_id
        founded = False
        if best_story is None:
            key = (snippet.source_id, frozenset(evidence_stories))
            best_story = fresh_homes.get(key)
            if best_story is None:
                story_set.unassign(snippet.snippet_id)
                best_story = story_set.new_story()
                fresh_homes[key] = best_story
                founded = True
            else:
                story_set.unassign(snippet.snippet_id)
        else:
            story_set.unassign(snippet.snippet_id)
        story_set.assign(snippet, best_story)
        if self.decisions is not None:
            details = {"from_story": from_story_id}
            if founded:
                details["founded"] = True
            self.decisions.record(
                "refined", best_story.story_id, snippet.source_id,
                snippet_id=snippet.snippet_id, score=evidence, **details,
            )
        return Move(
            snippet_id=snippet.snippet_id,
            source_id=snippet.source_id,
            from_story=from_story_id,
            to_story=best_story.story_id,
            evidence=evidence,
        )
