"""Similarity scoring between snippets, stories and sketches.

Section 2.2: "If a snippet is sufficiently similar to any other candidate
snippets they may be part of the same story."  Similarity combines three
channels — entity overlap, term similarity and temporal proximity — with
configurable weights.  The *temporal* execution mode scores a snippet
against a story's time-decayed profile (what the story is about *around the
snippet's time*); the *complete* mode scores against the undecayed
whole-history profile (Figure 2a), which is exactly what makes it overfit
evolving stories.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import StoryPivotConfig
from repro.core.stories import Story
from repro.eventdata.models import Snippet
from repro.sketch.story_sketch import StorySketch
from repro.storage.event_store import match_terms
from repro.text.similarity import (
    combine_weighted,
    jaccard_similarity,
    overlap_coefficient,
    temporal_proximity,
    weighted_jaccard,
)


def snippet_features(snippet: Snippet) -> Tuple[frozenset, frozenset]:
    """(entities, stemmed terms) — the match features of one snippet.

    Memoized on the (immutable) snippet instance: pairwise scoring calls
    this for every comparison.
    """
    cached = snippet.__dict__.get("_features")
    if cached is not None:
        return cached
    features = (snippet.entities, frozenset(match_terms(snippet)))
    object.__setattr__(snippet, "_features", features)
    return features


class SnippetMatcher:
    """Scores snippet–snippet and snippet–story similarity per the config."""

    def __init__(self, config: Optional[StoryPivotConfig] = None) -> None:
        self.config = config if config is not None else StoryPivotConfig()

    # -- snippet vs snippet ------------------------------------------------

    def snippet_score(self, a: Snippet, b: Snippet) -> float:
        """Pairwise similarity of two snippets in [0, 1]."""
        entities_a, terms_a = snippet_features(a)
        entities_b, terms_b = snippet_features(b)
        scores = {
            "entity": overlap_coefficient(entities_a, entities_b),
            "term": jaccard_similarity(terms_a, terms_b),
            "temporal": temporal_proximity(
                a.timestamp, b.timestamp, self.config.window
            ),
        }
        return combine_weighted(scores, self.config.weights)

    # -- snippet vs story ----------------------------------------------------

    def story_score(
        self,
        snippet: Snippet,
        story: Story,
        at_time: Optional[float] = None,
        decayed: Optional[bool] = None,
    ) -> float:
        """Similarity of ``snippet`` to ``story``.

        ``decayed`` selects the profile view: ``True`` decays member
        contributions toward ``at_time`` (defaults to the snippet's own
        timestamp) — the temporal mode; ``False`` uses raw counts — the
        complete mode.  When ``None`` it follows the configured mode.
        """
        if len(story) == 0:
            return 0.0
        if decayed is None:
            decayed = self.config.identification_mode == "temporal"
        reference = at_time if at_time is not None else snippet.timestamp
        entity_profile = story.sketch.entity_profile(reference if decayed else None)
        term_profile = story.sketch.term_profile(reference if decayed else None)
        entities, terms = snippet_features(snippet)
        scores = {
            "entity": _profile_overlap(entities, entity_profile),
            "term": _profile_overlap(terms, term_profile),
            "temporal": self._story_temporal_score(snippet, story),
        }
        return combine_weighted(scores, self.config.weights)

    def _story_temporal_score(self, snippet: Snippet, story: Story) -> float:
        """Proximity of the snippet to the story's nearest member."""
        nearest = min(
            abs(snippet.timestamp - t) for t in story.sketch.timestamps()
        )
        return temporal_proximity(0.0, nearest, self.config.window)

    # -- story vs story (identification-time merges) ----------------------------

    def story_pair_score(self, a: Story, b: Story) -> float:
        """Similarity of two same-source stories (merge check)."""
        if len(a) == 0 or len(b) == 0:
            return 0.0
        scores = {
            "entity": weighted_jaccard(
                a.sketch.entity_profile(), b.sketch.entity_profile()
            ),
            "term": weighted_jaccard(
                a.sketch.term_profile(), b.sketch.term_profile()
            ),
            "temporal": temporal_proximity(
                _midpoint(a.sketch), _midpoint(b.sketch), 2 * self.config.window
            ),
        }
        return combine_weighted(scores, self.config.weights)


def _profile_overlap(features: frozenset, profile: Dict[str, float]) -> float:
    """Overlap-coefficient analogue of a feature set vs a weighted profile.

    The shared mass (sum of profile weights on shared features, capped by
    each side's own mass) over the smaller side's mass.  Reduces to the set
    overlap coefficient when all profile weights are 1.
    """
    if not features or not profile:
        return 0.0
    feature_mass = float(len(features))
    profile_mass = sum(profile.values())
    shared = sum(min(1.0, profile.get(f, 0.0)) for f in features)
    denominator = min(feature_mass, profile_mass)
    if denominator <= 0:
        return 0.0
    return min(1.0, shared / denominator)


def _midpoint(sketch: StorySketch) -> float:
    return (sketch.start + sketch.end) / 2.0
