"""Core data model: sources, documents and information snippets.

The paper's elemental unit is the *information snippet* — e.g.
``<New York Times, Accident, {Ukraine, Malaysian Airlines}, "Plane Crash",
07/17/2014>``.  A snippet carries its data source, an event type, a set of
entities, a short description, free text content and two timestamps: when
the event *occurred* (``timestamp``, the axis stories evolve along) and when
the source *published* it (``published``, which may lag and arrive
out-of-order; Section 2.4).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

#: Timestamps are POSIX seconds (UTC).  Convenience constants for callers.
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


def parse_timestamp(text: str) -> float:
    """Parse ``MM/DD/YYYY`` or ISO ``YYYY-MM-DD[ HH:MM]`` into POSIX seconds.

    >>> parse_timestamp("07/17/2014") == parse_timestamp("2014-07-17")
    True
    """
    text = text.strip()
    for fmt in ("%m/%d/%Y", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
        try:
            parsed = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=_dt.timezone.utc).timestamp()
    raise ValueError(f"unrecognized timestamp format: {text!r}")


def format_timestamp(timestamp: float, with_time: bool = False) -> str:
    """Render POSIX seconds as a human-readable UTC date.

    >>> format_timestamp(parse_timestamp("07/17/2014"))
    'Jul 17, 2014'
    """
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    if with_time:
        return moment.strftime("%b %d, %Y %H:%M")
    return moment.strftime("%b %d, %Y")


#: Default source trust on the 0–10 ladder (see :attr:`Source.trust`).
DEFAULT_TRUST = 5


@dataclass(frozen=True)
class Source:
    """A data source: a newspaper, blog, wire service, social feed etc.

    ``trust`` grades editorial reliability on a 0–10 ladder (wire
    services ≈ 9, papers of record ≈ 8, anonymous blogs ≈ 3).  It is
    metadata only until
    :attr:`~repro.core.config.StoryPivotConfig.trust_weighted_alignment`
    is enabled, at which point the aligner scales cross-source alignment
    confidence by the pair's trust.
    """

    source_id: str
    name: str
    kind: str = "newspaper"
    trust: int = DEFAULT_TRUST

    def __post_init__(self) -> None:
        if not self.source_id:
            raise ValueError("source_id must be non-empty")
        if not 0 <= self.trust <= 10:
            raise ValueError(
                f"trust must be in [0, 10], got {self.trust}"
            )


@dataclass(frozen=True)
class Document:
    """A published document (news article, blog post) before extraction.

    ``body`` is the raw text the extraction pipeline splits into excerpts;
    ``url`` mirrors the document-selection module of the demo (Figure 3).
    """

    document_id: str
    source_id: str
    title: str
    body: str
    published: float
    url: str = ""

    @property
    def preview(self) -> str:
        """First ~100 characters of the body, as shown in Figure 3."""
        text = self.body.strip().replace("\n", " ")
        if len(text) <= 100:
            return text
        return text[:97] + "..."


@dataclass(frozen=True)
class Snippet:
    """An information snippet — the elemental unit StoryPivot processes.

    ``entities`` and ``keywords`` are the annotations OpenCalais would
    attach; ``description`` is the short event description from the paper's
    tuple format; ``text`` is the underlying excerpt.  ``timestamp`` is the
    real-world occurrence time; ``published`` defaults to it but can lag.
    """

    snippet_id: str
    source_id: str
    timestamp: float
    description: str
    entities: FrozenSet[str] = frozenset()
    keywords: Tuple[str, ...] = ()
    text: str = ""
    event_type: str = "unknown"
    document_id: str = ""
    url: str = ""
    published: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.snippet_id:
            raise ValueError("snippet_id must be non-empty")
        if not self.source_id:
            raise ValueError("source_id must be non-empty")
        if self.published is None:
            # frozen dataclass: write through object.__setattr__
            object.__setattr__(self, "published", self.timestamp)

    @property
    def content(self) -> str:
        """The matchable content: description plus underlying text."""
        if self.text and self.text != self.description:
            return f"{self.description} {self.text}"
        return self.description

    @property
    def date(self) -> str:
        """Occurrence date, e.g. ``'Jul 17, 2014'`` (Figure 5's timestamp row)."""
        return format_timestamp(self.timestamp)

    def delay(self) -> float:
        """Publication lag in seconds (0 for instantly published snippets)."""
        assert self.published is not None
        return self.published - self.timestamp


@dataclass(frozen=True)
class SnippetRef:
    """Lightweight (source, snippet) reference used in alignment edges."""

    source_id: str
    snippet_id: str


@dataclass
class TimeSpan:
    """A closed interval on the event-time axis."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"TimeSpan end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp <= self.end

    def overlaps(self, other: "TimeSpan", slack: float = 0.0) -> bool:
        """Whether the spans intersect when each is widened by ``slack``."""
        return self.start - slack <= other.end and other.start - slack <= self.end

    def gap(self, other: "TimeSpan") -> float:
        """Temporal gap between the spans; 0 when they overlap."""
        if self.overlaps(other):
            return 0.0
        if self.end < other.start:
            return other.start - self.end
        return self.start - other.end

    @staticmethod
    def around(timestamps: "list[float]") -> "TimeSpan":
        if not timestamps:
            raise ValueError("cannot build a TimeSpan around no timestamps")
        return TimeSpan(min(timestamps), max(timestamps))
