"""Topical domains and their vocabularies.

Ground-truth stories live in a *domain* (conflict, economy, ...).  Stories
within one domain share the domain's base vocabulary — this is precisely
what makes long-range complete matching confusable (Section 2.2's argument
for temporal identification): two different conflict stories look alike when
compared across months, while locally their drifting keyword mixtures
differ.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: domain -> keyword vocabulary (order matters: deterministic sampling).
DOMAIN_VOCABULARIES: Dict[str, Tuple[str, ...]] = {
    "conflict": (
        "protest", "clash", "ceasefire", "shelling", "troops", "border",
        "militia", "separatist", "airstrike", "casualties", "refugees",
        "sanctions", "negotiation", "offensive", "rebels", "artillery",
        "checkpoint", "convoy", "mobilization", "annexation", "insurgency",
        "peacekeepers", "escalation", "withdrawal", "armistice", "siege",
        "bombardment", "occupation", "resistance", "crossfire", "truce",
        "hostilities", "incursion", "blockade", "uprising", "crackdown",
    ),
    "economy": (
        "markets", "inflation", "currency", "exports", "tariffs", "stocks",
        "recession", "growth", "unemployment", "bonds", "deficit", "trade",
        "investment", "bailout", "interest", "banking", "earnings", "merger",
        "bankruptcy", "stimulus", "debt", "commodities", "manufacturing",
        "devaluation", "forecast", "budget", "austerity", "subsidies",
        "regulation", "antitrust", "monopoly", "lawsuit", "acquisition",
        "dividend", "shareholders", "valuation",
    ),
    "politics": (
        "election", "parliament", "coalition", "referendum", "minister",
        "campaign", "ballot", "opposition", "corruption", "impeachment",
        "legislation", "senate", "cabinet", "diplomacy", "summit", "treaty",
        "resignation", "scandal", "veto", "amendment", "lobbying", "polls",
        "inauguration", "succession", "coup", "reform", "decree", "mandate",
        "constituency", "delegation", "ratification", "censure", "caucus",
        "primaries", "manifesto", "electorate",
    ),
    "disaster": (
        "earthquake", "flood", "hurricane", "wildfire", "crash", "explosion",
        "rescue", "evacuation", "victims", "debris", "collapse", "tsunami",
        "landslide", "drought", "aftershock", "emergency", "survivors",
        "wreckage", "derailment", "sinking", "blackout", "contamination",
        "epidemic", "quarantine", "relief", "aid", "shelter", "damages",
        "fatalities", "missing", "recovery", "investigation", "salvage",
        "alert", "warning", "devastation",
    ),
    "sports": (
        "tournament", "championship", "final", "transfer", "goal", "medal",
        "record", "doping", "qualifier", "league", "stadium", "coach",
        "injury", "victory", "defeat", "penalty", "referee", "season",
        "playoffs", "title", "relegation", "contract", "debut", "retirement",
        "olympics", "sprint", "marathon", "match", "squad", "captain",
        "fixture", "standings", "comeback", "upset", "streak", "trophy",
    ),
    "health": (
        "outbreak", "vaccine", "virus", "hospital", "patients", "treatment",
        "infection", "pandemic", "symptoms", "clinical", "trial", "drug",
        "approval", "mortality", "screening", "diagnosis", "immunity",
        "transmission", "lockdown", "testing", "antibodies", "dosage",
        "epidemiology", "pathogen", "containment", "surveillance",
        "prevention", "therapy", "remission", "relapse", "wards", "triage",
        "staffing", "shortage", "funding", "research",
    ),
    "technology": (
        "software", "breach", "encryption", "startup", "platform", "privacy",
        "algorithm", "satellite", "launch", "prototype", "patent", "chip",
        "network", "outage", "hack", "malware", "cloud", "robotics",
        "automation", "battery", "spectrum", "broadband", "surveillance",
        "antitrust", "data", "leak", "firmware", "upgrade", "release",
        "vulnerability", "exploit", "patch", "authentication", "quantum",
        "semiconductor", "telecom",
    ),
}

#: CAMEO-flavoured event types per domain, sampled per ground event.
DOMAIN_EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    "conflict": ("Fight", "Threaten", "Demand", "Coerce", "Assault", "Yield"),
    "economy": ("Trade", "Invest", "Sanction", "Default", "Merge", "Regulate"),
    "politics": ("Consult", "Appeal", "Reject", "Endorse", "Vote", "Negotiate"),
    "disaster": ("Accident", "Rescue", "Evacuate", "Investigate", "Aid", "Rebuild"),
    "sports": ("Compete", "Win", "Lose", "Transfer", "Suspend", "Qualify"),
    "health": ("Outbreak", "Treat", "Vaccinate", "Quarantine", "Approve", "Research"),
    "technology": ("Launch", "Breach", "Patch", "Acquire", "Release", "Litigate"),
}

DOMAINS: Tuple[str, ...] = tuple(DOMAIN_VOCABULARIES)

#: Generic newsroom verbs/fillers shared by every domain (adds realistic
#: cross-domain confusability without dominating the signal).
GENERIC_TERMS: Tuple[str, ...] = (
    "officials", "report", "statement", "response", "crisis", "talks",
    "announcement", "sources", "authorities", "meeting", "agreement",
    "decision", "pressure", "concerns", "situation", "developments",
)
