"""Synthetic news-world generator.

This module replaces GDELT / EventRegistry (see DESIGN.md, substitutions):
it generates *ground-truth stories* — arcs of real-world events with
evolving entities and keywords — from which the source simulator then
produces per-source snippets.  Because the truth labels are known, the
quality axis of the paper's Figure 7 (F-measure vs. #events) becomes
computable.

The generator models the story dynamics Section 2 motivates:

* **drift** — a story's active keyword set changes gradually over its
  lifetime (protests → military conflict in the Ukraine example), so
  comparing temporally distant snippets of the same story is unreliable;
* **domain confusability** — stories in one domain share a base vocabulary,
  so *complete* matching that compares against all history tends to merge
  distinct stories;
* **split / merge** — a story can split into substories or merge with
  another story of the same domain ("political and economic events were
  interwoven during the height of the Ukraine crisis").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.eventdata.domains import (
    DOMAIN_EVENT_TYPES,
    DOMAIN_VOCABULARIES,
    DOMAINS,
    GENERIC_TERMS,
)
from repro.eventdata.entities import full_universe
from repro.eventdata.models import DAY, parse_timestamp


@dataclass(frozen=True)
class GroundEvent:
    """One real-world event inside a ground-truth story arc."""

    event_id: str
    story_label: str
    domain: str
    timestamp: float
    entities: Tuple[str, ...]
    keywords: Tuple[str, ...]
    event_type: str
    headline: str
    body: str


@dataclass
class StoryArc:
    """A ground-truth story: its label, domain, lifetime and events."""

    label: str
    domain: str
    start: float
    end: float
    core_entities: Tuple[str, ...]
    events: List[GroundEvent] = field(default_factory=list)
    parent: Optional[str] = None
    merged_from: Tuple[str, ...] = ()

    @property
    def size(self) -> int:
        return len(self.events)


@dataclass
class WorldConfig:
    """Parameters of the synthetic world.

    Defaults mirror the dataset card the paper's statistics module shows
    (Figure 7): a multi-month window, tens of sources in the source layer,
    and stories whose event counts follow a long-tailed distribution.
    """

    seed: int = 42
    num_stories: int = 40
    start_date: str = "2014-06-01"
    duration_days: float = 183.0  # June 1 – Dec 1, as in Figure 7
    mean_events_per_story: float = 12.0
    min_events_per_story: int = 3
    entities_per_story: int = 4
    keywords_per_story: int = 8
    keywords_per_event: int = 5
    entities_per_event: int = 3
    drift_rate: float = 0.25
    entity_drift_rate: float = 0.10
    split_probability: float = 0.15
    merge_probability: float = 0.10
    num_people: int = 120
    domain_weights: Optional[Dict[str, float]] = None
    generic_term_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.num_stories <= 0:
            raise ConfigurationError("num_stories must be positive")
        if self.mean_events_per_story < self.min_events_per_story:
            raise ConfigurationError(
                "mean_events_per_story must be >= min_events_per_story"
            )
        if not 0.0 <= self.drift_rate <= 1.0:
            raise ConfigurationError("drift_rate must be in [0, 1]")

    @classmethod
    def for_total_events(cls, total_events: int, **overrides) -> "WorldConfig":
        """Size the world so roughly ``total_events`` ground events exist.

        Benchmarks sweep the #events axis of Figure 7 with this helper.
        """
        if total_events <= 0:
            raise ConfigurationError("total_events must be positive")
        mean = overrides.pop("mean_events_per_story", 12.0)
        num_stories = max(1, round(total_events / mean))
        return cls(num_stories=num_stories, mean_events_per_story=mean, **overrides)


class WorldGenerator:
    """Generate ground-truth story arcs and their events deterministically."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config if config is not None else WorldConfig()
        self._rng = random.Random(self.config.seed)
        self._universe = full_universe(self.config.num_people, seed=self.config.seed)
        self._entity_codes = sorted(self._universe)
        self._event_counter = 0
        self._story_counter = 0

    @property
    def entity_universe(self) -> Dict[str, str]:
        """code -> display name of every entity the world can mention."""
        return dict(self._universe)

    # -- public API ----------------------------------------------------------

    def generate(self) -> List[StoryArc]:
        """Generate all story arcs (including splits and merges).

        Returns arcs whose events are globally consistent: event ids unique,
        timestamps inside the world window, every event labelled with its
        arc.
        """
        cfg = self.config
        t0 = parse_timestamp(cfg.start_date)
        t1 = t0 + cfg.duration_days * DAY
        arcs: List[StoryArc] = []
        for _ in range(cfg.num_stories):
            arcs.append(self._generate_arc(t0, t1))
        arcs.extend(self._apply_splits(arcs, t1))
        self._apply_merges(arcs)
        return arcs

    def events(self, arcs: Optional[Sequence[StoryArc]] = None) -> List[GroundEvent]:
        """All ground events across ``arcs`` ordered by occurrence time."""
        if arcs is None:
            arcs = self.generate()
        all_events = [event for arc in arcs for event in arc.events]
        return sorted(all_events, key=lambda e: (e.timestamp, e.event_id))

    # -- arc construction ------------------------------------------------------

    def _next_story_label(self) -> str:
        label = f"story_{self._story_counter:04d}"
        self._story_counter += 1
        return label

    def _next_event_id(self) -> str:
        event_id = f"ev_{self._event_counter:06d}"
        self._event_counter += 1
        return event_id

    def _pick_domain(self) -> str:
        weights = self.config.domain_weights
        if weights:
            domains = [d for d in DOMAINS if weights.get(d, 0.0) > 0.0]
            if not domains:
                raise ConfigurationError("domain_weights excludes every domain")
            return self._rng.choices(
                domains, weights=[weights[d] for d in domains], k=1
            )[0]
        return self._rng.choice(DOMAINS)

    def _pick_entities(self, count: int) -> List[str]:
        return self._rng.sample(self._entity_codes, count)

    def _generate_arc(self, world_start: float, world_end: float) -> StoryArc:
        cfg = self.config
        rng = self._rng
        domain = self._pick_domain()
        num_events = max(
            cfg.min_events_per_story,
            round(rng.expovariate(1.0 / cfg.mean_events_per_story)),
        )
        # Lifetime: longer stories get longer lifetimes; clamp to world.
        duration = min(
            (world_end - world_start),
            num_events * rng.uniform(1.0, 5.0) * DAY,
        )
        start = rng.uniform(world_start, max(world_start, world_end - duration))
        arc = StoryArc(
            label=self._next_story_label(),
            domain=domain,
            start=start,
            end=start + duration,
            core_entities=tuple(self._pick_entities(cfg.entities_per_story)),
        )
        times = sorted(rng.uniform(start, start + duration) for _ in range(num_events))
        self._emit_events(arc, times)
        return arc

    def _emit_events(
        self,
        arc: StoryArc,
        times: Sequence[float],
        initial_keywords: Optional[List[str]] = None,
        initial_entities: Optional[List[str]] = None,
    ) -> None:
        """Walk the arc's timeline emitting events while drifting state."""
        cfg = self.config
        rng = self._rng
        vocabulary = DOMAIN_VOCABULARIES[arc.domain]
        active_keywords = (
            list(initial_keywords)
            if initial_keywords is not None
            else rng.sample(vocabulary, min(cfg.keywords_per_story, len(vocabulary)))
        )
        active_entities = (
            list(initial_entities)
            if initial_entities is not None
            else list(arc.core_entities)
        )
        for timestamp in times:
            # Drift: replace one active keyword / entity with small probability.
            if rng.random() < cfg.drift_rate:
                replace_at = rng.randrange(len(active_keywords))
                candidates = [w for w in vocabulary if w not in active_keywords]
                if candidates:
                    active_keywords[replace_at] = rng.choice(candidates)
            if rng.random() < cfg.entity_drift_rate:
                replace_at = rng.randrange(len(active_entities))
                candidate = rng.choice(self._entity_codes)
                if candidate not in active_entities:
                    active_entities[replace_at] = candidate
            arc.events.append(
                self._render_event(arc, timestamp, active_keywords, active_entities)
            )

    def _render_event(
        self,
        arc: StoryArc,
        timestamp: float,
        active_keywords: Sequence[str],
        active_entities: Sequence[str],
    ) -> GroundEvent:
        cfg = self.config
        rng = self._rng
        k = min(cfg.keywords_per_event, len(active_keywords))
        keywords = rng.sample(list(active_keywords), k)
        if rng.random() < cfg.generic_term_probability:
            keywords.append(rng.choice(GENERIC_TERMS))
        n_entities = min(cfg.entities_per_event, len(active_entities))
        entities = rng.sample(list(active_entities), n_entities)
        event_type = rng.choice(DOMAIN_EVENT_TYPES[arc.domain])
        names = [self._universe[code] for code in entities]
        headline = f"{names[0]} {keywords[0]} {keywords[1 % len(keywords)]}".strip()
        joined_names = ", ".join(names)
        body = (
            f"{event_type} reported: {', '.join(keywords)} involving "
            f"{joined_names}. Officials in {names[-1]} issued a statement on "
            f"the {keywords[0]} as the situation developed."
        )
        return GroundEvent(
            event_id=self._next_event_id(),
            story_label=arc.label,
            domain=arc.domain,
            timestamp=timestamp,
            entities=tuple(entities),
            keywords=tuple(keywords),
            event_type=event_type,
            headline=headline,
            body=body,
        )

    # -- split / merge dynamics -----------------------------------------------

    def _apply_splits(
        self, arcs: List[StoryArc], world_end: float
    ) -> List[StoryArc]:
        """With probability ``split_probability`` an arc spawns a substory.

        The child inherits the parent's *current* keyword/entity state at the
        split point and then drifts independently — exactly the "stories
        split into multiple substories" dynamic of Section 2.1.
        """
        cfg = self.config
        rng = self._rng
        children: List[StoryArc] = []
        for arc in arcs:
            if arc.size < 2 * cfg.min_events_per_story:
                continue
            if rng.random() >= cfg.split_probability:
                continue
            split_at = rng.randrange(
                cfg.min_events_per_story, arc.size - cfg.min_events_per_story + 1
            )
            split_time = arc.events[split_at].timestamp
            seed_event = arc.events[split_at - 1]
            child = StoryArc(
                label=self._next_story_label(),
                domain=arc.domain,
                start=split_time,
                end=min(world_end, split_time + (arc.end - split_time)),
                core_entities=seed_event.entities,
                parent=arc.label,
            )
            num_child_events = max(
                cfg.min_events_per_story, round(arc.size - split_at)
            )
            times = sorted(
                rng.uniform(child.start, child.end) for _ in range(num_child_events)
            )
            self._emit_events(
                child,
                times,
                initial_keywords=list(seed_event.keywords),
                initial_entities=list(seed_event.entities),
            )
            children.append(child)
        return children

    def _apply_merges(self, arcs: List[StoryArc]) -> None:
        """With probability ``merge_probability`` relabel a same-domain pair.

        A merge joins two temporally overlapping stories of one domain into
        a single ground-truth story: the later events of both arcs take a
        fresh shared label (the pre-merge prefixes stay distinct stories).
        """
        cfg = self.config
        rng = self._rng
        by_domain: Dict[str, List[StoryArc]] = {}
        for arc in arcs:
            by_domain.setdefault(arc.domain, []).append(arc)
        for domain_arcs in by_domain.values():
            if len(domain_arcs) < 2:
                continue
            if rng.random() >= cfg.merge_probability:
                continue
            a, b = rng.sample(domain_arcs, 2)
            overlap_start = max(a.start, b.start)
            overlap_end = min(a.end, b.end)
            if overlap_start >= overlap_end:
                continue
            merge_time = rng.uniform(overlap_start, overlap_end)
            merged_label = self._next_story_label()
            for arc in (a, b):
                relabeled = []
                for event in arc.events:
                    if event.timestamp >= merge_time:
                        relabeled.append(
                            GroundEvent(
                                event_id=event.event_id,
                                story_label=merged_label,
                                domain=event.domain,
                                timestamp=event.timestamp,
                                entities=event.entities,
                                keywords=event.keywords,
                                event_type=event.event_type,
                                headline=event.headline,
                                body=event.body,
                            )
                        )
                    else:
                        relabeled.append(event)
                arc.events = relabeled
                arc.merged_from = tuple(sorted({a.label, b.label}))
