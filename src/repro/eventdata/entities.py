"""Deterministic entity universe for the synthetic news world.

Real extractions (GDELT, OpenCalais) annotate snippets with actors: country
codes, organizations, and people.  The simulator draws from this in-repo
universe so runs are reproducible without network access.  Country codes
follow the paper's style (``UKR``, ``RUS``, ``MAL`` ...).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

#: (code, display name) — a CAMEO/ISO-flavoured actor list.
COUNTRIES: Tuple[Tuple[str, str], ...] = (
    ("UKR", "Ukraine"), ("RUS", "Russia"), ("MAL", "Malaysia"),
    ("NTH", "Netherlands"), ("USA", "United States"), ("GBR", "United Kingdom"),
    ("FRA", "France"), ("GER", "Germany"), ("CHN", "China"), ("JPN", "Japan"),
    ("IND", "India"), ("BRA", "Brazil"), ("CAN", "Canada"), ("AUS", "Australia"),
    ("ITA", "Italy"), ("ESP", "Spain"), ("POL", "Poland"), ("TUR", "Turkey"),
    ("IRN", "Iran"), ("IRQ", "Iraq"), ("SYR", "Syria"), ("ISR", "Israel"),
    ("PAL", "Palestine"), ("EGY", "Egypt"), ("SAU", "Saudi Arabia"),
    ("NGA", "Nigeria"), ("ZAF", "South Africa"), ("KEN", "Kenya"),
    ("ETH", "Ethiopia"), ("MEX", "Mexico"), ("ARG", "Argentina"),
    ("COL", "Colombia"), ("VEN", "Venezuela"), ("KOR", "South Korea"),
    ("PRK", "North Korea"), ("VNM", "Vietnam"), ("THA", "Thailand"),
    ("IDN", "Indonesia"), ("PHL", "Philippines"), ("PAK", "Pakistan"),
    ("AFG", "Afghanistan"), ("GRC", "Greece"), ("SWE", "Sweden"),
    ("NOR", "Norway"), ("FIN", "Finland"), ("CHE", "Switzerland"),
    ("AUT", "Austria"), ("BEL", "Belgium"), ("PRT", "Portugal"),
    ("CZE", "Czech Republic"), ("HUN", "Hungary"), ("ROU", "Romania"),
    ("BGR", "Bulgaria"), ("SRB", "Serbia"), ("HRV", "Croatia"),
    ("GEO", "Georgia"), ("ARM", "Armenia"), ("AZE", "Azerbaijan"),
    ("KAZ", "Kazakhstan"), ("BLR", "Belarus"), ("MDA", "Moldova"),
    ("LTU", "Lithuania"), ("LVA", "Latvia"), ("EST", "Estonia"),
    ("CUB", "Cuba"), ("CHL", "Chile"), ("PER", "Peru"), ("MAR", "Morocco"),
    ("DZA", "Algeria"), ("TUN", "Tunisia"), ("LBY", "Libya"),
    ("SDN", "Sudan"), ("SOM", "Somalia"), ("YEM", "Yemen"), ("JOR", "Jordan"),
    ("LBN", "Lebanon"), ("QAT", "Qatar"), ("ARE", "United Arab Emirates"),
    ("SGP", "Singapore"), ("MMR", "Myanmar"), ("BGD", "Bangladesh"),
    ("LKA", "Sri Lanka"), ("NPL", "Nepal"), ("NZL", "New Zealand"),
)

ORGANIZATIONS: Tuple[Tuple[str, str], ...] = (
    ("UN", "United Nations"), ("NATO", "NATO"), ("EU", "European Union"),
    ("IMF", "International Monetary Fund"), ("WBK", "World Bank"),
    ("WHO", "World Health Organization"), ("WTO", "World Trade Organization"),
    ("ICRC", "Red Cross"), ("OPEC", "OPEC"), ("ASEAN", "ASEAN"),
    ("AU", "African Union"), ("OSCE", "OSCE"), ("ICC", "International Criminal Court"),
    ("FIFA", "FIFA"), ("IOC", "International Olympic Committee"),
    ("ECB", "European Central Bank"), ("FED", "Federal Reserve"),
    ("SEC", "Securities and Exchange Commission"), ("CVL", "Civil Aviation Authority"),
    ("INTERPOL", "Interpol"), ("UNESCO", "UNESCO"), ("UNHCR", "UNHCR"),
    ("OECD", "OECD"), ("G20", "G20"), ("G7", "G7"),
)

COMPANIES: Tuple[Tuple[str, str], ...] = (
    ("MAS", "Malaysia Airlines"), ("BOE", "Boeing"), ("ABUS", "Airbus"),
    ("GAZ", "Gazprom"), ("SHEL", "Shell"), ("EXX", "ExxonMobil"),
    ("GOOG", "Google"), ("YELP", "Yelp"), ("APPL", "Apple"),
    ("MSFT", "Microsoft"), ("AMZN", "Amazon"), ("TSLA", "Tesla"),
    ("SIEM", "Siemens"), ("TOYT", "Toyota"), ("VOLK", "Volkswagen"),
    ("SAMS", "Samsung"), ("HUAW", "Huawei"), ("ALIB", "Alibaba"),
    ("NEST", "Nestle"), ("PFE", "Pfizer"), ("BAYR", "Bayer"),
    ("GSK", "GlaxoSmithKline"), ("BP", "BP"), ("TOT", "TotalEnergies"),
    ("LUFT", "Lufthansa"), ("RYAN", "Ryanair"), ("MAER", "Maersk"),
    ("HSBC", "HSBC"), ("JPM", "JPMorgan"), ("GS", "Goldman Sachs"),
    ("DB", "Deutsche Bank"), ("UBS", "UBS"), ("BARC", "Barclays"),
)

_FIRST_NAMES = (
    "Alexei", "Maria", "John", "Wei", "Fatima", "Carlos", "Anna", "David",
    "Yuki", "Amara", "Pieter", "Ingrid", "Omar", "Elena", "Viktor", "Sofia",
    "James", "Linh", "Kofi", "Priya", "Mateo", "Zara", "Henrik", "Leila",
    "Dmitri", "Chiara", "Ahmed", "Greta", "Pablo", "Nadia",
)

_LAST_NAMES = (
    "Petrov", "Silva", "Smith", "Chen", "Hassan", "Garcia", "Novak",
    "Johnson", "Tanaka", "Okafor", "Janssen", "Larsen", "Farouk", "Popov",
    "Kovac", "Rossi", "Brown", "Nguyen", "Mensah", "Sharma", "Diaz",
    "Khan", "Berg", "Haddad", "Volkov", "Ricci", "Mahmoud", "Lindqvist",
    "Morales", "Karimov",
)


def person_universe(count: int, seed: int = 7) -> List[Tuple[str, str]]:
    """Generate ``count`` deterministic (code, "First Last") person entities."""
    rng = random.Random(seed)
    people: List[Tuple[str, str]] = []
    seen = set()
    while len(people) < count:
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        name = f"{first} {last}"
        if name in seen:
            continue
        seen.add(name)
        code = f"P_{last.upper()}_{len(people):03d}"
        people.append((code, name))
    return people


def full_universe(num_people: int = 120, seed: int = 7) -> Dict[str, str]:
    """code -> display-name for the whole entity universe."""
    universe = {}
    for code, name in COUNTRIES + ORGANIZATIONS + COMPANIES:
        universe[code] = name
    for code, name in person_universe(num_people, seed):
        universe[code] = name
    return universe
