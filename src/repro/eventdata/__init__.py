"""Event data substrate.

The paper's snippets come from repositories such as GDELT and EventRegistry.
This package defines the data model (:mod:`repro.eventdata.models`), corpus
containers with ground truth (:mod:`repro.eventdata.corpus`), a synthetic
news-world simulator that replaces the proprietary feeds
(:mod:`repro.eventdata.worldgen`, :mod:`repro.eventdata.sourcegen`), a
GDELT-style tuple schema (:mod:`repro.eventdata.gdelt`), an
EventRegistry-style document renderer (:mod:`repro.eventdata.eventregistry`)
and the handcrafted MH17 mini-corpus used throughout the paper's figures
(:mod:`repro.eventdata.handcrafted`).
"""

from repro.eventdata.models import (
    Document,
    Snippet,
    Source,
    format_timestamp,
    parse_timestamp,
)
from repro.eventdata.corpus import Corpus, GroundTruth
from repro.eventdata.worldgen import StoryArc, WorldConfig, WorldGenerator
from repro.eventdata.sourcegen import SourceProfile, SourceSimulator
from repro.eventdata.handcrafted import mh17_corpus

__all__ = [
    "Source",
    "Document",
    "Snippet",
    "format_timestamp",
    "parse_timestamp",
    "Corpus",
    "GroundTruth",
    "WorldConfig",
    "WorldGenerator",
    "StoryArc",
    "SourceProfile",
    "SourceSimulator",
    "mh17_corpus",
]
