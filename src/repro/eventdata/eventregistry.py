"""EventRegistry-style document feed.

EventRegistry serves article documents (title + body + metadata) that
StoryPivot's extraction pipeline turns into snippets.  This module renders
synthetic ground events as such documents — the input format of
:mod:`repro.extraction.pipeline` — and provides a feed abstraction that
yields documents in *publication* order, which is how a live crawl would
deliver them (and is deliberately not occurrence order; Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Document


@dataclass(frozen=True)
class FeedItem:
    """One feed entry: a document plus optional ground-truth story label."""

    document: Document
    story_label: Optional[str] = None


class DocumentFeed:
    """Iterate documents of a corpus in publication order.

    ``batches(window)`` groups the feed into fixed-duration publication
    windows, mirroring how repositories like GDELT release updates "over
    fixed time intervals (e.g., daily)".
    """

    def __init__(self, corpus: Corpus) -> None:
        self._corpus = corpus
        self._items = self._build_items()

    def _build_items(self) -> List[FeedItem]:
        items = []
        snippet_by_doc = {}
        for snippet in self._corpus.snippets():
            if snippet.document_id:
                snippet_by_doc[snippet.document_id] = snippet
        for document in self._corpus.documents.values():
            snippet = snippet_by_doc.get(document.document_id)
            label = None
            if snippet is not None:
                label = self._corpus.truth.labels.get(snippet.snippet_id)
            items.append(FeedItem(document, label))
        items.sort(key=lambda item: (item.document.published, item.document.document_id))
        return items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[FeedItem]:
        return iter(self._items)

    def documents(self) -> List[Document]:
        return [item.document for item in self._items]

    def batches(self, window: float) -> Iterator[List[FeedItem]]:
        """Yield feed items grouped into publication windows of ``window`` s.

        Empty intermediate windows are skipped; items within a batch keep
        publication order.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        if not self._items:
            return
        batch: List[FeedItem] = []
        batch_end = self._items[0].document.published + window
        for item in self._items:
            if item.document.published >= batch_end:
                if batch:
                    yield batch
                batch = []
                while item.document.published >= batch_end:
                    batch_end += window
            batch.append(item)
        if batch:
            yield batch


class ResilientFeed:
    """A feed whose pulls ride a retry schedule behind a circuit breaker.

    Wraps any iterable of feed items (a :class:`DocumentFeed`, a chaos
    wrapper, a network-backed generator) so that transient pull errors
    are retried on a deterministic backoff schedule and a *persistently*
    failing upstream trips a breaker instead of hammering it: pulls then
    fail fast with :class:`~repro.resilience.breaker.CircuitOpenError`
    until the reset timeout lets a probe through.  Because an injected or
    upstream error surfaces *before* an item is consumed, a retried pull
    never loses data.
    """

    def __init__(
        self,
        feed,
        retry=None,
        breaker=None,
        sleep=None,
        name: str = "feed",
    ) -> None:
        from repro.resilience.breaker import CircuitBreaker
        from repro.resilience.policies import RetryPolicy

        self.feed = feed
        self.name = name
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=4, base_delay=0.05, factor=2.0, max_delay=1.0
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name=name, failure_threshold=0.5, window=20, min_calls=5,
            reset_timeout=2.0,
        )
        self._sleep = sleep

    def __iter__(self) -> Iterator:
        from repro.resilience.policies import resilient_iter

        kwargs = {"retry": self.retry, "breaker": self.breaker,
                  "key": self.name}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        return resilient_iter(iter(self.feed), **kwargs)

    def __len__(self) -> int:
        return len(self.feed)


def feed_from_events(
    events: Sequence, profiles: Sequence, seed: int = 7
) -> DocumentFeed:
    """Render ground events through the source simulator into a feed."""
    from repro.eventdata.sourcegen import SourceSimulator

    simulator = SourceSimulator(profiles, seed=seed)
    corpus = simulator.make_corpus(events, render_documents=True)
    return DocumentFeed(corpus)
