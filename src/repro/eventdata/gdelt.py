"""GDELT-style tuple schema and TSV round-trip.

GDELT distributes events as tab-separated records with actor codes, a CAMEO
event code, and date fields.  This module maps our :class:`Snippet` model
onto a GDELT-flavoured flat schema so that (a) the repo can *export* its
synthetic worlds in the format analysts expect, and (b) real GDELT-like
exports can be *imported* as corpora.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional

from repro.errors import DataFormatError
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet, Source

#: Column order of the flat export (a pragmatic subset of GDELT 1.0).
GDELT_COLUMNS = (
    "GLOBALEVENTID",
    "SQLDATE",
    "Actor1Code",
    "Actor2Code",
    "EventCode",
    "SOURCEURL",
    "SourceId",
    "Actors",
    "Keywords",
    "Description",
    "TimestampUnix",
    "PublishedUnix",
    "StoryLabel",
)

#: CAMEO root codes by coarse event-type name used in the simulator.
CAMEO_CODES: Dict[str, str] = {
    "Consult": "040", "Appeal": "020", "Reject": "120", "Endorse": "051",
    "Vote": "043", "Negotiate": "046", "Fight": "190", "Threaten": "130",
    "Demand": "100", "Coerce": "170", "Assault": "180", "Yield": "080",
    "Trade": "061", "Invest": "062", "Sanction": "163", "Default": "166",
    "Merge": "057", "Regulate": "115", "Accident": "200", "Rescue": "075",
    "Evacuate": "084", "Investigate": "090", "Aid": "070", "Rebuild": "086",
    "Compete": "010", "Win": "011", "Lose": "012", "Transfer": "013",
    "Suspend": "014", "Qualify": "015", "Outbreak": "201", "Treat": "076",
    "Vaccinate": "077", "Quarantine": "085", "Approve": "052",
    "Research": "042", "Launch": "016", "Breach": "202", "Patch": "017",
    "Acquire": "058", "Release": "066", "Litigate": "116",
    "unknown": "000",
}

_REVERSE_CAMEO = {code: name for name, code in CAMEO_CODES.items()}


def _sqldate(timestamp: float) -> str:
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%Y%m%d")


def snippet_to_row(snippet: Snippet, story_label: Optional[str] = None) -> List[str]:
    """Flatten a snippet into a GDELT-style row (list of column strings)."""
    actors = sorted(snippet.entities)
    return [
        snippet.snippet_id,
        _sqldate(snippet.timestamp),
        actors[0] if actors else "",
        actors[1] if len(actors) > 1 else "",
        CAMEO_CODES.get(snippet.event_type, "000"),
        snippet.url,
        snippet.source_id,
        ";".join(actors),
        ";".join(snippet.keywords),
        snippet.description,
        repr(snippet.timestamp),
        repr(snippet.published),
        story_label or "",
    ]


def export_tsv(corpus: Corpus) -> str:
    """Serialize a corpus to GDELT-flavoured TSV (with header row)."""
    lines = ["\t".join(GDELT_COLUMNS)]
    for snippet in corpus.snippets():
        label = corpus.truth.labels.get(snippet.snippet_id)
        row = snippet_to_row(snippet, label)
        for cell in row:
            if "\t" in cell or "\n" in cell:
                raise DataFormatError(
                    f"snippet {snippet.snippet_id!r} contains tab/newline; "
                    f"cannot export as TSV"
                )
        lines.append("\t".join(row))
    return "\n".join(lines) + "\n"


def _row_error(line_no: int, message: str, reason: str) -> DataFormatError:
    """A per-row import error tagged with a normalization reject reason.

    ``reason`` uses the same vocabulary as
    :data:`repro.connect.normalize.REJECT_REASONS` so batch TSV imports
    and live connector pulls report skips on the same metric series.
    """
    exc = DataFormatError(f"line {line_no}: {message}")
    exc.reason = reason  # type: ignore[attr-defined]
    return exc


def import_tsv(
    text: str,
    name: str = "gdelt-import",
    on_error: str = "raise",
    errors: Optional[List[str]] = None,
    reasons: Optional[Dict[str, int]] = None,
) -> Corpus:
    """Parse TSV produced by :func:`export_tsv` back into a corpus.

    Sources are synthesized from the distinct ``SourceId`` values.

    ``on_error`` selects how malformed *rows* are treated: ``"raise"``
    (default) keeps the strict contract and raises
    :class:`~repro.errors.DataFormatError` on the first bad row;
    ``"skip"`` quarantines bad rows — each is dropped with its message
    appended to ``errors`` (when given) and its reject reason tallied
    into ``reasons`` (when given; same reason names the connector
    gauntlet uses, e.g. ``malformed_record``/``bad_timestamp``) — so one
    mangled line in a large export costs one record, not the whole
    import.  A bad header or an empty file always raises: there is
    nothing sensible to salvage.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise DataFormatError("empty TSV input")
    header = lines[0].split("\t")
    if tuple(header) != GDELT_COLUMNS:
        raise DataFormatError(
            f"unexpected TSV header; wanted {GDELT_COLUMNS}, got {tuple(header)}"
        )
    corpus = Corpus(name)
    seen_sources: Dict[str, Source] = {}
    for line_no, line in enumerate(lines[1:], start=2):
        try:
            cells = line.split("\t")
            if len(cells) != len(GDELT_COLUMNS):
                raise _row_error(
                    line_no,
                    f"expected {len(GDELT_COLUMNS)} columns, got {len(cells)}",
                    "malformed_record",
                )
            record = dict(zip(GDELT_COLUMNS, cells))
            source_id = record["SourceId"]
            if not record["GLOBALEVENTID"]:
                raise _row_error(line_no, "missing GLOBALEVENTID",
                                 "malformed_record")
            if not source_id:
                raise _row_error(line_no, "missing SourceId",
                                 "missing_source")
            try:
                timestamp = float(record["TimestampUnix"])
                published = float(record["PublishedUnix"])
            except ValueError as exc:
                raise _row_error(line_no, "bad timestamp",
                                 "bad_timestamp") from exc
            entities = frozenset(a for a in record["Actors"].split(";") if a)
            keywords = tuple(k for k in record["Keywords"].split(";") if k)
            snippet = Snippet(
                snippet_id=record["GLOBALEVENTID"],
                source_id=source_id,
                timestamp=timestamp,
                published=published,
                description=record["Description"],
                entities=entities,
                keywords=keywords,
                event_type=_REVERSE_CAMEO.get(record["EventCode"], "unknown"),
                url=record["SOURCEURL"],
            )
        except DataFormatError as exc:
            if on_error == "raise":
                raise
            if errors is not None:
                errors.append(str(exc))
            if reasons is not None:
                reason = getattr(exc, "reason", "malformed_record")
                reasons[reason] = reasons.get(reason, 0) + 1
            continue
        if source_id not in seen_sources:
            source = Source(source_id, source_id)
            seen_sources[source_id] = source
            corpus.add_source(source)
        corpus.add_snippet(snippet, record["StoryLabel"] or None)
    return corpus
