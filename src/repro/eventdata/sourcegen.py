"""Per-source reporting simulator.

Takes ground events from :mod:`repro.eventdata.worldgen` and produces the
snippets each data source actually reports.  This models the source
characteristics the paper stresses (Section 1): sources report "the same
story with varying content and with varying levels of timeliness" —
coverage bias per domain, publication delay (so snippets arrive
out-of-order, Section 2.4), lossy/noisy annotation, and source-exclusive
*enrichment* snippets (special reports that exist in one source only,
Section 2.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.eventdata.corpus import Corpus
from repro.eventdata.domains import DOMAIN_VOCABULARIES, GENERIC_TERMS
from repro.eventdata.models import DAY, HOUR, Document, Snippet, Source
from repro.eventdata.worldgen import GroundEvent, WorldGenerator


@dataclass
class SourceProfile:
    """Reporting behaviour of one simulated data source.

    ``coverage`` is the base probability of reporting any ground event;
    ``domain_bias`` multiplies it per domain (a sports outlet has
    ``{"sports": 3.0, "economy": 0.2}``).  ``mean_delay`` /``delay_jitter``
    drive a log-ish delay between occurrence and publication.  Noise knobs
    control how faithfully the source's annotations reflect the event.
    """

    source_id: str
    name: str
    kind: str = "newspaper"
    coverage: float = 0.6
    domain_bias: Dict[str, float] = field(default_factory=dict)
    mean_delay: float = 6 * HOUR
    delay_jitter: float = 0.5
    keyword_dropout: float = 0.2
    extra_keyword_rate: float = 0.25
    entity_dropout: float = 0.15
    extra_entity_rate: float = 0.10
    enrichment_rate: float = 0.05
    trust_level: int = 5
    persona: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError(
                f"coverage must be in [0, 1], got {self.coverage}"
            )
        if self.mean_delay < 0:
            raise ConfigurationError("mean_delay must be non-negative")
        if not 0 <= self.trust_level <= 10:
            raise ConfigurationError(
                f"trust_level must be in [0, 10], got {self.trust_level}"
            )

    def report_probability(self, domain: str) -> float:
        """Probability this source reports an event of ``domain``."""
        return min(1.0, self.coverage * self.domain_bias.get(domain, 1.0))

    def to_source(self) -> Source:
        return Source(self.source_id, self.name, self.kind,
                      trust=self.trust_level)


#: Editorial personas per archetype: a flavour string downstream tooling
#: (mock registries, demo UIs) can show, and the style register the
#: renderer may lean on.  Assigned round-robin per archetype so profile
#: generation stays byte-identical for existing seeds (no RNG draws).
PERSONAS: Dict[str, tuple] = {
    "newspaper": ("investigative desk", "paper of record",
                  "metro bureau veteran"),
    "wire": ("terse wire copy", "just-the-facts dispatcher"),
    "blog": ("breathless firsthand", "rumor-friendly aggregator",
             "single-beat obsessive"),
    "magazine": ("long-form explainer", "weekly retrospective"),
    "broadcaster": ("on-air bulletin", "rolling live coverage"),
}

#: Trust ladder per archetype (0–10): how much the aligner should believe
#: a cross-source confirmation from this kind of outlet.
ARCHETYPE_TRUST: Dict[str, int] = {
    "newspaper": 8,
    "wire": 9,
    "blog": 3,
    "magazine": 5,
    "broadcaster": 7,
}


def default_profiles(num_sources: int, seed: int = 13) -> List[SourceProfile]:
    """A deterministic roster of heterogeneous sources.

    Mimics the paper's mix: big national newspapers (high coverage, low
    delay), wire services (very fast), local/niche outlets (biased, slower),
    blogs (noisy, sparse).
    """
    if num_sources <= 0:
        raise ConfigurationError("num_sources must be positive")
    rng = random.Random(seed)
    archetypes = (
        ("newspaper", 0.65, 6 * HOUR, 0.15),
        ("wire", 0.80, 1 * HOUR, 0.10),
        ("blog", 0.25, 18 * HOUR, 0.35),
        ("magazine", 0.35, 2 * DAY, 0.20),
        ("broadcaster", 0.55, 3 * HOUR, 0.15),
    )
    domains = sorted(DOMAIN_VOCABULARIES)
    profiles: List[SourceProfile] = []
    archetype_tally: Dict[str, int] = {}
    for i in range(num_sources):
        kind, coverage, delay, noise = archetypes[i % len(archetypes)]
        nth = archetype_tally.get(kind, 0)
        archetype_tally[kind] = nth + 1
        personas = PERSONAS[kind]
        bias: Dict[str, float] = {}
        # Every source leans toward a couple of domains and away from others.
        favored = rng.sample(domains, 2)
        disfavored = rng.sample([d for d in domains if d not in favored], 2)
        for d in favored:
            bias[d] = rng.uniform(1.4, 2.5)
        for d in disfavored:
            bias[d] = rng.uniform(0.2, 0.7)
        profiles.append(
            SourceProfile(
                source_id=f"s{i:03d}",
                name=f"{kind.title()} {i:03d}",
                kind=kind,
                coverage=coverage * rng.uniform(0.85, 1.15),
                domain_bias=bias,
                mean_delay=delay * rng.uniform(0.6, 1.6),
                delay_jitter=rng.uniform(0.3, 0.8),
                keyword_dropout=noise,
                extra_keyword_rate=noise,
                entity_dropout=noise * 0.6,
                extra_entity_rate=noise * 0.4,
                trust_level=ARCHETYPE_TRUST[kind],
                persona=personas[nth % len(personas)],
            )
        )
    return profiles


class SourceSimulator:
    """Turn ground events into a labelled multi-source :class:`Corpus`."""

    def __init__(
        self,
        profiles: Sequence[SourceProfile],
        seed: int = 99,
        entity_universe: Optional[Dict[str, str]] = None,
    ) -> None:
        if not profiles:
            raise ConfigurationError("at least one source profile is required")
        self.profiles = list(profiles)
        self._rng = random.Random(seed)
        self._universe = entity_universe or {}
        self._snippet_counter = 0

    # -- corpus construction ----------------------------------------------

    def make_corpus(
        self,
        events: Sequence[GroundEvent],
        name: str = "synthetic",
        render_documents: bool = False,
        min_reports_per_event: int = 1,
    ) -> Corpus:
        """Simulate every source's reporting of ``events``.

        With ``min_reports_per_event`` >= 1 each event is guaranteed to be
        reported by at least that many sources (events nobody reports leave
        no digital trace, which matches reality but starves tiny corpora).
        """
        corpus = Corpus(name)
        for profile in self.profiles:
            corpus.add_source(profile.to_source())
        for event in sorted(events, key=lambda e: (e.timestamp, e.event_id)):
            reporters = [
                profile
                for profile in self.profiles
                if self._rng.random() < profile.report_probability(event.domain)
            ]
            deficit = min_reports_per_event - len(reporters)
            if deficit > 0:
                remaining = [p for p in self.profiles if p not in reporters]
                self._rng.shuffle(remaining)
                reporters.extend(remaining[:deficit])
            for profile in reporters:
                snippet = self._report(profile, event)
                if render_documents:
                    document = self._render_document(profile, event, snippet)
                    corpus.add_document(document)
                    snippet = Snippet(
                        snippet_id=snippet.snippet_id,
                        source_id=snippet.source_id,
                        timestamp=snippet.timestamp,
                        published=snippet.published,
                        description=snippet.description,
                        entities=snippet.entities,
                        keywords=snippet.keywords,
                        text=snippet.text,
                        event_type=snippet.event_type,
                        document_id=document.document_id,
                        url=document.url,
                    )
                corpus.add_snippet(snippet, event.story_label)
        return corpus

    # -- single report -------------------------------------------------------

    def _next_snippet_id(self, source_id: str) -> str:
        snippet_id = f"{source_id}:v{self._snippet_counter:06d}"
        self._snippet_counter += 1
        return snippet_id

    def _noisy_keywords(self, profile: SourceProfile, event: GroundEvent) -> List[str]:
        rng = self._rng
        keywords = [
            kw for kw in event.keywords if rng.random() >= profile.keyword_dropout
        ]
        if not keywords:
            keywords = [event.keywords[0]]
        if rng.random() < profile.extra_keyword_rate:
            vocabulary = DOMAIN_VOCABULARIES[event.domain]
            extra = rng.choice(vocabulary)
            if extra not in keywords:
                keywords.append(extra)
        if rng.random() < profile.extra_keyword_rate:
            keywords.append(rng.choice(GENERIC_TERMS))
        return keywords

    def _noisy_entities(self, profile: SourceProfile, event: GroundEvent) -> List[str]:
        rng = self._rng
        entities = [
            code for code in event.entities if rng.random() >= profile.entity_dropout
        ]
        if not entities:
            entities = [event.entities[0]]
        if self._universe and rng.random() < profile.extra_entity_rate:
            extra = rng.choice(sorted(self._universe))
            if extra not in entities:
                entities.append(extra)
        return entities

    def _report(self, profile: SourceProfile, event: GroundEvent) -> Snippet:
        rng = self._rng
        keywords = self._noisy_keywords(profile, event)
        entities = self._noisy_entities(profile, event)
        delay = rng.expovariate(1.0 / profile.mean_delay) if profile.mean_delay else 0.0
        delay *= 1.0 + rng.uniform(-profile.delay_jitter, profile.delay_jitter)
        names = [self._universe.get(code, code) for code in entities]
        description = " ".join(keywords[:3])
        text = (
            f"{', '.join(names)}: {', '.join(keywords)}. "
            f"{event.body if rng.random() < 0.5 else event.headline}."
        )
        return Snippet(
            snippet_id=self._next_snippet_id(profile.source_id),
            source_id=profile.source_id,
            timestamp=event.timestamp,
            published=event.timestamp + max(0.0, delay),
            description=description,
            entities=frozenset(entities),
            keywords=tuple(keywords),
            text=text,
            event_type=event.event_type,
        )

    def _render_document(
        self, profile: SourceProfile, event: GroundEvent, snippet: Snippet
    ) -> Document:
        document_id = f"doc:{snippet.snippet_id}"
        slug = event.headline.lower().replace(" ", "-")[:40]
        return Document(
            document_id=document_id,
            source_id=profile.source_id,
            title=event.headline,
            body=snippet.text,
            published=snippet.published if snippet.published else snippet.timestamp,
            url=f"http://{profile.source_id}.example.com/{slug}.html",
        )


def synthetic_corpus(
    total_events: int = 500,
    num_sources: int = 5,
    seed: int = 42,
    name: str = "synthetic",
    render_documents: bool = False,
    **world_overrides,
) -> Corpus:
    """One-call generator: world + sources → labelled corpus.

    This is the workload generator the Figure 7 benchmarks call with
    varying ``total_events``.
    """
    from repro.eventdata.worldgen import WorldConfig

    config = WorldConfig.for_total_events(total_events, seed=seed, **world_overrides)
    generator = WorldGenerator(config)
    arcs = generator.generate()
    events = generator.events(arcs)
    profiles = default_profiles(num_sources, seed=seed + 1)
    simulator = SourceSimulator(
        profiles, seed=seed + 2, entity_universe=generator.entity_universe
    )
    return simulator.make_corpus(events, name=name, render_documents=render_documents)
