"""The handcrafted MH17 mini-corpus used throughout the paper's figures.

The paper's running example (Figures 1, 3-6) involves two sources — the
New York Times (``s1``) and the Wall Street Journal (``sn``) — reporting on
three concurrent mid-2014 stories:

* the downing of Malaysia Airlines flight MH17 over Ukraine (July 17 through
  the Dutch Safety Board report of September 12),
* a United Nations call for a war-crimes investigation in the Israel/Gaza
  conflict (which shares the entities ``UN`` and the keyword "investigation"
  with MH17 — exactly the confusable pair behind Figure 1's mis-assigned
  ``v4``), and
* a doctors/medicine-shortage story covered by the NYT only (Figure 4's
  ``c3`` — a story that exists in a single source and must survive
  alignment unaligned).

Snippet ids follow the paper's notation: ``s1:v1`` is :math:`v^1_1`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Document, Snippet, Source, parse_timestamp

NYT = "s1"
WSJ = "sn"

#: ground-truth story labels
MH17 = "story_mh17"
SANCTIONS = "story_sanctions"  # the economic thread; separate story per Fig. 1
GAZA = "story_gaza"
DOCTORS = "story_doctors"


def _snippet(
    snippet_id: str,
    source_id: str,
    date: str,
    description: str,
    entities: Tuple[str, ...],
    keywords: Tuple[str, ...],
    text: str,
    event_type: str,
    document_id: str = "",
    url: str = "",
) -> Snippet:
    return Snippet(
        snippet_id=snippet_id,
        source_id=source_id,
        timestamp=parse_timestamp(date),
        description=description,
        entities=frozenset(entities),
        keywords=keywords,
        text=text,
        event_type=event_type,
        document_id=document_id,
        url=url,
    )


def mh17_corpus(with_documents: bool = True) -> Corpus:
    """Build the two-source demo corpus with ground truth labels."""
    corpus = Corpus("mh17-demo")
    corpus.add_source(Source(NYT, "New York Times", "newspaper"))
    corpus.add_source(Source(WSJ, "Wall Street Journal", "newspaper"))

    rows = [
        # --- s1 (New York Times) -----------------------------------------
        (
            "s1:v1", NYT, "2014-07-17",
            "plane crash shot",
            ("UKR", "MAS", "RUS"),
            ("crash", "plane", "shot", "missile"),
            "Jetliner explodes over Ukraine. A Malaysian airplane with 298 "
            "people aboard crashed in territory controlled by pro-Russia "
            "separatists, blown out of the sky by a missile.",
            "Accident", MH17, "http://nytimes.com/doc1.html",
        ),
        (
            "s1:v2", NYT, "2014-07-18",
            "crash investigation",
            ("UN", "UKR"),
            ("crash", "investigation", "aviation"),
            "Officials leading the criminal investigation into the crash "
            "asked the United Nations civil aviation authority for help as "
            "Ukraine pressed for access to the site.",
            "Investigate", MH17, "http://nytimes.com/doc2.html",
        ),
        (
            "s1:v3", NYT, "2014-07-29",
            "sanctions conflict",
            ("USA", "EU", "RUS"),
            ("sanctions", "conflict", "escalation"),
            "The day after the European Union and the United States "
            "announced expanded sanctions against Russia over the conflict, "
            "markets braced for escalation.",
            "Sanction", SANCTIONS, "http://nytimes.com/doc0.html",
        ),
        (
            "s1:v4", NYT, "2014-07-23",
            "investigation war crimes",
            ("ISR", "PAL", "UN"),
            ("investigation", "war", "crimes", "human", "rights"),
            "The United Nations human rights council voted to open an "
            "investigation into possible war crimes in the Gaza conflict, "
            "a call Israel rejected.",
            "Investigate", GAZA, "http://nytimes.com/doc4.html",
        ),
        (
            "s1:v5", NYT, "2014-09-12",
            "report plane shot down",
            ("UKR", "NTH"),
            ("report", "plane", "shot", "investigation", "Amsterdam"),
            "Investigators presented their preliminary report: the plane "
            "that left Amsterdam broke up in the air after being hit by "
            "numerous high-energy objects, evidence of Russian links to the "
            "jet's downing.",
            "Investigate", MH17, "http://nytimes.com/doc5.html",
        ),
        (
            "s1:v6", NYT, "2014-08-05",
            "doctors medical shortage",
            ("UKR", "WHO"),
            ("doctors", "medical", "shortage", "hospital"),
            "Doctors in eastern Ukraine warn of an acute medical shortage "
            "as hospitals run low on supplies amid the fighting.",
            "Aid", DOCTORS, "http://nytimes.com/doc6.html",
        ),
        # --- sn (Wall Street Journal) -------------------------------------
        (
            "sn:v1", WSJ, "2014-07-17",
            "plane crash exploded",
            ("UKR", "MAS", "BOE"),
            ("crash", "plane", "exploded", "missile"),
            "A Malaysia Airlines Boeing 777 with 298 people aboard "
            "exploded, crashed and burned in eastern Ukraine; officials "
            "said a missile strike was the likely cause.",
            "Accident", MH17, "http://online.wsj.com/doc3.html",
        ),
        (
            "sn:v2", WSJ, "2014-07-19",
            "crash investigation site",
            ("UKR", "RUS", "UN"),
            ("crash", "investigation", "site", "access"),
            "Officials leading the criminal investigation into the crash of "
            "Malaysia Airlines Flight 17 said Friday that the plane's "
            "wreckage site remained contested.",
            "Investigate", MH17, "http://online.wsj.com/doc4.html",
        ),
        (
            "sn:v3", WSJ, "2014-07-24",
            "war crimes investigation",
            ("ISR", "PAL", "UN"),
            ("war", "crimes", "investigation", "council"),
            "The U.N. rights council approved an inquiry into alleged war "
            "crimes in Gaza as fighting continued; Israel called the vote "
            "one-sided.",
            "Investigate", GAZA, "http://online.wsj.com/doc5.html",
        ),
        (
            "sn:v4", WSJ, "2014-07-30",
            "sanctions markets conflict",
            ("USA", "EU", "RUS", "GAZ"),
            ("sanctions", "markets", "conflict", "energy"),
            "Expanded U.S. and EU sanctions against Russia over the "
            "Ukraine conflict hit energy and banking shares; Gazprom "
            "warned of supply risks.",
            "Sanction", SANCTIONS, "http://online.wsj.com/doc6.html",
        ),
        (
            "sn:v5", WSJ, "2014-09-12",
            "report plane shot down",
            ("UKR", "NTH", "MAS"),
            ("report", "plane", "shot", "Amsterdam", "investigation"),
            "Dutch investigators' preliminary report found the Amsterdam "
            "flight was pierced by high-energy objects, consistent with "
            "evidence of the jet being shot down over Ukraine.",
            "Investigate", MH17, "http://online.wsj.com/doc1.html",
        ),
        (
            "sn:v6", WSJ, "2014-09-02",
            "search competition lawsuit",
            ("GOOG", "YELP"),
            ("search", "competition", "antitrust", "content"),
            "Google Inc. rival Yelp Inc. says the search giant is promoting "
            "its own content at the expense of users, as Google battles "
            "antitrust scrutiny.",
            "Litigate", "story_google", "http://online.wsj.com/doc2.html",
        ),
    ]

    for (snippet_id, source_id, date, description, entities, keywords, text,
         event_type, label, url) in rows:
        document_id = ""
        if with_documents:
            document_id = f"doc:{snippet_id}"
            corpus.add_document(
                Document(
                    document_id=document_id,
                    source_id=source_id,
                    title=description.title(),
                    body=text,
                    published=parse_timestamp(date),
                    url=url,
                )
            )
        corpus.add_snippet(
            _snippet(
                snippet_id, source_id, date, description, entities, keywords,
                text, event_type, document_id, url,
            ),
            label,
        )
    return corpus


def figure1_identification() -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """The *mistaken* per-source identification state of Figure 1(b).

    In the figure, source ``s1`` wrongly groups :math:`v^1_4` (the Gaza
    investigation snippet) with the MH17 story ``c^1_1``, while source
    ``sn`` keeps the corresponding snippets separate.  Refinement tests use
    this as their starting state and must move ``s1:v4`` out (Figure 1(d)).
    """
    return {
        NYT: {
            "c1_1": ("s1:v1", "s1:v2", "s1:v4", "s1:v5"),
            "c1_2": ("s1:v3",),
        },
        WSJ: {
            "cn_1": ("sn:v1", "sn:v2", "sn:v5"),
            "cn_2": ("sn:v4",),
            "cn_3": ("sn:v3",),
        },
    }


def demo_config():
    """The configuration the demo session uses for this mini-corpus.

    The handcrafted corpus is tiny and hand-labelled; a slightly lower
    match threshold than the synthetic-scale default groups the
    consecutive crash snippets within each source the way Figure 5 draws
    them, while alignment still produces exactly the integrated stories of
    Figure 4.
    """
    from repro.core.config import StoryPivotConfig

    return StoryPivotConfig.temporal(match_threshold=0.34, merge_threshold=0.62)
