"""Corpus containers and ground truth.

A :class:`Corpus` bundles sources, documents and snippets; a
:class:`GroundTruth` maps every snippet to the real-world story it belongs
to.  Ground truth is *global* (cross-source): the per-source restriction used
to evaluate story identification is derived from it, while the global view
evaluates story alignment.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set

from repro.errors import DataFormatError, DuplicateSnippetError, UnknownSourceError
from repro.eventdata.models import Document, Snippet, Source


@dataclass
class GroundTruth:
    """Mapping from snippet id to the true (global) story label."""

    labels: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, snippet_id: str) -> bool:
        return snippet_id in self.labels

    def label(self, snippet_id: str) -> str:
        """True story label of ``snippet_id`` (KeyError if unlabeled)."""
        return self.labels[snippet_id]

    def set(self, snippet_id: str, story_label: str) -> None:
        self.labels[snippet_id] = story_label

    def story_labels(self) -> Set[str]:
        """The set of distinct true stories."""
        return set(self.labels.values())

    def clusters(self) -> Dict[str, Set[str]]:
        """Invert the mapping: story label -> set of snippet ids."""
        clusters: Dict[str, Set[str]] = defaultdict(set)
        for snippet_id, story in self.labels.items():
            clusters[story].add(snippet_id)
        return dict(clusters)

    def restrict(self, snippet_ids: Iterable[str]) -> "GroundTruth":
        """Ground truth restricted to the given snippet ids.

        Used to derive the per-source truth that story identification is
        scored against.
        """
        wanted = set(snippet_ids)
        return GroundTruth(
            {sid: label for sid, label in self.labels.items() if sid in wanted}
        )


class Corpus:
    """An in-memory event dataset: sources, documents and snippets.

    Snippets are kept in insertion order; :meth:`snippets_by_time` and
    :meth:`by_source` provide the orderings the algorithms need.  The corpus
    enforces referential integrity: a snippet's source must be registered
    before the snippet is added.
    """

    def __init__(self, name: str = "corpus") -> None:
        self.name = name
        self._sources: Dict[str, Source] = {}
        self._documents: Dict[str, Document] = {}
        self._snippets: Dict[str, Snippet] = {}
        self._order: List[str] = []
        self.truth = GroundTruth()

    # -- construction ------------------------------------------------------

    def add_source(self, source: Source) -> None:
        """Register a data source (idempotent for identical re-adds)."""
        existing = self._sources.get(source.source_id)
        if existing is not None and existing != source:
            raise DataFormatError(
                f"source {source.source_id!r} already registered with "
                f"different attributes"
            )
        self._sources[source.source_id] = source

    def add_document(self, document: Document) -> None:
        if document.source_id not in self._sources:
            raise UnknownSourceError(document.source_id)
        self._documents[document.document_id] = document

    def add_snippet(self, snippet: Snippet, story_label: Optional[str] = None) -> None:
        """Add a snippet, optionally recording its ground-truth story."""
        if snippet.source_id not in self._sources:
            raise UnknownSourceError(snippet.source_id)
        if snippet.snippet_id in self._snippets:
            raise DuplicateSnippetError(snippet.snippet_id)
        self._snippets[snippet.snippet_id] = snippet
        self._order.append(snippet.snippet_id)
        if story_label is not None:
            self.truth.set(snippet.snippet_id, story_label)

    def remove_snippet(self, snippet_id: str) -> Snippet:
        """Remove and return a snippet (KeyError if absent)."""
        snippet = self._snippets.pop(snippet_id)
        self._order.remove(snippet_id)
        self.truth.labels.pop(snippet_id, None)
        return snippet

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._snippets)

    def __contains__(self, snippet_id: str) -> bool:
        return snippet_id in self._snippets

    def __iter__(self) -> Iterator[Snippet]:
        for snippet_id in self._order:
            yield self._snippets[snippet_id]

    @property
    def sources(self) -> Mapping[str, Source]:
        return dict(self._sources)

    @property
    def documents(self) -> Mapping[str, Document]:
        return dict(self._documents)

    def snippet(self, snippet_id: str) -> Snippet:
        return self._snippets[snippet_id]

    def snippets(self) -> List[Snippet]:
        """All snippets in insertion order."""
        return [self._snippets[sid] for sid in self._order]

    def snippets_by_time(self) -> List[Snippet]:
        """All snippets ordered by occurrence timestamp (stable)."""
        return sorted(self.snippets(), key=lambda s: (s.timestamp, s.snippet_id))

    def snippets_by_publication(self) -> List[Snippet]:
        """All snippets in the order sources published them (Section 2.4)."""
        return sorted(self.snippets(), key=lambda s: (s.published, s.snippet_id))

    def by_source(self, source_id: str) -> List[Snippet]:
        """Snippets of one source, ordered by occurrence time."""
        if source_id not in self._sources:
            raise UnknownSourceError(source_id)
        return sorted(
            (s for s in self.snippets() if s.source_id == source_id),
            key=lambda s: (s.timestamp, s.snippet_id),
        )

    def source_partition(self) -> Dict[str, List[Snippet]]:
        """Partition ``V`` into the per-source subsets ``V_i`` (Section 2.1)."""
        partition: Dict[str, List[Snippet]] = {sid: [] for sid in self._sources}
        for snippet in self.snippets_by_time():
            partition[snippet.source_id].append(snippet)
        return partition

    def entities(self) -> Set[str]:
        """All distinct entities mentioned across the corpus."""
        found: Set[str] = set()
        for snippet in self._snippets.values():
            found |= snippet.entities
        return found

    def time_span(self) -> "tuple[float, float]":
        """(min, max) occurrence timestamp; raises on an empty corpus."""
        if not self._snippets:
            raise DataFormatError("corpus has no snippets")
        timestamps = [s.timestamp for s in self._snippets.values()]
        return min(timestamps), max(timestamps)

    def filter(
        self,
        entity: Optional[str] = None,
        source_id: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        keyword: Optional[str] = None,
        name: Optional[str] = None,
    ) -> "Corpus":
        """A sub-corpus of snippets matching every given criterion.

        ``keyword`` matches stemmed description/keyword terms (so
        "investigations" finds "investigation").  Timestamps are inclusive.
        """
        from repro.storage.event_store import match_terms
        from repro.text.stem import stem as stem_word

        stem = stem_word(keyword.lower()) if keyword else None
        selected = []
        for snippet in self.snippets():
            if entity is not None and entity not in snippet.entities:
                continue
            if source_id is not None and snippet.source_id != source_id:
                continue
            if start is not None and snippet.timestamp < start:
                continue
            if end is not None and snippet.timestamp > end:
                continue
            if stem is not None and stem not in match_terms(snippet):
                continue
            selected.append(snippet.snippet_id)
        return self.subset(selected, name or f"{self.name}:filtered")

    def subset(self, snippet_ids: Iterable[str], name: Optional[str] = None) -> "Corpus":
        """A new corpus containing only the given snippets (plus all sources)."""
        wanted = set(snippet_ids)
        sub = Corpus(name or f"{self.name}:subset")
        for source in self._sources.values():
            sub.add_source(source)
        for document in self._documents.values():
            sub.add_document(document)
        for snippet_id in self._order:
            if snippet_id in wanted:
                sub.add_snippet(
                    self._snippets[snippet_id],
                    self.truth.labels.get(snippet_id),
                )
        return sub

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the full corpus to JSON-lines text."""
        lines = [json.dumps({"kind": "corpus", "name": self.name})]
        for source in self._sources.values():
            lines.append(
                json.dumps(
                    {
                        "kind": "source",
                        "source_id": source.source_id,
                        "name": source.name,
                        "type": source.kind,
                        "trust": source.trust,
                    }
                )
            )
        for document in self._documents.values():
            lines.append(
                json.dumps(
                    {
                        "kind": "document",
                        "document_id": document.document_id,
                        "source_id": document.source_id,
                        "title": document.title,
                        "body": document.body,
                        "published": document.published,
                        "url": document.url,
                    }
                )
            )
        for snippet in self.snippets():
            record = {
                "kind": "snippet",
                "snippet_id": snippet.snippet_id,
                "source_id": snippet.source_id,
                "timestamp": snippet.timestamp,
                "published": snippet.published,
                "description": snippet.description,
                "entities": sorted(snippet.entities),
                "keywords": list(snippet.keywords),
                "text": snippet.text,
                "event_type": snippet.event_type,
                "document_id": snippet.document_id,
                "url": snippet.url,
            }
            label = self.truth.labels.get(snippet.snippet_id)
            if label is not None:
                record["story"] = label
            lines.append(json.dumps(record))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Corpus":
        """Deserialize a corpus written by :meth:`to_jsonl`."""
        corpus = cls()
        for line_no, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataFormatError(f"line {line_no}: invalid JSON") from exc
            kind = record.get("kind")
            if kind == "corpus":
                corpus.name = record.get("name", corpus.name)
            elif kind == "source":
                corpus.add_source(
                    Source(
                        source_id=record["source_id"],
                        name=record["name"],
                        kind=record.get("type", "newspaper"),
                        trust=int(record.get("trust", 5)),
                    )
                )
            elif kind == "document":
                corpus.add_document(
                    Document(
                        document_id=record["document_id"],
                        source_id=record["source_id"],
                        title=record["title"],
                        body=record["body"],
                        published=record["published"],
                        url=record.get("url", ""),
                    )
                )
            elif kind == "snippet":
                corpus.add_snippet(
                    Snippet(
                        snippet_id=record["snippet_id"],
                        source_id=record["source_id"],
                        timestamp=record["timestamp"],
                        published=record.get("published"),
                        description=record["description"],
                        entities=frozenset(record.get("entities", [])),
                        keywords=tuple(record.get("keywords", [])),
                        text=record.get("text", ""),
                        event_type=record.get("event_type", "unknown"),
                        document_id=record.get("document_id", ""),
                        url=record.get("url", ""),
                    ),
                    record.get("story"),
                )
            else:
                raise DataFormatError(f"line {line_no}: unknown record kind {kind!r}")
        return corpus
