"""Project-specific AST lint rules for the StoryPivot codebase.

Rules are small classes registered in :data:`REGISTRY` by code.  Codes
are grouped by concern:

* ``SP1xx`` — correctness / determinism (the incremental-identification
  and alignment guarantees the paper's evaluation rests on),
* ``SP2xx`` — concurrency (15 modules hold locks; the rules encode the
  discipline the runtime was reviewed against),
* ``SP3xx`` — observability (span/deadline scoping, canonical metric
  names, so ``/tracez`` and ``/metricz`` stay trustworthy).

Each rule receives a parsed :class:`ModuleInfo` (see ``engine.py``) and
yields :class:`~repro.analysis.findings.Finding` objects.  Suppression
(``# sp-lint: disable=SP201 -- reason``) and path scoping are handled by
the engine, not here.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

#: directories whose modules form the deterministic core of the
#: reproduction: identification, alignment, and everything feeding them.
#: SP101/SP102 apply only inside these (wall clocks and fresh RNGs are
#: legitimate in observability/serving code).
CORE_MARKERS = (
    "core",
    "text",
    "sketch",
    "storage",
    "query",
    "evaluation",
    "extraction",
    "eventdata",
)

_LOCKISH = re.compile(r"lock|mutex|cond", re.IGNORECASE)

#: canonical metric name: lowercase dotted base, optional {k=v,...} suffix
_METRIC_NAME = re.compile(
    r"^[a-z][a-z0-9_.]*[a-z0-9](\{[a-z_][a-z0-9_]*=[^,{}]+(,[a-z_][a-z0-9_]*=[^,{}]+)*\})?$"
)

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "seed", "triangular", "vonmisesvariate",
}

_RECORDING_CALLS = {
    # span / DLQ / metrics / logging sinks that count as "the error was
    # recorded somewhere an operator can see it"
    "record_error", "record_failure", "add_event", "append", "inc",
    "put", "warning", "error", "exception", "critical", "log", "debug",
    "info",
}


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name for Name/Attribute chains (``self.tracer.span`` → str)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(expr: ast.AST) -> bool:
    name = _terminal_name(expr)
    return bool(name and _LOCKISH.search(name))


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class Rule:
    """Base class: subclasses set ``code``/``summary`` and yield findings."""

    code = "SP000"
    summary = ""
    core_only = False  # when True the engine skips non-core modules
    project_only = False  # when True `check` is empty; `check_project` runs

    def check(self, module) -> Iterator[Finding]:
        if self.project_only:
            return iter(())
        raise NotImplementedError  # pragma: no cover

    def check_project(self, project) -> Iterator[Finding]:
        """Interprocedural leg: runs once per lint invocation with the
        whole-project call graph.  Default: nothing."""
        return iter(())

    def finding(self, module, node: ast.AST, message: str, **detail) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            detail=detail,
        )


# ---------------------------------------------------------------------------
# SP1xx — correctness / determinism
# ---------------------------------------------------------------------------


class WallClockInCore(Rule):
    code = "SP101"
    summary = (
        "wall-clock read (time.time()/datetime.now()) in a deterministic "
        "core path; inject a clock callable instead"
    )
    core_only = True

    def check(self, module) -> Iterator[Finding]:
        for node in module.nodes():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = _terminal_name(func.value)
            if (owner, func.attr) in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"core path reads the wall clock via "
                    f"{owner}.{func.attr}(); pass an injected clock so "
                    f"identification/alignment stay replayable",
                )


class UnseededRandomInCore(Rule):
    code = "SP102"
    summary = (
        "global random-module call or unseeded random.Random() in a core "
        "path; use an injected, seeded RNG"
    )
    core_only = True

    def check(self, module) -> Iterator[Finding]:
        for node in module.nodes():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if _terminal_name(func.value) != "random":
                continue
            if func.attr == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed makes a core path "
                    "nondeterministic; construct it from an injected seed",
                )
            elif func.attr in _GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    module, node,
                    f"random.{func.attr}() uses the process-global RNG; "
                    f"core paths must draw from an injected "
                    f"random.Random(seed)",
                )


class BareExcept(Rule):
    code = "SP103"
    summary = "bare `except:` swallows SystemExit/KeyboardInterrupt"

    def check(self, module) -> Iterator[Finding]:
        for node in module.nodes():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` catches SystemExit and "
                    "KeyboardInterrupt; name the exception types",
                )


def _handler_catches_broad(handler: ast.ExceptHandler) -> bool:
    types: List[ast.AST] = []
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    elif handler.type is not None:
        types = [handler.type]
    for node in types:
        if _terminal_name(node) in ("Exception", "BaseException"):
            return True
    return False


class SwallowedException(Rule):
    code = "SP104"
    summary = (
        "`except Exception` that neither re-raises, records the error "
        "(span/DLQ/log/metric), nor inspects the exception"
    )

    def check(self, module) -> Iterator[Finding]:
        for node in module.nodes():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_catches_broad(node):
                continue
            if self._handles_error(node):
                continue
            yield self.finding(
                module, node,
                "overbroad except swallows the error silently; re-raise, "
                "record it on the active span, route it to the DLQ, or "
                "log it",
            )

    @staticmethod
    def _handles_error(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name in _RECORDING_CALLS:
                    return True
        return False


# ---------------------------------------------------------------------------
# SP2xx — concurrency
# ---------------------------------------------------------------------------


class _LockScopeVisitor(ast.NodeVisitor):
    """Tracks the stack of lockish `with` blocks while visiting a body."""

    def __init__(self) -> None:
        self.lock_stack: List[str] = []

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            # context expressions evaluate under whatever locks are
            # already held (with A: with open(...) runs open under A)
            self.visit(expr)
            target = expr.func if isinstance(expr, ast.Call) else expr
            if _is_lockish(target):
                name = _attr_chain(target) or _terminal_name(target) or "?"
                self.lock_stack.append(name)
                pushed += 1
        for child in node.body:
            self.visit(child)
        for _ in range(pushed):
            self.lock_stack.pop()

    # do not descend into nested defs: their bodies run later, not under
    # this lock
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class BlockingUnderLock(Rule):
    code = "SP201"
    summary = (
        "blocking call (time.sleep / open / Thread.join / Future.result) "
        "while holding a lock"
    )

    def check(self, module) -> Iterator[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(_LockScopeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if self.lock_stack:
                    label = rule._blocking_label(node)
                    if label is not None:
                        findings.append(rule.finding(
                            module, node,
                            f"{label} while holding "
                            f"{self.lock_stack[-1]!r}; blocking under a "
                            f"lock stalls every contending thread",
                            lock=self.lock_stack[-1],
                        ))
                self.generic_visit(node)

        for func in module.nodes():
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visitor = Visitor()
                for stmt in func.body:
                    visitor.visit(stmt)
        return iter(findings)

    @staticmethod
    def _blocking_label(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open()"
        if not isinstance(func, ast.Attribute):
            return None
        owner = _terminal_name(func.value)
        if owner == "time" and func.attr == "sleep":
            return "time.sleep()"
        if owner in ("subprocess",) or owner == "socket":
            return f"{owner}.{func.attr}()"
        if owner == "os" and func.attr in ("fsync", "system"):
            return f"os.{func.attr}()"
        if func.attr == "join":
            # str.join always takes exactly one positional iterable;
            # Thread/queue joins take nothing or a timeout
            if not node.args or any(k.arg == "timeout" for k in node.keywords):
                return ".join()"
            return None
        if func.attr == "result":
            return ".result()"
        return None

    def check_project(self, project) -> Iterator[Finding]:
        # interprocedural leg: a *clean-looking* call under a lock that
        # resolves to a project function whose may-block set is non-empty
        from repro.analysis.contracts import contract_findings

        for finding in contract_findings(project):
            if finding.code == self.code:
                yield finding


class MutationOutsideLock(Rule):
    code = "SP202"
    summary = (
        "attribute guarded by a lock elsewhere in the class is mutated "
        "outside any `with <lock>` block"
    )

    _SETUP_METHODS = {"__init__", "__new__", "__post_init__", "__enter__"}

    def check(self, module) -> Iterator[Finding]:
        for node in module.nodes():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module, cls: ast.ClassDef) -> Iterator[Finding]:
        #: attr -> set of lock names it was mutated under
        ownership: Dict[str, Set[str]] = {}
        #: (method, node, attr) mutated with no lock held
        unguarded: List[Tuple[str, ast.AST, str]] = []
        rule = self

        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.endswith("_locked"):
                # convention: a ``*_locked`` method documents that its
                # caller already holds the owning lock
                continue

            class Visitor(_LockScopeVisitor):
                def _record(self, target: ast.AST, node: ast.AST) -> None:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            self._record(element, node)
                        return
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return
                    attr = target.attr
                    if _LOCKISH.search(attr):
                        return  # swapping the lock itself is setup, not state
                    if self.lock_stack:
                        ownership.setdefault(attr, set()).add(
                            self.lock_stack[-1]
                        )
                    elif method.name not in rule._SETUP_METHODS:
                        unguarded.append((method.name, node, attr))

                def visit_Assign(self, node: ast.Assign) -> None:
                    for target in node.targets:
                        self._record(target, node)
                    self.generic_visit(node)

                def visit_AugAssign(self, node: ast.AugAssign) -> None:
                    self._record(node.target, node)
                    self.generic_visit(node)

            visitor = Visitor()
            for stmt in method.body:
                visitor.visit(stmt)

        for method_name, node, attr in unguarded:
            if attr not in ownership:
                continue
            locks = "/".join(sorted(ownership[attr]))
            yield self.finding(
                module, node,
                f"self.{attr} is mutated under {locks!r} elsewhere in "
                f"{cls.name} but written here ({method_name}) without the "
                f"lock",
                attribute=attr, owner=locks, method=method_name,
            )


# ---------------------------------------------------------------------------
# SP3xx — observability
# ---------------------------------------------------------------------------


class ScopeNotContextManaged(Rule):
    code = "SP301"
    summary = (
        "tracer.span(...) / deadline_scope(...) result not used as a "
        "context manager"
    )

    _TRACERISH = re.compile(r"tracer", re.IGNORECASE)

    def check(self, module) -> Iterator[Finding]:
        with_exprs = set()
        for node in module.nodes():
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
        for node in module.nodes():
            if not isinstance(node, ast.Call) or id(node) in with_exprs:
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "deadline_scope":
                yield self.finding(
                    module, node,
                    "deadline_scope(...) must be entered with `with`; an "
                    "unentered scope never applies or restores the budget",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "span"
                and (owner := _terminal_name(func.value)) is not None
                and self._TRACERISH.search(owner)
            ):
                yield self.finding(
                    module, node,
                    "tracer.span(...) outside a `with` leaks an unended "
                    "span unless every exit path calls .end(); use the "
                    "context manager (annotate legitimate cross-thread "
                    "hand-offs)",
                )


class NonCanonicalMetricName(Rule):
    code = "SP302"
    summary = (
        "metric name literal is not canonical `name{label=value}` form "
        "(lowercase dotted base; labels via kwargs)"
    )

    _METRIC_METHODS = {"counter", "gauge", "histogram", "timer"}
    _REGISTRYISH = re.compile(r"metrics|registry", re.IGNORECASE)

    def check(self, module) -> Iterator[Finding]:
        for node in module.nodes():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in self._METRIC_METHODS
            ):
                continue
            owner = _terminal_name(func.value)
            if owner is None or not self._REGISTRYISH.search(owner):
                continue
            if not node.args:
                continue
            name = _const_str(node.args[0])
            if name is None:
                continue
            if not _METRIC_NAME.match(name):
                yield self.finding(
                    module, node,
                    f"metric name {name!r} is not canonical: use "
                    f"lowercase dotted names and pass labels as keyword "
                    f"arguments (stored as name{{label=value}})",
                    metric=name,
                )


# ---------------------------------------------------------------------------
# SP4xx — interprocedural taint (see dataflow.py for the engine)
# ---------------------------------------------------------------------------


class _TaintRule(Rule):
    """Shared plumbing: the taint fixpoint runs once per project and is
    cached on it; each code filters its own findings out."""

    project_only = True

    def check_project(self, project) -> Iterator[Finding]:
        from repro.analysis.dataflow import taint_findings

        for finding in taint_findings(project):
            if finding.code == self.code:
                yield finding


class TaintedFilePath(_TaintRule):
    code = "SP401"
    summary = (
        "untrusted value (connector record / HTTP input / federation "
        "envelope) used as a filesystem path without sanitization"
    )


class TaintedMetricName(_TaintRule):
    code = "SP402"
    summary = (
        "untrusted value reaches a metric/label name without passing "
        "_prom_escape/_prom_name"
    )


class TaintedResponseWrite(_TaintRule):
    code = "SP403"
    summary = (
        "untrusted value written raw to an HTTP/socket response without "
        "escaping or encoding"
    )


class TaintedWalAppend(_TaintRule):
    code = "SP404"
    summary = (
        "untrusted record reaches a WAL append / persisted state without "
        "passing the Normalizer gauntlet"
    )


class TaintedExec(_TaintRule):
    code = "SP405"
    summary = "untrusted value reaches eval/exec/subprocess/os.system"


# ---------------------------------------------------------------------------
# SP5xx — exception/blocking contracts (see contracts.py for the engine)
# ---------------------------------------------------------------------------


class _ContractRule(Rule):
    project_only = True

    def check_project(self, project) -> Iterator[Finding]:
        from repro.analysis.contracts import contract_findings

        for finding in contract_findings(project):
            if finding.code == self.code:
                yield finding


class NeverRaisesViolation(_ContractRule):
    code = "SP501"
    summary = (
        "function annotated `# sp-contract: never-raises` may raise "
        "(witness chain in detail)"
    )


class NeverBlocksViolation(_ContractRule):
    code = "SP502"
    summary = (
        "function annotated `# sp-contract: never-blocks` may block "
        "(witness chain in detail)"
    )


class UnknownContractAnnotation(_ContractRule):
    code = "SP503"
    summary = "unknown sp-contract / sp-taint annotation value"


# ---------------------------------------------------------------------------
# SP6xx — resource lifecycle (CFG-based, see contracts.py)
# ---------------------------------------------------------------------------


class LockNotReleased(_ContractRule):
    code = "SP601"
    summary = (
        "lock .acquire() with a path to the function exit that never "
        ".release()s it"
    )


class HandleNotClosed(_ContractRule):
    code = "SP602"
    summary = (
        "file/socket closed on some paths but leaked on others (partial "
        "close; escaping handles are exempt)"
    )


class ThreadNotJoined(_ContractRule):
    code = "SP603"
    summary = (
        "thread joined on some paths but not on others (partial join; "
        "fire-and-forget daemons are exempt)"
    )


REGISTRY: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        WallClockInCore(),
        UnseededRandomInCore(),
        BareExcept(),
        SwallowedException(),
        BlockingUnderLock(),
        MutationOutsideLock(),
        ScopeNotContextManaged(),
        NonCanonicalMetricName(),
        TaintedFilePath(),
        TaintedMetricName(),
        TaintedResponseWrite(),
        TaintedWalAppend(),
        TaintedExec(),
        NeverRaisesViolation(),
        NeverBlocksViolation(),
        UnknownContractAnnotation(),
        LockNotReleased(),
        HandleNotClosed(),
        ThreadNotJoined(),
    )
}


def all_rules() -> List[Rule]:
    return [REGISTRY[code] for code in sorted(REGISTRY)]
