"""Per-function control-flow graph with may-reach path queries.

A deliberately small CFG: one node per *statement*, edges for the
normal control flow of ``if``/``while``/``for``/``try``/``with``/
``break``/``continue``/``return``/``raise``.  That is enough for the
resource-lifecycle pass (SP6xx), whose question is path-shaped: "is
there a path from this acquire to a function exit that never passes a
release?"

Exceptional control flow is modeled coarsely: every statement inside a
``try`` body gets an edge to each handler and to the ``finally`` suite,
and a ``raise`` jumps to the enclosing handler/finally (or exits).  We
do **not** pretend every expression can raise — that would make every
resource "leaked on some path" and the pass useless; DESIGN.md records
the trade-off.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Set


class Node:
    """One statement in the CFG."""

    __slots__ = ("index", "stmt", "succ", "is_exit")

    def __init__(self, index: int, stmt: Optional[ast.stmt]) -> None:
        self.index = index
        self.stmt = stmt
        self.succ: List[int] = []
        self.is_exit = stmt is None


class CFG:
    """Statement-level graph for one function body."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.exit = self._new(None)  # node 0: the single exit
        self.entry: Optional[int] = None

    def _new(self, stmt: Optional[ast.stmt]) -> int:
        node = Node(len(self.nodes), stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)

    def statement_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.stmt is not None]

    def exists_path_avoiding(
        self, start: int,
        avoid: Callable[[ast.stmt], bool],
        skip_start: bool = True,
    ) -> bool:
        """True if the exit is reachable from ``start`` without passing
        a statement matching ``avoid`` (the start node itself is skipped
        by default: the acquire statement is not its own release)."""
        stack = [start]
        seen: Set[int] = set()
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            node = self.nodes[index]
            if node.is_exit:
                return True
            if node.stmt is not None and avoid(node.stmt):
                if not (skip_start and index == start):
                    continue
            stack.extend(node.succ)
        return False

    def reaches(self, start: int, pred: Callable[[ast.stmt], bool]) -> bool:
        """True if any statement matching ``pred`` is reachable from
        ``start`` (exclusive)."""
        stack = list(self.nodes[start].succ)
        seen: Set[int] = set()
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            node = self.nodes[index]
            if node.stmt is not None and pred(node.stmt):
                return True
            stack.extend(node.succ)
        return False


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: statement node index by id(stmt) for rule lookups
        self.index_of: Dict[int, int] = {}
        self._break_targets: List[List[int]] = []
        self._continue_targets: List[List[int]] = []
        #: stack of "where does an exception go" node lists (handler
        #: entries / finally heads); empty = function exit
        self._except_targets: List[List[int]] = []
        #: one pending-return list per enclosing try-with-finally: a
        #: ``return`` must run the suite before the function exits, so
        #: its node is parked here and wired into the suite's frontier
        self._finally_returns: List[List[int]] = []

    # Each _stmts/_stmt call threads a frontier: the set of node indices
    # whose control falls through to whatever comes next.

    def build(self, func: ast.AST) -> CFG:
        body = list(getattr(func, "body", []))
        frontier = self._stmts(body, [])
        for index in frontier:
            self.cfg._edge(index, self.cfg.exit)
        if self.cfg.entry is None:
            self.cfg.entry = self.cfg.exit
        return self.cfg

    def _stmts(self, body: List[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _note(self, stmt: ast.stmt, frontier: List[int]) -> int:
        index = self.cfg._new(stmt)
        self.index_of[id(stmt)] = index
        for prev in frontier:
            self.cfg._edge(prev, index)
        if self.cfg.entry is None:
            self.cfg.entry = index
        # a statement inside a try may transfer to the handler/finally
        if self._except_targets:
            for target in self._except_targets[-1]:
                self.cfg._edge(index, target)
        return index

    def _stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, (ast.Return, ast.Raise)):
            index = self._note(stmt, frontier)
            if isinstance(stmt, ast.Raise) and self._except_targets:
                pass  # _note already wired the handler edges
            elif self._finally_returns:
                self._finally_returns[-1].append(index)
            else:
                cfg._edge(index, cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            index = self._note(stmt, frontier)
            if self._break_targets:
                self._break_targets[-1].append(index)
            return []
        if isinstance(stmt, ast.Continue):
            index = self._note(stmt, frontier)
            if self._continue_targets:
                self._continue_targets[-1].append(index)
            return []
        if isinstance(stmt, ast.If):
            index = self._note(stmt, frontier)
            then_out = self._stmts(stmt.body, [index])
            else_out = self._stmts(stmt.orelse, [index]) if stmt.orelse \
                else [index]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            index = self._note(stmt, frontier)
            breaks: List[int] = []
            continues: List[int] = []
            self._break_targets.append(breaks)
            self._continue_targets.append(continues)
            body_out = self._stmts(stmt.body, [index])
            self._break_targets.pop()
            self._continue_targets.pop()
            for back in body_out + continues:
                cfg._edge(back, index)
            else_out = self._stmts(stmt.orelse, [index]) if stmt.orelse \
                else [index]
            return else_out + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            index = self._note(stmt, frontier)
            return self._stmts(stmt.body, [index])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        # plain statement (nested defs are opaque single nodes: their
        # bodies run later, under a different CFG)
        index = self._note(stmt, frontier)
        return [index]

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        cfg = self.cfg
        handler_heads: List[int] = []
        handler_entries: List[ast.ExceptHandler] = list(stmt.handlers)
        # pre-create one anchor node per handler so body statements can
        # point at them before their bodies are built
        anchors = []
        for handler in handler_entries:
            anchor = cfg._new(handler)  # the `except X:` line itself
            self.index_of[id(handler)] = anchor
            anchors.append(anchor)
            handler_heads.append(anchor)
        finally_present = bool(stmt.finalbody)
        if finally_present:
            self._finally_returns.append([])
        self._except_targets.append(handler_heads or [])
        body_out = self._stmts(stmt.body, frontier)
        self._except_targets.pop()
        else_out = self._stmts(stmt.orelse, body_out) if stmt.orelse \
            else body_out
        handler_out: List[int] = []
        for handler, anchor in zip(handler_entries, anchors):
            handler_out.extend(self._stmts(handler.body, [anchor]))
        merged = else_out + handler_out
        if finally_present:
            # returns parked inside this try run the suite first; they
            # join the normal frontier entering the finally statements
            pending = self._finally_returns.pop()
            merged = self._stmts(stmt.finalbody, merged + pending)
            if pending:
                # after the suite, the return paths really exit — via
                # the next enclosing finally if there is one
                for index in merged:
                    if self._finally_returns:
                        self._finally_returns[-1].append(index)
                    else:
                        cfg._edge(index, cfg.exit)
            # exceptional entry into finally: a handler-less escape
            # still runs the suite, then exits
            for index in merged:
                if not handler_entries:
                    cfg._edge(index, cfg.exit)
        return merged


def build_cfg(func: ast.AST) -> "tuple[CFG, Dict[int, int]]":
    """CFG + ``id(stmt) -> node index`` map for one function node."""
    builder = _Builder()
    cfg = builder.build(func)
    return cfg, builder.index_of
