"""`repro.analysis`: project-aware static analysis + dynamic race detection.

Two complementary halves:

* :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` — the
  ``storypivot-lint`` AST engine enforcing the invariants PRs 1–4
  established (deterministic core paths, no blocking under locks,
  errors recorded not swallowed, spans/deadlines context-managed,
  canonical metric names).
* :mod:`repro.analysis.lockwatch` — an opt-in dynamic detector that
  wraps the runtime's locks, records the per-thread acquisition graph,
  and reports lock-order inversions (potential deadlocks), long holds,
  and blocking calls made while locked.  Exposed as the pytest
  ``--lockwatch`` flag and ``storypivot-serve --lockwatch``.
"""

from repro.analysis.callgraph import Project
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.engine import LintConfig, LintEngine, iter_python_files
from repro.analysis.findings import (
    Finding,
    apply_baseline,
    load_baseline,
    render_report,
    summarize,
    to_sarif,
    write_baseline,
)
from repro.analysis.lockwatch import InstrumentedLock, LockWatch
from repro.analysis.rules import CORE_MARKERS, REGISTRY, all_rules

__all__ = [
    "LintConfig",
    "LintEngine",
    "iter_python_files",
    "Project",
    "CFG",
    "build_cfg",
    "Finding",
    "apply_baseline",
    "load_baseline",
    "render_report",
    "summarize",
    "to_sarif",
    "write_baseline",
    "InstrumentedLock",
    "LockWatch",
    "CORE_MARKERS",
    "REGISTRY",
    "all_rules",
]
