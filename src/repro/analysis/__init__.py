"""`repro.analysis`: project-aware static analysis + dynamic race detection.

Two complementary halves:

* :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` — the
  ``storypivot-lint`` AST engine enforcing the invariants PRs 1–4
  established (deterministic core paths, no blocking under locks,
  errors recorded not swallowed, spans/deadlines context-managed,
  canonical metric names).
* :mod:`repro.analysis.lockwatch` — an opt-in dynamic detector that
  wraps the runtime's locks, records the per-thread acquisition graph,
  and reports lock-order inversions (potential deadlocks), long holds,
  and blocking calls made while locked.  Exposed as the pytest
  ``--lockwatch`` flag and ``storypivot-serve --lockwatch``.
"""

from repro.analysis.engine import LintConfig, LintEngine, iter_python_files
from repro.analysis.findings import Finding, render_report, summarize
from repro.analysis.lockwatch import InstrumentedLock, LockWatch
from repro.analysis.rules import CORE_MARKERS, REGISTRY, all_rules

__all__ = [
    "LintConfig",
    "LintEngine",
    "iter_python_files",
    "Finding",
    "render_report",
    "summarize",
    "InstrumentedLock",
    "LockWatch",
    "CORE_MARKERS",
    "REGISTRY",
    "all_rules",
]
