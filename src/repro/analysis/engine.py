"""The lint engine: file walking, suppression, scoping, and reporting.

The engine owns everything that is *not* a rule: discovering Python
files, parsing them once into a :class:`ModuleInfo`, deciding which
rules apply where (determinism rules only run inside core paths),
honouring ``# sp-lint: disable=...`` comments, and shaping output.

Suppression syntax (reason after ``--`` is encouraged, never parsed)::

    x = time.time()  # sp-lint: disable=SP101 -- wall clock is the payload
    # sp-lint: disable=SP201 -- file append is serialized by design
    handle = open(path)
    # sp-lint: disable-file=SP202 -- module predates ownership tracking

A directive suppresses matching findings on its own line or the line
directly below it; ``disable-file`` suppresses for the whole module.
``disable=all`` works in both forms.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import CORE_MARKERS, REGISTRY, Rule, all_rules

_DIRECTIVE = re.compile(
    r"#\s*sp-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+?)"
    r"(?:\s*--.*)?$"
)


class LintConfig:
    """Which rules run, where the deterministic core lives."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        core_markers: Sequence[str] = CORE_MARKERS,
    ) -> None:
        known = set(REGISTRY)
        self.select = set(select) if select else None
        self.ignore = set(ignore) if ignore else set()
        for code in (self.select or set()) | self.ignore:
            # a family prefix (SP4, SP60) selects every code under it
            if code not in known and not any(
                k.startswith(code) for k in known
            ):
                raise ValueError(f"unknown rule code {code!r}")
        self.core_markers = tuple(core_markers)

    @staticmethod
    def _matches(code: str, patterns: Set[str]) -> bool:
        return any(code == p or code.startswith(p) for p in patterns)

    def active_rules(self) -> List[Rule]:
        rules = []
        for rule in all_rules():
            if self.select is not None and not self._matches(
                rule.code, self.select
            ):
                continue
            if self._matches(rule.code, self.ignore):
                continue
            rules.append(rule)
        return rules


class ModuleInfo:
    """One parsed module plus its suppression table."""

    def __init__(self, path: str, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=display_path)
        self._nodes: Optional[List[ast.AST]] = None
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(line)
            if not match:
                continue
            kind, codes_text = match.groups()
            codes = {
                code.strip().upper()
                for code in codes_text.split(",")
                if code.strip()
            }
            if kind == "disable-file":
                self.file_disables |= codes
            else:
                self.line_disables.setdefault(lineno, set()).update(codes)

    def nodes(self) -> List[ast.AST]:
        """Every AST node, walked once and shared by all rules — the
        tree is parsed once per file and traversed once per file, not
        once per rule family."""
        if self._nodes is None:
            self._nodes = list(ast.walk(self.tree))
        return self._nodes

    def is_core(self, markers: Sequence[str]) -> bool:
        parts = set(re.split(r"[\\/]", self.display_path))
        return any(marker in parts for marker in markers)

    def suppressed(self, finding: Finding) -> bool:
        if (
            "ALL" in self.file_disables
            or finding.code in self.file_disables
        ):
            return True
        for lineno in (finding.line, finding.line - 1):
            codes = self.line_disables.get(lineno)
            if codes and ("ALL" in codes or finding.code in codes):
                return True
        return False


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[str] = set()
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                )
                candidates.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        for candidate in candidates:
            real = os.path.realpath(candidate)
            if real not in seen:
                seen.add(real)
                out.append(candidate)
    return out


class LintEngine:
    """Run the active rules over a set of paths."""

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config if config is not None else LintConfig()
        #: the call graph of the last check_paths/check_source run —
        #: the CLI reads resolution stats off it
        self.last_project = None

    def check_source(
        self, source: str, display_path: str = "<string>"
    ) -> List[Finding]:
        """Lint one source string (the unit-test entry point)."""
        module = ModuleInfo(display_path, display_path, source)
        findings = self._check_module(module)
        findings.extend(self._project_pass([module]))
        findings.sort(key=Finding.sort_key)
        return findings

    def check_paths(
        self, paths: Sequence[str], root: Optional[str] = None
    ) -> Tuple[List[Finding], int]:
        """Lint every Python file under ``paths``.

        Returns ``(findings, files_checked)``.  ``root`` relativizes the
        reported paths (defaults to the current directory) so output is
        stable across checkouts.
        """
        base = root if root is not None else os.getcwd()
        findings: List[Finding] = []
        files = iter_python_files(paths)
        modules: List[ModuleInfo] = []
        for path in files:
            display = os.path.relpath(path, base).replace(os.sep, "/")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                module = ModuleInfo(path, display, source)
            except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
                findings.append(Finding(
                    code="SP001",
                    message=f"could not parse: {exc}",
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                ))
                continue
            modules.append(module)
            findings.extend(self._check_module(module))
        findings.extend(self._project_pass(modules))
        findings.sort(key=Finding.sort_key)
        return findings, len(files)

    def _project_pass(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        """Interprocedural rules: one call graph, every project-aware
        rule, suppression resolved back through the owning module."""
        from repro.analysis.callgraph import Project

        project = Project(modules)
        self.last_project = project
        by_path = {module.display_path: module for module in modules}
        out: List[Finding] = []
        for rule in self.config.active_rules():
            for finding in rule.check_project(project):
                module = by_path.get(finding.path)
                if module is not None and module.suppressed(finding):
                    continue
                out.append(finding)
        return out

    def _check_module(self, module: ModuleInfo) -> List[Finding]:
        core = module.is_core(self.config.core_markers)
        out: List[Finding] = []
        for rule in self.config.active_rules():
            if rule.core_only and not core:
                continue
            for finding in rule.check(module):
                if not module.suppressed(finding):
                    out.append(finding)
        out.sort(key=Finding.sort_key)
        return out
