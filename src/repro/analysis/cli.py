"""``storypivot-lint`` — run the project lint rules from the shell.

Examples::

    storypivot-lint src/                     # CI gate: exit 1 on findings
    storypivot-lint src/ --format=json       # machine-readable findings
    storypivot-lint src/ --format=sarif      # CI annotation artifact
    storypivot-lint --list-rules             # rule catalogue
    storypivot-lint src/ --select SP4,SP5,SP6   # family prefixes work
    storypivot-lint src/ --baseline lint-baseline.json
    storypivot-lint src/ --write-baseline lint-baseline.json

Exit status: 0 when clean, 1 when any finding survives suppression,
selection, and the baseline (or a baseline entry went stale, or the
call-graph unresolved ratio exceeds ``--max-unresolved-ratio``), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import LintConfig, LintEngine
from repro.analysis.findings import (
    apply_baseline,
    load_baseline,
    render_report,
    summarize,
    to_sarif,
    write_baseline,
)
from repro.analysis.rules import all_rules


def build_parser(prog: str = "storypivot-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Project-aware static analysis for the StoryPivot tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="output format (default text)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes or family "
                             "prefixes (SP4 selects SP401..) to run "
                             "exclusively")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes/prefixes to skip")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="relativize reported paths against DIR "
                             "(default: current directory)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="suppress findings recorded in FILE; stale "
                             "entries (fixed findings still listed) fail "
                             "the run so the debt only shrinks")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="record current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--callgraph-stats", action="store_true",
                        help="print call-graph resolution stats to stderr")
    parser.add_argument("--max-unresolved-ratio", type=float, default=None,
                        metavar="R",
                        help="fail (exit 1) when the fraction of "
                             "unresolved call sites exceeds R")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_codes(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [code.strip().upper() for code in text.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = " [core paths only]" if rule.core_only else ""
            scope += " [interprocedural]" if getattr(
                rule, "project_only", False
            ) else ""
            print(f"{rule.code}  {rule.summary}{scope}")
        return 0

    if not args.paths:
        parser.exit(2, "error: give at least one path (or --list-rules)\n")

    try:
        config = LintConfig(
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ValueError as exc:
        parser.exit(2, f"error: {exc}\n")

    engine = LintEngine(config)
    findings, checked = engine.check_paths(args.paths, root=args.root)

    stats = engine.last_project.stats() if engine.last_project else {}
    if args.callgraph_stats and stats:
        print(json.dumps({"callgraph": stats}, sort_keys=True),
              file=sys.stderr)

    if args.write_baseline:
        count = write_baseline(findings, args.write_baseline)
        print(f"baseline: {count} finding(s) recorded in "
              f"{args.write_baseline}")
        return 0

    stale: List[dict] = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            parser.exit(2, f"error: cannot read baseline: {exc}\n")
        findings, stale = apply_baseline(findings, baseline)

    if args.format == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "summary": summarize(findings),
            "files_checked": checked,
            "clean": not findings,
        }
        if stats:
            payload["callgraph"] = stats
        if args.baseline:
            payload["baseline_stale"] = stale
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        rule_index = {rule.code: rule.summary for rule in all_rules()}
        print(json.dumps(to_sarif(findings, rule_index), indent=2,
                         sort_keys=True))
    else:
        print(render_report(findings, checked_files=checked))
        for entry in stale:
            print(f"stale baseline entry (fixed? remove it): "
                  f"{entry['code']} {entry['path']}: {entry['message']}")

    failed = bool(findings) or bool(stale)
    if args.max_unresolved_ratio is not None and stats:
        ratio = stats.get("unresolved_ratio", 0.0)
        if ratio > args.max_unresolved_ratio:
            print(
                f"call-graph unresolved ratio {ratio} exceeds budget "
                f"{args.max_unresolved_ratio} "
                f"({stats.get('unresolved')} of "
                f"{stats.get('call_sites')} call sites)",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


def _console_entry() -> int:
    return main()


if __name__ == "__main__":
    raise SystemExit(main())
