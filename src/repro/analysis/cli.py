"""``storypivot-lint`` — run the project lint rules from the shell.

Examples::

    storypivot-lint src/                     # CI gate: exit 1 on findings
    storypivot-lint src/ --format=json       # machine-readable findings
    storypivot-lint --list-rules             # rule catalogue
    storypivot-lint src/ --select SP201,SP202

Exit status: 0 when clean, 1 when any finding survives suppression and
selection, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import LintConfig, LintEngine
from repro.analysis.findings import render_report, summarize
from repro.analysis.rules import all_rules


def build_parser(prog: str = "storypivot-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Project-aware static analysis for the StoryPivot tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (default text)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="relativize reported paths against DIR "
                             "(default: current directory)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_codes(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [code.strip().upper() for code in text.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = " [core paths only]" if rule.core_only else ""
            print(f"{rule.code}  {rule.summary}{scope}")
        return 0

    if not args.paths:
        parser.exit(2, "error: give at least one path (or --list-rules)\n")

    try:
        config = LintConfig(
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ValueError as exc:
        parser.exit(2, f"error: {exc}\n")

    engine = LintEngine(config)
    findings, checked = engine.check_paths(args.paths, root=args.root)

    if args.format == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "summary": summarize(findings),
            "files_checked": checked,
            "clean": not findings,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_report(findings, checked_files=checked))

    return 1 if findings else 0


def _console_entry() -> int:
    return main()


if __name__ == "__main__":
    raise SystemExit(main())
