"""Dynamic lock-order race detection for the threaded runtime.

``LockWatch`` wraps ``threading.Lock``/``threading.RLock`` objects in
:class:`InstrumentedLock` proxies and records, per thread, the stack of
locks currently held.  Acquiring lock *B* while holding lock *A* adds a
directed edge A→B to a global acquisition graph; a cycle in that graph
is a **lock-order inversion** — two threads that interleave on those
locks can deadlock, even if this run happened not to.  This is the
lock-order-graph half of a happens-before detector: it catches latent
deadlocks from a single passing run, which is exactly what a CI smoke
leg needs (see DESIGN.md for why we stopped short of full
happens-before).

Three finding kinds, all structured dicts (reconcilable with the chaos
accounting ledger the smoke job already greps):

* ``lock-order-inversion`` — a cycle in the acquisition graph, with the
  edges, acquire sites, and thread names that produced it.
* ``long-hold`` — a lock held longer than ``long_hold_threshold``
  seconds (waits inside ``Condition.wait`` release the lock and are
  *not* counted — the proxy implements the ``_release_save`` /
  ``_acquire_restore`` protocol).
* ``blocked-while-locked`` — ``time.sleep`` called while the thread
  held instrumented locks (requires ``install(patch_sleep=True)``).

Two usage modes:

* **Private** (unit tests): ``watch.lock("a")`` / ``watch.rlock("b")``
  hand out instrumented locks backed by raw primitives; nothing global
  is touched, so a test can provoke an inversion without polluting a
  concurrently-installed global watch.
* **Installed** (``pytest --lockwatch``, ``storypivot-serve
  --lockwatch``): ``install()`` monkeypatches the ``threading`` lock
  factories so every lock created afterwards — the runtime's shard
  locks, metric locks, queue conditions — is instrumented and named by
  its creation site (``shard.py:95``).  ``uninstall()`` restores the
  originals.

Overhead is a dict lookup and a monotonic read per acquire/release plus
one frame inspection per lock *creation*; it is an opt-in diagnostic
mode, not an always-on cost (budget discussion in DESIGN.md).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

# captured before any install() can patch the factories: internals and
# private watches must stay invisible to a globally-installed watch
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_THIS_FILE = __file__


class InstrumentedLock:
    """Proxy around a real lock that reports acquire/release to a watch.

    Implements the full ``threading`` lock surface the stdlib relies on,
    including the private ``Condition`` integration protocol
    (``_release_save``/``_acquire_restore``/``_is_owned``) so waits do
    not count as holds.
    """

    def __init__(self, inner, watch: "LockWatch", name: str) -> None:
        self._inner = inner
        self._watch = watch
        self.name = name

    # -- core lock protocol ------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1):
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watch._on_acquired(self)
        return acquired

    def release(self) -> None:
        self._watch._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        locked_fn = getattr(self._inner, "locked", None)
        if locked_fn is not None:
            return locked_fn()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- Condition integration (CPython threading.Condition protocol) -----

    def _release_save(self):
        self._watch._on_release_save(self)
        inner = self._inner
        if hasattr(inner, "_release_save"):
            return inner._release_save()
        inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        inner = self._inner
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(state)
        else:
            inner.acquire()
        self._watch._on_acquired(self)

    def _is_owned(self) -> bool:
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return inner._is_owned()
        if inner.acquire(False):
            inner.release()
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InstrumentedLock({self.name!r})"


class _Held:
    """Per-thread bookkeeping for one held lock."""

    __slots__ = ("lock", "acquired_at", "count", "site")

    def __init__(self, lock: InstrumentedLock, acquired_at: float, site: str):
        self.lock = lock
        self.acquired_at = acquired_at
        self.count = 1
        self.site = site


class LockWatch:
    """Acquisition-graph recorder and finding store."""

    def __init__(
        self,
        long_hold_threshold: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.long_hold_threshold = long_hold_threshold
        self._clock = clock
        self._local = threading.local()
        self._state_lock = _REAL_LOCK()  # leaf lock: never held while
        #                                  acquiring an instrumented lock
        #: (id(a), id(b)) -> {"from","to","sites","threads"}
        self._edges: Dict[Tuple[int, int], Dict[str, object]] = {}
        #: strong refs so ids stay unique for the watch's lifetime
        self._registry: Dict[int, InstrumentedLock] = {}
        self._event_findings: List[dict] = []
        self._acquisitions = 0
        self._installed = False
        self._orig: Dict[str, object] = {}

    # -- lock construction -------------------------------------------------

    def lock(self, name: Optional[str] = None) -> InstrumentedLock:
        """A fresh instrumented non-reentrant lock (private mode)."""
        return self.wrap(_REAL_LOCK(), name=name)

    def rlock(self, name: Optional[str] = None) -> InstrumentedLock:
        """A fresh instrumented reentrant lock (private mode)."""
        return self.wrap(_REAL_RLOCK(), name=name)

    def wrap(self, inner, name: Optional[str] = None) -> InstrumentedLock:
        """Instrument an existing raw lock."""
        if name is None:
            name = f"lock@{_creation_site()}"
        instrumented = InstrumentedLock(inner, self, name)
        with self._state_lock:
            self._registry[id(instrumented)] = instrumented
        return instrumented

    # -- global installation ----------------------------------------------

    def install(self, patch_sleep: bool = True) -> "LockWatch":
        """Patch ``threading.Lock``/``RLock`` so new locks are watched.

        Locks created *before* install keep their raw primitives; the
        runtime constructs its locks at startup, so install before
        building the object graph you want covered.
        """
        if self._installed:
            return self
        self._orig = {"lock": threading.Lock, "rlock": threading.RLock}
        watch = self

        def make_lock():
            return watch.wrap(_REAL_LOCK(), name=f"Lock@{_creation_site()}")

        def make_rlock():
            return watch.wrap(_REAL_RLOCK(), name=f"RLock@{_creation_site()}")

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        if patch_sleep:
            self._orig["sleep"] = time.sleep
            orig_sleep = time.sleep

            def watched_sleep(seconds: float) -> None:
                watch._note_blocking("time.sleep", seconds)
                orig_sleep(seconds)

            time.sleep = watched_sleep  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._orig["lock"]  # type: ignore[assignment]
        threading.RLock = self._orig["rlock"]  # type: ignore[assignment]
        if "sleep" in self._orig:
            time.sleep = self._orig["sleep"]  # type: ignore[assignment]
        self._orig = {}
        self._installed = False

    def __enter__(self) -> "LockWatch":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- acquisition callbacks --------------------------------------------

    def _held_stack(self) -> List[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _on_acquired(self, lock: InstrumentedLock) -> None:
        stack = self._held_stack()
        for held in stack:
            if held.lock is lock:  # reentrant re-acquire: no new edge
                held.count += 1
                return
        site = _creation_site()
        thread = _thread_name()
        if stack:
            with self._state_lock:
                self._acquisitions += 1
                for held in stack:
                    edge = (id(held.lock), id(lock))
                    info = self._edges.get(edge)
                    if info is None:
                        info = self._edges[edge] = {
                            "from": held.lock.name,
                            "to": lock.name,
                            "sites": set(),
                            "threads": set(),
                        }
                    info["sites"].add(site)
                    info["threads"].add(thread)
        stack.append(_Held(lock, self._clock(), site))

    def _on_release(self, lock: InstrumentedLock) -> None:
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.lock is not lock:
                continue
            held.count -= 1
            if held.count <= 0:
                del stack[index]
                self._check_hold(held)
            return
        # release of a lock acquired before instrumentation: ignore

    def _on_release_save(self, lock: InstrumentedLock) -> None:
        """Condition.wait released the lock fully (all recursion levels)."""
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.lock is lock:
                del stack[index]
                self._check_hold(held)
                return

    def _check_hold(self, held: _Held) -> None:
        duration = self._clock() - held.acquired_at
        if duration > self.long_hold_threshold:
            with self._state_lock:
                self._event_findings.append({
                    "kind": "long-hold",
                    "lock": held.lock.name,
                    "held_seconds": round(duration, 6),
                    "threshold": self.long_hold_threshold,
                    "site": held.site,
                    "thread": _thread_name(),
                })

    def _note_blocking(self, what: str, seconds: float) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        with self._state_lock:
            self._event_findings.append({
                "kind": "blocked-while-locked",
                "call": what,
                "seconds": seconds,
                "locks": [held.lock.name for held in stack],
                "site": _call_site(),
                "thread": _thread_name(),
            })

    # -- reporting ---------------------------------------------------------

    def _cycles(self) -> List[List[Tuple[int, int]]]:
        """Elementary cycles in the acquisition graph (edge lists).

        Iterative DFS over lock-instance nodes; each cycle is reported
        once, keyed by its sorted edge set.
        """
        with self._state_lock:
            edges = list(self._edges)
        graph: Dict[int, List[int]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        cycles: List[List[Tuple[int, int]]] = []
        seen_keys: Set[Tuple[Tuple[int, int], ...]] = set()
        for start in sorted(graph):
            stack = [(start, iter(graph.get(start, ())))]
            path = [start]
            on_path = {start}
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt == start:
                        cycle_nodes = path + [start]
                        cycle_edges = [
                            (cycle_nodes[i], cycle_nodes[i + 1])
                            for i in range(len(cycle_nodes) - 1)
                        ]
                        key = tuple(sorted(cycle_edges))
                        if key not in seen_keys:
                            seen_keys.add(key)
                            cycles.append(cycle_edges)
                    elif nxt > start and nxt not in on_path:
                        # only expand nodes > start: each cycle is found
                        # from its smallest node, once
                        stack.append((nxt, iter(graph.get(nxt, ()))))
                        path.append(nxt)
                        on_path.add(nxt)
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    on_path.discard(path.pop())
        return cycles

    def findings(self) -> List[dict]:
        """All findings: inversion cycles plus recorded hold/block events."""
        with self._state_lock:
            out = [dict(f) for f in self._event_findings]
            edge_info = {
                edge: {
                    "from": info["from"],
                    "to": info["to"],
                    "sites": sorted(info["sites"]),
                    "threads": sorted(info["threads"]),
                }
                for edge, info in self._edges.items()
            }
        for cycle in self._cycles():
            detail = [edge_info[edge] for edge in cycle]
            out.append({
                "kind": "lock-order-inversion",
                "cycle": " -> ".join(
                    [detail[0]["from"]] + [e["to"] for e in detail]
                ),
                "edges": detail,
                "threads": sorted({
                    t for e in detail for t in e["threads"]
                }),
            })
        return out

    def report(self) -> dict:
        """Structured summary: counts + findings (the serve/pytest view)."""
        found = self.findings()
        counts: Dict[str, int] = {}
        for finding in found:
            counts[finding["kind"]] = counts.get(finding["kind"], 0) + 1
        with self._state_lock:
            locks = len(self._registry)
            edges = len(self._edges)
            acquisitions = self._acquisitions
        return {
            "locks": locks,
            "edges": edges,
            "acquisitions": acquisitions,
            "counts": counts,
            "findings": found,
        }

    def render_report(self) -> str:
        """Text summary for CLI output; greppable one-line verdict first."""
        report = self.report()
        counts = report["counts"]
        lines = [
            "lockwatch: "
            f"{counts.get('lock-order-inversion', 0)} inversion(s), "
            f"{counts.get('long-hold', 0)} long-hold(s), "
            f"{counts.get('blocked-while-locked', 0)} blocked-while-locked "
            f"({report['locks']} lock(s), {report['edges']} edge(s), "
            f"{report['acquisitions']} nested acquisition(s))"
        ]
        for finding in report["findings"]:
            if finding["kind"] == "lock-order-inversion":
                lines.append(
                    f"  inversion: {finding['cycle']} "
                    f"[threads: {', '.join(finding['threads'])}]"
                )
                for edge in finding["edges"]:
                    lines.append(
                        f"    {edge['from']} -> {edge['to']} at "
                        f"{', '.join(edge['sites'])}"
                    )
            elif finding["kind"] == "long-hold":
                lines.append(
                    f"  long-hold: {finding['lock']} held "
                    f"{finding['held_seconds']}s (> "
                    f"{finding['threshold']}s) by {finding['thread']}"
                )
            else:
                lines.append(
                    f"  blocked-while-locked: {finding['call']} for "
                    f"{finding['seconds']}s holding "
                    f"{', '.join(finding['locks'])} at {finding['site']}"
                )
        return "\n".join(lines)


def _thread_name() -> str:
    """Current thread's name, safe inside ``Thread._bootstrap_inner``.

    ``threading.current_thread()`` must not be called from lock
    callbacks: a starting thread acquires its ``_started`` Condition
    before registering in ``threading._active``, so the fallback would
    build a ``_DummyThread`` — which acquires another instrumented lock
    and recurses forever.  A plain dict read cannot register anything.
    """
    ident = threading.get_ident()
    thread = threading._active.get(ident)
    return thread.name if thread is not None else f"thread-{ident}"


def _creation_site() -> str:
    """file:line of the nearest frame outside lockwatch/threading."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != _THIS_FILE and "threading" not in filename:
            short = filename.replace("\\", "/").rsplit("/", 1)[-1]
            return f"{short}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _call_site() -> str:
    """file:line of the nearest frame outside lockwatch/time internals."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != _THIS_FILE:
            short = filename.replace("\\", "/").rsplit("/", 1)[-1]
            return f"{short}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"
