"""Interprocedural taint analysis: the SP4xx rule family.

The gauntlet contract ("nothing reaches the WAL without normalization",
"every metric name is canonical/escaped") was prose until now; this
pass makes it machine-checked.  Untrusted *sources* — connector raw
records, HTTP query/header/body values, WAL/segment bytes read back
from disk, federation envelopes — must pass a *sanitizer* before
reaching a *sink* (file paths, metric names, raw response writes, WAL
appends, eval/subprocess).

The analysis is a CodeQL-style summary propagation over the project
call graph, context-insensitive and flow-insensitive within a function
(statement order only drives convergence):

* per function, a fixpoint computes which locals are tainted, where
  taint = a small set of *origins* (a concrete source site, or "my
  parameter i");
* per function, a **summary** records which parameters flow to the
  return value and which parameters reach a sink (with the inner call
  chain), so callers can continue flows without re-analysis;
* summaries propagate around the call graph to a project fixpoint, and
  a final pass materializes findings whose origin is a concrete source,
  each carrying its full source → call-chain → sink trace in
  ``Finding.detail["trace"]``.

Boundaries are declared three ways, in priority order: in-source
annotations (``# sp-taint: source`` / ``# sp-taint: sanitizer`` on the
``def`` line or the line above), the built-in pattern tables below
(``.pull()`` results, ``RawItem`` parameters, handler ``params`` dicts,
``rfile``/headers reads), and nothing else — an unresolved call with a
tainted argument is a counted soundness hole (see ``callgraph.stats``),
not a silent pass.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

#: origins: ("source", path, line, kind) or ("param", fn_key, index)
Origin = Tuple
#: taint value: origin -> trace steps (tuples of "path:line what")
Taint = Dict[Origin, Tuple[str, ...]]

_MAX_STEPS = 12
_MAX_ORIGINS = 6

# -- boundary tables --------------------------------------------------------

#: method names whose call *result* is untrusted, by receiver pattern
_SOURCE_CALLS = (
    # connector raw records: every SourceConnector.pull override
    (re.compile(r".*"), "pull", "connector record"),
    # HTTP header values off the stdlib handler
    (re.compile(r"headers$"), "get", "http header"),
    (re.compile(r"headers$"), "getheader", "http header"),
    # request body / socket bytes
    (re.compile(r"rfile$"), "read", "http body"),
    (re.compile(r"rfile$"), "readline", "http body"),
)

#: parameter names/annotations that arrive untrusted
_SOURCE_PARAM_ANNOTATIONS = {"RawItem"}
_SOURCE_PARAM_NAMES = {"params": "http query value"}

#: callables whose result is clean no matter the input (coercions and
#: escapes); dotted tails compared against the call label
_SANITIZER_CALLS = {
    "_prom_escape", "_prom_name", "parse_traceparent", "decode_cursor",
    "normalize",  # the Normalizer gauntlet entry point
    "int", "float", "bool", "len", "ord", "hash", "isinstance", "id",
    "repr", "ascii", "hex", "oct", "abs", "round", "range", "enumerate",
    "json.dumps", "dumps",  # JSON-encoded output is escaped text
    "basename",  # os.path.basename strips traversal
}

_METRIC_METHODS = {"counter", "gauge", "histogram", "timer"}
_REGISTRYISH = re.compile(r"metrics|registry", re.IGNORECASE)
_WALISH = re.compile(r"wal", re.IGNORECASE)
_RESPONSEISH = re.compile(r"wfile|\bsock\b|socket|connection", re.IGNORECASE)

_PATH_CALLS = {
    "open": (0,),
    "os.remove": (0,), "os.unlink": (0,), "os.rename": (0, 1),
    "os.replace": (0, 1), "os.makedirs": (0,), "os.rmdir": (0,),
    "shutil.rmtree": (0,),
}
_EXEC_CALLS = {
    "eval", "exec", "os.system", "os.popen", "subprocess.run",
    "subprocess.Popen", "subprocess.call", "subprocess.check_output",
    "subprocess.check_call",
}

#: modules whose ``params`` dicts arrive straight off the wire
_HTTP_BOUNDARY = re.compile(r"(^|/)(server|handlers?)[/.]")


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return _dotted(func.value) or ""
    return ""


class _Sink:
    __slots__ = ("code", "label", "site")

    def __init__(self, code: str, label: str, site: ast.AST) -> None:
        self.code = code
        self.label = label
        self.site = site


def _classify_sinks(node: ast.Call) -> List[Tuple["_Sink", List[ast.AST]]]:
    """Sinks this call feeds, with the argument expressions that land
    in the sensitive position."""
    func = node.func
    dotted = _dotted(func) or ""
    tail = dotted.rsplit(".", 1)[-1]
    out: List[Tuple[_Sink, List[ast.AST]]] = []
    args = list(node.args)
    if dotted in _PATH_CALLS or tail == "open" and dotted == "open":
        positions = _PATH_CALLS.get(dotted, (0,))
        exprs = [args[i] for i in positions if i < len(args)]
        if exprs:
            out.append((_Sink("SP401", f"{dotted}() file path", node), exprs))
    if dotted in _EXEC_CALLS:
        if args:
            out.append((_Sink("SP405", f"{dotted}()", node), args))
    if isinstance(func, ast.Attribute):
        receiver = _receiver_name(func)
        if (
            func.attr in _METRIC_METHODS
            and _REGISTRYISH.search(receiver or "")
            and args
        ):
            out.append((_Sink(
                "SP402", f"{receiver}.{func.attr}() metric name", node,
            ), [args[0]]))
        if func.attr == "append" and _WALISH.search(receiver or "") and args:
            out.append((_Sink(
                "SP404", f"{receiver}.append() WAL record", node,
            ), args))
        if (
            func.attr in ("write", "sendall", "send")
            and _RESPONSEISH.search(receiver or "")
            and args
        ):
            out.append((_Sink(
                "SP403", f"{receiver}.{func.attr}() response bytes", node,
            ), args))
    return out


class _Summary:
    __slots__ = ("returns_params", "returns_sources", "param_flows")

    def __init__(self) -> None:
        #: parameter indices whose taint reaches the return value
        self.returns_params: Set[int] = set()
        #: source origins returned outright: {origin: steps}
        self.returns_sources: Taint = {}
        #: param index -> list of (sink_code, sink_label, path, line,
        #: inner trace steps)
        self.param_flows: Dict[int, List[Tuple]] = {}

    def snapshot(self) -> Tuple:
        return (
            frozenset(self.returns_params),
            frozenset(self.returns_sources),
            tuple(sorted(
                (i, len(flows)) for i, flows in self.param_flows.items()
            )),
        )


def _merge(into: Taint, add: Taint) -> bool:
    changed = False
    for origin, steps in add.items():
        if origin not in into and len(into) < _MAX_ORIGINS:
            into[origin] = steps
            changed = True
    return changed


class _FunctionPass:
    """One flow-insensitive taint pass over a single function."""

    def __init__(self, project, fn, summaries, spec) -> None:
        self.project = project
        self.fn = fn
        self.summaries = summaries
        self.spec = spec
        self.env: Dict[str, Taint] = {}
        self.summary = _Summary()
        #: (code, sink path, line, origin) -> Finding, source-origin hits
        self.hits: Dict[Tuple, Finding] = {}
        self.sites = {
            id(site.node): site for site in project.calls.get(fn.key, ())
        }
        self._seed_params()

    def _seed_params(self) -> None:
        args = self.fn.node.args
        for index, arg in enumerate(args.args):
            taint: Taint = {("param", self.fn.key, index): ()}
            ann = _dotted(arg.annotation) if arg.annotation is not None \
                else None
            bare = (ann or "").rsplit(".", 1)[-1]
            kind = None
            if bare in _SOURCE_PARAM_ANNOTATIONS:
                kind = f"untrusted {bare} parameter"
            elif arg.arg in _SOURCE_PARAM_NAMES and _HTTP_BOUNDARY.search(
                self.fn.module.display_path
            ):
                kind = _SOURCE_PARAM_NAMES[arg.arg]
            if kind is not None:
                origin = (
                    "source", self.fn.module.display_path, arg.lineno
                    if hasattr(arg, "lineno") else self.fn.lineno, kind,
                )
                taint[origin] = (self._step(self.fn.node, f"{kind} "
                                            f"`{arg.arg}`"),)
            self.env[arg.arg] = taint

    def _step(self, node: ast.AST, what: str) -> str:
        line = getattr(node, "lineno", self.fn.lineno)
        return f"{self.fn.module.display_path}:{line} {what}"

    # -- driver -------------------------------------------------------------

    def run(self) -> None:
        for _ in range(4):
            before = {k: frozenset(v) for k, v in self.env.items()}
            for stmt in self.fn.node.body:
                self._stmt(stmt)
            if {k: frozenset(v) for k, v in self.env.items()} == before:
                break

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes run elsewhere
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                for origin, steps in taint.items():
                    if origin[0] == "param" and origin[1] == self.fn.key:
                        self.summary.returns_params.add(origin[2])
                    elif origin[0] == "source":
                        _merge(self.summary.returns_sources, {origin: steps})
            return
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value)
            existing = self._read_target(stmt.target)
            _merge(taint, existing)
            self._bind(stmt.target, taint)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            for child in stmt.body:
                self._stmt(child)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
            return
        if isinstance(stmt, ast.Try):
            for child in (stmt.body + stmt.orelse + stmt.finalbody):
                self._stmt(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._stmt(child)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._eval(value)
            return
        # anything else: evaluate embedded expressions for sink hits
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child)

    def _bind(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            slot = self.env.setdefault(target.id, {})
            if taint:
                _merge(slot, taint)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            slot = self.env.setdefault(f"self.{target.attr}", {})
            if taint:
                _merge(slot, taint)
        if isinstance(target, ast.Starred):
            self._bind(target.value, taint)

    def _read_target(self, target: ast.AST) -> Taint:
        if isinstance(target, ast.Name):
            return dict(self.env.get(target.id, {}))
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return dict(self.env.get(f"self.{target.attr}", {}))
        return {}

    # -- expressions --------------------------------------------------------

    def _eval(self, expr: ast.expr) -> Taint:
        if isinstance(expr, ast.Name):
            return dict(self.env.get(expr.id, {}))
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                slot = self.env.get(f"self.{expr.attr}")
                if slot:
                    return dict(slot)
            return self._eval(expr.value)
        if isinstance(expr, ast.Subscript):
            taint = self._eval(expr.value)
            _merge(taint, self._eval(expr.slice))
            return taint
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, (ast.BinOp,)):
            taint = self._eval(expr.left)
            _merge(taint, self._eval(expr.right))
            return taint
        if isinstance(expr, ast.BoolOp):
            taint: Taint = {}
            for value in expr.values:
                _merge(taint, self._eval(value))
            return taint
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            taint = self._eval(expr.body)
            _merge(taint, self._eval(expr.orelse))
            return taint
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return {}  # booleans carry no taint
        if isinstance(expr, ast.JoinedStr):
            taint = {}
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    _merge(taint, self._eval(value.value))
            return taint
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            taint = {}
            for element in expr.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                _merge(taint, self._eval(element))
            return taint
        if isinstance(expr, ast.Dict):
            taint = {}
            for key in expr.keys:
                if key is not None:
                    _merge(taint, self._eval(key))
            for value in expr.values:
                _merge(taint, self._eval(value))
            return taint
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            taint = {}
            for generator in expr.generators:
                source = self._eval(generator.iter)
                self._bind(generator.target, source)
            _merge(taint, self._eval(expr.elt))
            return taint
        if isinstance(expr, ast.DictComp):
            for generator in expr.generators:
                self._bind(generator.target, self._eval(generator.iter))
            taint = self._eval(expr.key)
            _merge(taint, self._eval(expr.value))
            return taint
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, ast.Lambda):
            return {}
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value)
            self._bind(expr.target, taint)
            return taint
        return {}

    # -- calls --------------------------------------------------------------

    def _call(self, node: ast.Call) -> Taint:
        func = node.func
        dotted = _dotted(func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        site = self.sites.get(id(node))
        targets = site.targets if site is not None else []

        arg_taints = [self._eval(a) for a in node.args]
        kw_taints = {
            k.arg: self._eval(k.value) for k in node.keywords
        }
        receiver_taint: Taint = {}
        if isinstance(func, ast.Attribute):
            receiver_taint = self._eval(func.value)

        # sink checks happen before sanitizer classification: a sink
        # call is a sink even if its own result would be "clean"
        self._check_sinks(node, arg_taints, kw_taints)

        # sanitizers: by annotation on any resolved target, then by name
        if any("sanitizer" in t.taint_marks for t in targets):
            return {}
        if dotted in _SANITIZER_CALLS or tail in _SANITIZER_CALLS:
            return {}

        # sources: by annotation, then by pattern
        result: Taint = {}
        source_kind = self._source_kind(node, targets)
        if source_kind is not None:
            origin = (
                "source", self.fn.module.display_path, node.lineno,
                source_kind,
            )
            result[origin] = (self._step(node, f"{source_kind} from "
                                         f"{dotted or 'call'}()"),)

        # project callees: continue flows through their summaries
        for target in targets:
            summary = self.summaries.get(target.key)
            if summary is None:
                continue
            offset = 1 if (
                target.class_name is not None
                and target.params[:1] == ["self"]
                and isinstance(func, ast.Attribute)
            ) else 0
            for origin, steps in summary.returns_sources.items():
                call_step = self._step(node, f"return of {target.qualname}()")
                _merge(result, {origin: self._extend(steps, call_step)})
            for index in summary.returns_params:
                taint = self._arg_taint(index, offset, arg_taints, kw_taints,
                                        target, receiver_taint)
                if taint:
                    call_step = self._step(
                        node, f"through {target.qualname}()"
                    )
                    _merge(result, {
                        o: self._extend(s, call_step)
                        for o, s in taint.items()
                    })
            for index, flows in summary.param_flows.items():
                taint = self._arg_taint(index, offset, arg_taints, kw_taints,
                                        target, receiver_taint)
                if not taint:
                    continue
                call_step = self._step(node, f"into {target.qualname}()")
                for code, label, path, line, inner in flows:
                    for origin, steps in taint.items():
                        chained = self._extend(
                            self._extend(steps, call_step), *inner
                        )
                        self._record_flow(
                            code, label, path, line, origin, chained
                        )

        if targets:
            # a resolved project call: the summaries above are the whole
            # story — do NOT fall through to the conservative carry,
            # that would undo every sanitizer inside project functions
            return result

        if result:
            return result

        # unknown / external call: string-ish transforms keep taint
        carried: Taint = dict(receiver_taint)
        for taint in arg_taints:
            _merge(carried, taint)
        for taint in kw_taints.values():
            _merge(carried, taint)
        return carried

    def _source_kind(self, node: ast.Call,
                     targets) -> Optional[str]:
        if any("source" in t.taint_marks for t in targets):
            return "declared untrusted source"
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _receiver_name(func)
            for pattern, attr, kind in _SOURCE_CALLS:
                if func.attr == attr and pattern.search(receiver or ""):
                    if attr == "pull":
                        # only connector-ish pulls: a project target that
                        # is a pull method, or a receiver naming one
                        if targets or re.search(
                            r"connector|source|feed", receiver or "",
                            re.IGNORECASE,
                        ):
                            return kind
                        continue
                    return kind
        return None

    def _arg_taint(self, param_index: int, offset: int,
                   arg_taints, kw_taints, target,
                   receiver_taint: Taint) -> Taint:
        if offset == 1 and param_index == 0:
            return receiver_taint  # `self` is the call's receiver
        positional = param_index - offset
        if 0 <= positional < len(arg_taints):
            return arg_taints[positional]
        if 0 <= param_index < len(target.params):
            name = target.params[param_index]
            if name in kw_taints:
                return kw_taints[name]
        return {}

    @staticmethod
    def _extend(steps: Tuple[str, ...], *extra: str) -> Tuple[str, ...]:
        merged = list(steps)
        for step in extra:
            if step not in merged:
                merged.append(step)
        return tuple(merged[:_MAX_STEPS])

    def _check_sinks(self, node: ast.Call, arg_taints, kw_taints) -> None:
        for sink, exprs in _classify_sinks(node):
            for expr in exprs:
                taint = self._taint_of_arg(node, expr, arg_taints)
                for origin, steps in taint.items():
                    sink_step = self._step(node, f"sink {sink.label}")
                    chained = self._extend(steps, sink_step)
                    self._record_flow(
                        sink.code, sink.label,
                        self.fn.module.display_path, node.lineno,
                        origin, chained,
                    )

    def _taint_of_arg(self, node: ast.Call, expr: ast.AST,
                      arg_taints) -> Taint:
        for index, arg in enumerate(node.args):
            if arg is expr:
                return arg_taints[index]
        return self._eval(expr)  # keyword / recomputed (cheap)

    def _record_flow(self, code: str, label: str, path: str, line: int,
                     origin: Origin, steps: Tuple[str, ...]) -> None:
        if origin[0] == "param":
            if origin[1] != self.fn.key:
                return  # a caller will attribute this flow to its own args
            self.summary.param_flows.setdefault(origin[2], [])
            flows = self.summary.param_flows[origin[2]]
            entry = (code, label, path, line, steps)
            if entry not in flows and len(flows) < 8:
                flows.append(entry)
            return
        _, source_path, source_line, kind = origin
        key = (code, path, line, origin)
        if key in self.hits:
            return
        trace = list(steps)
        self.hits[key] = Finding(
            code=code,
            message=(
                f"untrusted {kind} (from {source_path}:{source_line}) "
                f"reaches {label} without a sanitizer; flow: "
                + " -> ".join(s.split(" ", 1)[0] for s in trace)
            ),
            path=path,
            line=line,
            detail={
                "source": f"{source_path}:{source_line} {kind}",
                "sink": label,
                "trace": trace,
            },
        )


class TaintAnalysis:
    """Project-wide fixpoint over :class:`_FunctionPass` summaries."""

    def __init__(self, project) -> None:
        self.project = project
        self.summaries: Dict[str, _Summary] = {}
        self.findings: List[Finding] = []
        self._run()

    def _run(self) -> None:
        for key in self.project.functions:
            self.summaries[key] = _Summary()
        for _ in range(6):
            changed = False
            hits: Dict[Tuple, Finding] = {}
            for key, fn in self.project.functions.items():
                tick = _FunctionPass(self.project, fn, self.summaries, None)
                tick.run()
                before = self.summaries[key].snapshot()
                self.summaries[key] = tick.summary
                if tick.summary.snapshot() != before:
                    changed = True
                hits.update(tick.hits)
            self._hits = hits
            if not changed:
                break
        self.findings = sorted(self._hits.values(), key=Finding.sort_key)


def taint_findings(project) -> List[Finding]:
    """Run (or reuse) the taint fixpoint for a project."""
    cached = getattr(project, "_taint", None)
    if cached is None:
        cached = TaintAnalysis(project)
        project._taint = cached
    return cached.findings
