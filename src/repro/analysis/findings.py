"""Finding records shared by the lint engine and the lockwatch detector.

A :class:`Finding` is one concrete violation at one location; both the
static linter and the dynamic lock-order detector emit them so CI and
operators consume a single shape (``to_dict`` is the JSON contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: str = "error"
    #: free-form extra context (cycle edges, hold durations, ...)
    detail: Dict[str, object] = field(default_factory=dict, compare=False)

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
        }
        if self.detail:
            record["detail"] = dict(self.detail)
        return record

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """``{code: count}`` over a finding list, sorted by code."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return dict(sorted(counts.items()))


def render_report(
    findings: List[Finding], checked_files: Optional[int] = None
) -> str:
    """Human-readable report: one line per finding plus a tally."""
    lines = [f.render() for f in sorted(findings, key=Finding.sort_key)]
    counts = summarize(findings)
    tally = ", ".join(f"{code}×{n}" for code, n in counts.items()) or "none"
    suffix = f" across {checked_files} file(s)" if checked_files is not None else ""
    lines.append(f"{len(findings)} finding(s){suffix}: {tally}")
    return "\n".join(lines)
