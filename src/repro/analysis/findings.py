"""Finding records shared by the lint engine and the lockwatch detector.

A :class:`Finding` is one concrete violation at one location; both the
static linter and the dynamic lock-order detector emit them so CI and
operators consume a single shape (``to_dict`` is the JSON contract).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: str = "error"
    #: free-form extra context (cycle edges, hold durations, ...)
    detail: Dict[str, object] = field(default_factory=dict, compare=False)

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
        }
        if self.detail:
            record["detail"] = dict(self.detail)
        return record

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baselining.

        Line numbers are deliberately excluded so unrelated edits above
        a legacy finding do not churn the baseline; code + path +
        message is specific enough in practice (messages embed the
        function/resource names).
        """
        blob = f"{self.code}|{self.path}|{self.message}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """``{code: count}`` over a finding list, sorted by code."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return dict(sorted(counts.items()))


def render_report(
    findings: List[Finding], checked_files: Optional[int] = None
) -> str:
    """Human-readable report: one line per finding plus a tally."""
    lines = [f.render() for f in sorted(findings, key=Finding.sort_key)]
    counts = summarize(findings)
    tally = ", ".join(f"{code}×{n}" for code, n in counts.items()) or "none"
    suffix = f" across {checked_files} file(s)" if checked_files is not None else ""
    lines.append(f"{len(findings)} finding(s){suffix}: {tally}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------


def write_baseline(findings: List[Finding], path: str) -> int:
    """Record current findings as the accepted legacy set."""
    entries = [
        {
            "fingerprint": f.fingerprint(),
            "code": f.code,
            "path": f.path,
            "message": f.message,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": 1, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path: str) -> Dict[str, Dict[str, object]]:
    """``{fingerprint: entry}`` from a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", [])
    return {entry["fingerprint"]: entry for entry in entries}


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, Dict[str, object]]
) -> Tuple[List[Finding], List[Dict[str, object]]]:
    """Split findings against a baseline: the ratchet.

    Returns ``(new_findings, stale_entries)``.  A finding whose
    fingerprint is baselined is filtered out; a baseline entry whose
    finding no longer occurs is *stale* and must be removed — CI fails
    on stale entries so the accepted-debt list only ever shrinks.
    """
    seen: set = set()
    new: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline:
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = [
        entry for fingerprint, entry in sorted(baseline.items())
        if fingerprint not in seen
    ]
    return new, stale


# ---------------------------------------------------------------------------
# SARIF 2.1.0 (the subset CI annotation consumers read)
# ---------------------------------------------------------------------------


def to_sarif(
    findings: List[Finding],
    rule_index: Optional[Dict[str, str]] = None,
    tool_version: str = "0",
) -> Dict[str, object]:
    """SARIF run for CI annotation.

    ``rule_index`` maps rule code → one-line description; codes seen in
    findings but absent from the index still get a rule stanza.
    """
    rules: Dict[str, str] = dict(rule_index or {})
    for finding in findings:
        rules.setdefault(finding.code, finding.message)
    driver = {
        "name": "storypivot-lint",
        "version": tool_version,
        "informationUri": "https://example.invalid/storypivot-lint",
        "rules": [
            {
                "id": code,
                "shortDescription": {"text": rules[code]},
            }
            for code in sorted(rules)
        ],
    }
    results = []
    for finding in sorted(findings, key=Finding.sort_key):
        results.append({
            "ruleId": finding.code,
            "level": "error" if finding.severity == "error" else "warning",
            "message": {"text": finding.message},
            "partialFingerprints": {"storypivotLint/v1": finding.fingerprint()},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 0) + 1,
                    },
                },
            }],
        })
    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [{
            "tool": {"driver": driver},
            "results": results,
        }],
    }
