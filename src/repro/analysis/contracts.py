"""Exception/blocking contracts (SP5xx) and resource lifecycle (SP6xx).

``# sp-contract: never-raises`` / ``never-blocks`` annotations promise
behaviour that used to be enforced only by review: the Normalizer entry
point must not throw into the ingest loop, DecisionLog listeners must
not raise back into ``record()``, nothing reachable while holding a
runtime lock may block.  This pass verifies those promises by computing
may-raise and may-block sets over the project call graph, and upgrades
SP201 from "blocking call *lexically* under a lock" to "blocking call
*reachable* under a lock".

Modelling policy (the unsoundness is deliberate and documented in
DESIGN.md):

* an explicit ``raise`` counts unless it is lexically inside a ``try``
  whose handlers catch ``Exception``/``BaseException`` or are bare;
* calls into project functions propagate may-raise/may-block along
  call-graph edges, with the witness chain preserved for the report;
* calls into external code are assumed non-raising — stdlib raising
  behaviour is endless, and the contract annotations sit exactly on the
  functions whose job is to stop propagation — while blocking external
  calls come from the same positive table SP201 uses;
* ``assert`` never counts (stripped under ``-O``).

The SP6xx lifecycle pass runs on the per-function CFG
(:mod:`repro.analysis.cfg`): a lock ``.acquire()``, ``open()``/
``socket.socket()`` handle, or ``Thread.start()`` that some path can
carry to the function exit without the matching ``release``/``close``/
``join``.  To stay quiet on idiomatic code, files/sockets/threads only
fire with *partial-release evidence* — the function releases on at
least one path (so the author clearly intended this function to own
the cleanup) but not on all — and never when the handle escapes
(returned, yielded, stored on ``self``, or passed onward).  A local
lock acquire with **zero** releases still fires: there is no idiom in
which that is right.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    BlockingUnderLock,
    _LockScopeVisitor,
    _attr_chain,
    _handler_catches_broad,
    _is_lockish,
    _terminal_name,
)

KNOWN_CONTRACTS = {"never-raises", "never-blocks"}
KNOWN_TAINT_MARKS = {"source", "sanitizer"}

_MAX_CHAIN = 8

#: witness: (path, line, description, chain-of-steps)
Witness = Tuple[str, int, str, Tuple[str, ...]]


class _ProtectionVisitor(ast.NodeVisitor):
    """Raise statements and call sites, each tagged with whether a
    broad ``except`` lexically shields it from escaping."""

    def __init__(self) -> None:
        self._depth = 0
        self.raises: List[Tuple[ast.Raise, bool]] = []
        self.calls: Dict[int, bool] = {}

    def visit_Try(self, node: ast.Try) -> None:
        broad = any(
            handler.type is None or _handler_catches_broad(handler)
            for handler in node.handlers
        )
        if broad:
            self._depth += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        if broad:
            self._depth -= 1
        # handler and finally bodies are NOT shielded by their own try
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.finalbody:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        self.raises.append((node, self._depth > 0))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.calls[id(node)] = self._depth > 0
        self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:  # nested scopes run later
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:
        pass

    def visit_ClassDef(self, node) -> None:
        pass


class ContractAnalysis:
    """May-raise / may-block fixpoint plus the findings built on it."""

    def __init__(self, project) -> None:
        self.project = project
        self.may_raise: Dict[str, Optional[Witness]] = {}
        self.may_block: Dict[str, Optional[Witness]] = {}
        self._protection: Dict[str, _ProtectionVisitor] = {}
        self.findings: List[Finding] = []
        self._seed()
        self._propagate()
        self._report()

    # -- seeding ------------------------------------------------------------

    def _seed(self) -> None:
        for key, fn in self.project.functions.items():
            visitor = _ProtectionVisitor()
            for stmt in fn.node.body:
                visitor.visit(stmt)
            self._protection[key] = visitor

            raise_witness: Optional[Witness] = None
            for node, protected in visitor.raises:
                if not protected:
                    raise_witness = (
                        fn.module.display_path, node.lineno,
                        "explicit raise",
                        (f"{fn.module.display_path}:{node.lineno} raise in "
                         f"{fn.qualname}()",),
                    )
                    break
            self.may_raise[key] = raise_witness

            block_witness: Optional[Witness] = None
            for call_id, site in self._sites(key).items():
                label = BlockingUnderLock._blocking_label(site.node)
                if label is not None:
                    block_witness = (
                        fn.module.display_path, site.node.lineno, label,
                        (f"{fn.module.display_path}:{site.node.lineno} "
                         f"{label} in {fn.qualname}()",),
                    )
                    break
            self.may_block[key] = block_witness

    def _sites(self, key: str) -> Dict[int, object]:
        return {
            id(site.node): site for site in self.project.calls.get(key, ())
        }

    # -- propagation --------------------------------------------------------

    def _propagate(self) -> None:
        for _ in range(20):
            changed = False
            for key, fn in self.project.functions.items():
                protection = self._protection[key].calls
                for site in self.project.calls.get(key, ()):
                    for target in site.targets:
                        t_raise = self.may_raise.get(target.key)
                        if (
                            t_raise is not None
                            and self.may_raise[key] is None
                            and not protection.get(id(site.node), False)
                        ):
                            step = (
                                f"{fn.module.display_path}:"
                                f"{site.node.lineno} {fn.qualname}() calls "
                                f"{target.qualname}()"
                            )
                            self.may_raise[key] = (
                                fn.module.display_path, site.node.lineno,
                                f"calls {target.qualname}() which may raise",
                                (step,) + t_raise[3][:_MAX_CHAIN],
                            )
                            changed = True
                        t_block = self.may_block.get(target.key)
                        if t_block is not None and self.may_block[key] is None:
                            step = (
                                f"{fn.module.display_path}:"
                                f"{site.node.lineno} {fn.qualname}() calls "
                                f"{target.qualname}()"
                            )
                            self.may_block[key] = (
                                fn.module.display_path, site.node.lineno,
                                f"calls {target.qualname}() which may block",
                                (step,) + t_block[3][:_MAX_CHAIN],
                            )
                            changed = True
            if not changed:
                break

    # -- findings -----------------------------------------------------------

    def _report(self) -> None:
        out = self.findings
        for key, fn in self.project.functions.items():
            for contract in sorted(fn.contracts - KNOWN_CONTRACTS):
                out.append(Finding(
                    code="SP503",
                    message=(
                        f"unknown sp-contract annotation {contract!r} on "
                        f"{fn.qualname}(); known contracts: "
                        + ", ".join(sorted(KNOWN_CONTRACTS))
                    ),
                    path=fn.module.display_path,
                    line=fn.lineno,
                ))
            for mark in sorted(fn.taint_marks - KNOWN_TAINT_MARKS):
                out.append(Finding(
                    code="SP503",
                    message=(
                        f"unknown sp-taint annotation {mark!r} on "
                        f"{fn.qualname}(); known marks: "
                        + ", ".join(sorted(KNOWN_TAINT_MARKS))
                    ),
                    path=fn.module.display_path,
                    line=fn.lineno,
                ))
            if "never-raises" in fn.contracts:
                witness = self.may_raise.get(key)
                if witness is not None:
                    out.append(Finding(
                        code="SP501",
                        message=(
                            f"{fn.qualname}() is annotated never-raises "
                            f"but {witness[2]} at {witness[0]}:{witness[1]}"
                        ),
                        path=fn.module.display_path,
                        line=fn.lineno,
                        detail={"chain": list(witness[3])},
                    ))
            if "never-blocks" in fn.contracts:
                witness = self.may_block.get(key)
                if witness is not None:
                    out.append(Finding(
                        code="SP502",
                        message=(
                            f"{fn.qualname}() is annotated never-blocks "
                            f"but {witness[2]} at {witness[0]}:{witness[1]}"
                        ),
                        path=fn.module.display_path,
                        line=fn.lineno,
                        detail={"chain": list(witness[3])},
                    ))
        self._report_blocking_under_lock(out)
        self._report_lifecycle(out)
        out.sort(key=Finding.sort_key)

    def _report_blocking_under_lock(self, out: List[Finding]) -> None:
        """SP201, interprocedural leg: a call under a ``with <lock>``
        that resolves to a project function whose may-block witness is
        set.  Direct blocking calls are the lexical rule's job."""
        analysis = self
        for key, fn in self.project.functions.items():
            sites = self._sites(key)
            hits: List[Tuple[ast.Call, str]] = []

            class Visitor(_LockScopeVisitor):
                def visit_Call(self, node: ast.Call) -> None:
                    if self.lock_stack:
                        hits.append((node, self.lock_stack[-1]))
                    self.generic_visit(node)

            visitor = Visitor()
            for stmt in fn.node.body:
                visitor.visit(stmt)
            for node, lock in hits:
                if BlockingUnderLock._blocking_label(node) is not None:
                    continue  # lexical SP201 already reports this
                site = sites.get(id(node))
                if site is None:
                    continue
                for target in site.targets:
                    witness = self.may_block.get(target.key)
                    if witness is None:
                        continue
                    out.append(Finding(
                        code="SP201",
                        message=(
                            f"call to {target.qualname}() while holding "
                            f"{lock!r} may block: {witness[2]} at "
                            f"{witness[0]}:{witness[1]}"
                        ),
                        path=fn.module.display_path,
                        line=node.lineno,
                        detail={"lock": lock, "chain": list(witness[3])},
                    ))
                    break  # one finding per call site is enough

    # -- SP6xx lifecycle ----------------------------------------------------

    def _report_lifecycle(self, out: List[Finding]) -> None:
        for key, fn in self.project.functions.items():
            out.extend(_lifecycle_findings(fn))


def _header_exprs(stmt: ast.AST) -> List[ast.AST]:
    """The expressions a CFG node *itself* evaluates — compound bodies
    belong to their own nodes."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef, ast.ExceptHandler)):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _calls_in(stmt: ast.AST) -> Iterator[ast.Call]:
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                break
            if isinstance(node, ast.Call):
                yield node


class _Acquire:
    __slots__ = ("kind", "resource", "stmt", "label")

    def __init__(self, kind: str, resource: str, stmt: ast.stmt,
                 label: str) -> None:
        self.kind = kind          # "lock" | "file" | "thread"
        self.resource = resource  # name or dotted chain
        self.stmt = stmt
        self.label = label


def _method_call_on(call: ast.Call, attr: str) -> Optional[str]:
    """Dotted receiver chain when ``call`` is ``<recv>.<attr>(...)``."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == attr:
        return _attr_chain(func.value)
    return None


def _find_acquires(fn) -> List[_Acquire]:
    out: List[_Acquire] = []
    for stmt in _function_statements(fn.node):
        for call in _calls_in(stmt):
            recv = _method_call_on(call, "acquire")
            if recv is not None and _is_lockish(call.func.value):
                out.append(_Acquire("lock", recv, stmt,
                                    f"{recv}.acquire()"))
            recv = _method_call_on(call, "start")
            if recv is not None and "." not in recv:
                out.append(_Acquire("thread", recv, stmt,
                                    f"{recv}.start()"))
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            dotted = _attr_chain(stmt.value.func) or (
                stmt.value.func.id
                if isinstance(stmt.value.func, ast.Name) else None
            )
            if dotted in ("open", "socket.socket"):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        out.append(_Acquire(
                            "file", target.id, stmt, f"{dotted}()",
                        ))
    return out


def _function_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Every statement in the function body, excluding nested defs."""
    stack = list(getattr(func, "body", []))
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.ExceptHandler):
                stack.extend(child.body)


_RELEASE_ATTR = {"lock": "release", "file": "close", "thread": "join"}


def _releases(stmt: ast.AST, acquire: _Acquire) -> bool:
    attr = _RELEASE_ATTR[acquire.kind]
    for call in _calls_in(stmt):
        recv = _method_call_on(call, attr)
        if recv == acquire.resource:
            return True
    # the optional-resource idiom: `if feeder is not None: feeder.join()`
    # releases on every path the resource is actually live on — the
    # False branch means it was never acquired
    if isinstance(stmt, ast.If):
        test_names = {
            _attr_chain(n) for n in ast.walk(stmt.test)
            if isinstance(n, (ast.Name, ast.Attribute))
        }
        if acquire.resource in test_names:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Call):
                    recv = _method_call_on(inner, attr)
                    if recv == acquire.resource:
                        return True
    # `with closing(f):` / `with f:` also releases a file handle
    if acquire.kind == "file" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id == acquire.resource:
                return True
            if (
                isinstance(expr, ast.Call)
                and any(
                    isinstance(a, ast.Name) and a.id == acquire.resource
                    for a in expr.args
                )
            ):
                return True
    return False


def _escapes(fn_node: ast.AST, name: str) -> bool:
    """Does the handle leave this function's custody?"""
    def mentions(node: ast.AST) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id == name
            for n in ast.walk(node)
        )

    for stmt in _function_statements(fn_node):
        for expr in _header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                    value = getattr(node, "value", None)
                    if value is not None and mentions(value):
                        return True
                if isinstance(node, ast.Call):
                    # method calls *on* the handle do not transfer it;
                    # passing it as an argument does
                    for arg in list(node.args) + [
                        k.value for k in node.keywords
                    ]:
                        if mentions(arg):
                            return True
                if isinstance(node, ast.Assign):
                    if mentions(node.value) and any(
                        not isinstance(t, ast.Name) for t in node.targets
                    ):
                        return True
                if isinstance(node, (ast.Tuple, ast.List, ast.Dict,
                                     ast.Set)) and mentions(node):
                    return True
    return False


_LIFECYCLE_CODES = {
    "lock": ("SP601", "released"),
    "file": ("SP602", "closed"),
    "thread": ("SP603", "joined"),
}


def _lifecycle_findings(fn) -> List[Finding]:
    acquires = _find_acquires(fn)
    if not acquires:
        return []
    cfg, index_of = build_cfg(fn.node)
    statements = list(_function_statements(fn.node))
    out: List[Finding] = []
    for acquire in acquires:
        released_somewhere = any(
            _releases(stmt, acquire) for stmt in statements
            if stmt is not acquire.stmt
        )
        if acquire.kind == "lock":
            # a dotted lock (self._lock) may be released by a paired
            # method (__exit__, stop()); demand in-function evidence
            if "." in acquire.resource and not released_somewhere:
                continue
        else:
            if not released_somewhere:
                continue  # no cleanup intent here: owner lives elsewhere
            if _escapes(fn.node, acquire.resource):
                continue
        index = index_of.get(id(acquire.stmt))
        if index is None:
            continue
        if cfg.exists_path_avoiding(
            index, lambda s, a=acquire: _releases(s, a)
        ):
            code, verb = _LIFECYCLE_CODES[acquire.kind]
            out.append(Finding(
                code=code,
                message=(
                    f"{acquire.label} in {fn.qualname}() is not "
                    f"{verb} on every path to the function exit"
                ),
                path=fn.module.display_path,
                line=acquire.stmt.lineno,
                detail={"resource": acquire.resource, "kind": acquire.kind},
            ))
    return out


def contract_findings(project) -> List[Finding]:
    """Run (or reuse) the contract/lifecycle analysis for a project."""
    cached = getattr(project, "_contracts", None)
    if cached is None:
        cached = ContractAnalysis(project)
        project._contracts = cached
    return cached.findings
