"""Project-wide symbol table and call graph for interprocedural rules.

The intra-function rules (SP1xx–SP3xx) see one module at a time; the
taint (SP4xx), contract (SP5xx) and lifecycle (SP6xx) passes need to
answer "who calls whom" across the whole ``src/`` tree.  This module
builds that answer from the same parsed :class:`ModuleInfo` objects the
engine already holds — nothing is re-parsed.

Resolution strategy (deliberately *partial*, with the holes counted):

* direct calls — ``f()``, ``module.f()``, ``from m import f; f()``;
* constructor calls — ``ClassName()`` resolves to ``__init__``;
* method calls — ``self.m()`` / ``cls.m()`` through the class and its
  project base classes, plus virtual dispatch: a receiver whose class
  is known (parameter annotation, ``x = ClassName()`` local, or a
  ``self.attr = ClassName()`` assignment anywhere in the class) links
  to the method on that class *and* every project override of it;
* the codebase's known registries — classes decorated with
  ``@register(...)`` are linked from ``REGISTRY.create`` /
  ``open_source`` call sites, ``Thread(target=f)`` links to ``f``, and
  a subscripted call through a module-level dict of functions
  (``TABLE[key](...)``) links to every value in the table;
* everything else is **unresolved** — a dynamic call the graph cannot
  see through.  Unresolved calls are counted per kind and exposed via
  :meth:`Project.stats` so CI can assert the soundness hole stays
  bounded instead of silently growing (see DESIGN.md).

Calls into the standard library or other non-project code are
*external*: not edges, but not soundness holes either — the taint and
contract passes model them with explicit tables (sanitizers, blocking
calls, non-raising builtins).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: module names treated as "not ours": calls into them are external,
#: never unresolved.  Anything importable that is not a project module
#: lands here via the import table, so the list only seeds the obvious.
_STDLIB_HINTS = {
    "abc", "argparse", "ast", "base64", "binascii", "bisect", "collections",
    "contextlib", "copy", "csv", "dataclasses", "datetime", "errno",
    "functools", "gzip", "hashlib", "heapq", "html", "http", "io",
    "itertools", "json", "logging", "math", "os", "pathlib", "queue",
    "random", "re", "select", "shutil", "signal", "socket", "socketserver",
    "sqlite3", "statistics", "string", "struct", "subprocess", "sys",
    "tempfile", "threading", "time", "traceback", "types", "typing",
    "unicodedata", "urllib", "uuid", "warnings", "weakref", "xml", "zlib",
}

import builtins as _builtins

_BUILTIN_CALLS = frozenset(dir(_builtins))


def module_name_for(display_path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/connect/base.py`` → ``repro.connect.base``; paths
    outside a ``src`` root fall back to their slash-to-dot form, which
    keeps fixture trees resolvable relative to themselves.
    """
    parts = display_path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(p for p in parts if p)


class FunctionInfo:
    """One function or method in the project."""

    __slots__ = (
        "key", "name", "qualname", "class_name", "node", "module",
        "contracts", "taint_marks", "params", "decorators", "lineno",
    )

    def __init__(self, module, node, class_name: Optional[str],
                 marks: Dict[int, List[Tuple[str, str]]]) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.class_name = class_name
        self.qualname = f"{class_name}.{node.name}" if class_name else node.name
        self.key = f"{module.display_path}::{self.qualname}"
        self.lineno = node.lineno
        self.params = [a.arg for a in node.args.args]
        self.decorators = [
            _dotted(d.func) if isinstance(d, ast.Call) else _dotted(d)
            for d in node.decorator_list
        ]
        #: contract / taint annotations attached on the line of (or the
        #: line above) the ``def`` or its first decorator
        self.contracts: Set[str] = set()
        self.taint_marks: Set[str] = set()
        first = min([node.lineno] + [d.lineno for d in node.decorator_list])
        for line in (first - 1, first, node.lineno):
            for kind, value in marks.get(line, ()):
                if kind == "contract":
                    self.contracts.add(value)
                else:
                    self.taint_marks.add(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.key}>"


class CallSite:
    """One call expression inside a function, with its resolution."""

    __slots__ = ("node", "caller", "targets", "kind", "label")

    def __init__(self, node: ast.Call, caller: FunctionInfo,
                 targets: List[FunctionInfo], kind: str, label: str) -> None:
        self.node = node
        self.caller = caller
        #: project functions this call may dispatch to (empty for
        #: external and unresolved calls)
        self.targets = targets
        #: "project" | "external" | "unresolved"
        self.kind = kind
        self.label = label


class _ClassInfo:
    __slots__ = ("name", "module", "node", "bases", "methods", "attr_types",
                 "registry_schemes")

    def __init__(self, name, module, node) -> None:
        self.name = name
        self.module = module
        self.node = node
        self.bases: List[str] = []       # dotted base expressions, raw
        self.methods: Dict[str, FunctionInfo] = {}
        #: self.<attr> = ClassName(...) type facts, class-wide
        self.attr_types: Dict[str, str] = {}
        self.registry_schemes: List[str] = []


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_marks(module) -> Dict[int, List[Tuple[str, str]]]:
    """``# sp-contract:`` / ``# sp-taint:`` directives by line number."""
    import re

    pattern = re.compile(
        r"#\s*sp-(contract|taint):\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)"
    )
    marks: Dict[int, List[Tuple[str, str]]] = {}
    for lineno, line in enumerate(module.source.splitlines(), start=1):
        match = pattern.search(line)
        if not match:
            continue
        kind, values = match.groups()
        for value in values.split(","):
            marks.setdefault(lineno, []).append((kind, value.strip()))
    return marks


class Project:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self, modules: Sequence) -> None:
        self.modules = list(modules)
        self.modules_by_name: Dict[str, object] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, _ClassInfo] = {}  # "modname.ClassName"
        self._classes_by_bare: Dict[str, List[_ClassInfo]] = {}
        self._subclasses: Dict[str, List[_ClassInfo]] = {}
        self._imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
        self._dispatch_tables: Dict[str, Dict[str, List[str]]] = {}
        self._registry_classes: List[_ClassInfo] = []
        self.calls: Dict[str, List[CallSite]] = {}
        self._counts = {"project": 0, "external": 0, "unresolved": 0}
        self._unresolved_sites: List[Tuple[str, int, str]] = []
        self._collect()
        self._link()

    # -- phase 1: symbols ---------------------------------------------------

    def _collect(self) -> None:
        for module in self.modules:
            modname = module_name_for(module.display_path)
            module.modname = modname
            self.modules_by_name[modname] = module
            marks = _annotation_marks(module)
            imports: Dict[str, Tuple[str, str]] = {}
            tables: Dict[str, List[str]] = {}
            for node in module.tree.body:
                self._collect_stmt(module, node, None, marks, imports, tables)
            self._imports[module.display_path] = imports
            self._dispatch_tables[module.display_path] = tables
        # subclass index over project classes (by bare base name — base
        # expressions are matched leniently, a miss just loses dispatch)
        for cls in self.classes.values():
            self._classes_by_bare.setdefault(cls.name, []).append(cls)
        for cls in self.classes.values():
            for base in cls.bases:
                bare = base.rsplit(".", 1)[-1]
                self._subclasses.setdefault(bare, []).append(cls)

    def _collect_stmt(self, module, node, class_info, marks, imports,
                      tables) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._record_import(node, imports)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                module, node,
                class_info.name if class_info is not None else None, marks,
            )
            self.functions[info.key] = info
            if class_info is not None:
                class_info.methods[node.name] = info
        elif isinstance(node, ast.ClassDef):
            cls = _ClassInfo(node.name, module, node)
            cls.bases = [d for d in (_dotted(b) for b in node.bases) if d]
            for decorator in node.decorator_list:
                if (
                    isinstance(decorator, ast.Call)
                    and (_dotted(decorator.func) or "").split(".")[-1]
                    == "register"
                ):
                    cls.registry_schemes.append("?")
                    self._registry_classes.append(cls)
            self.classes[f"{module.modname}.{node.name}"] = cls
            for child in node.body:
                self._collect_stmt(module, child, cls, marks, imports, tables)
            self._infer_attr_types(cls)
        elif isinstance(node, ast.Assign) and class_info is None:
            # module-level dict of functions = a dispatch table
            if isinstance(node.value, ast.Dict):
                values = [
                    _dotted(v) for v in node.value.values
                    if _dotted(v) is not None
                ]
                if values and len(values) == len(node.value.values):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tables[target.id] = values

    @staticmethod
    def _record_import(node, imports: Dict[str, Tuple[str, str]]) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imports[name] = ("module", alias.name)
        else:
            if node.module is None or node.level:
                return  # relative imports: not used in this tree
            for alias in node.names:
                name = alias.asname or alias.name
                imports[name] = ("symbol", f"{node.module}.{alias.name}")

    def _infer_attr_types(self, cls: _ClassInfo) -> None:
        """``self.attr = ClassName(...)`` facts from every method body."""
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if isinstance(value, ast.IfExp):
                    # `x if cond else Default()` — use whichever arm
                    # names a constructor; ties go to the truthy arm
                    for arm in (value.body, value.orelse):
                        if isinstance(arm, ast.Call):
                            value = arm
                            break
                if not isinstance(value, ast.Call):
                    continue
                ctor = _dotted(value.func)
                if ctor is None or not ctor.rsplit(".", 1)[-1][:1].isupper():
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(target.attr, ctor)

    # -- phase 2: edges -----------------------------------------------------

    def _link(self) -> None:
        for fn in self.functions.values():
            sites: List[CallSite] = []
            local_types = self._local_var_types(fn)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    sites.append(self._resolve_call(fn, node, local_types))
            self.calls[fn.key] = sites

    def _local_var_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """name → dotted ClassName for annotated params and ctor locals."""
        types: Dict[str, str] = {}
        args = fn.node.args
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                ann = _dotted(arg.annotation)
                if ann:
                    types[arg.arg] = ann
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ctor = _dotted(node.value.func)
                if ctor and ctor.rsplit(".", 1)[-1][:1].isupper():
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types.setdefault(target.id, ctor)
        return types

    def _class_for(self, fn: FunctionInfo) -> Optional[_ClassInfo]:
        if fn.class_name is None:
            return None
        return self.classes.get(f"{fn.module.modname}.{fn.class_name}")

    def _lookup_class(self, module, dotted: str) -> Optional[_ClassInfo]:
        """Resolve a dotted class expression in a module's namespace."""
        bare = dotted.rsplit(".", 1)[-1]
        head = dotted.split(".", 1)[0]
        imports = self._imports.get(module.display_path, {})
        entry = imports.get(head)
        if entry is not None:
            kind, target = entry
            full = target if kind == "symbol" else f"{target}.{bare}"
            cls = self.classes.get(full)
            if cls is not None:
                return cls
        cls = self.classes.get(f"{module.modname}.{bare}")
        if cls is not None:
            return cls
        candidates = self._classes_by_bare.get(bare, [])
        return candidates[0] if len(candidates) == 1 else None

    def _method_targets(self, cls: _ClassInfo, attr: str,
                        virtual: bool = True) -> List[FunctionInfo]:
        """Method on ``cls`` or its project bases, plus overrides."""
        out: List[FunctionInfo] = []
        seen: Set[str] = set()

        def base_lookup(c: _ClassInfo, depth: int = 0) -> None:
            if c.name in seen or depth > 8:
                return
            seen.add(c.name)
            if attr in c.methods:
                out.append(c.methods[attr])
                return
            for base in c.bases:
                parent = self._lookup_class(c.module, base)
                if parent is not None:
                    base_lookup(parent, depth + 1)

        base_lookup(cls)
        if virtual:
            stack = [cls.name]
            visited: Set[str] = set()
            while stack:
                name = stack.pop()
                if name in visited:
                    continue
                visited.add(name)
                for sub in self._subclasses.get(name, []):
                    if attr in sub.methods:
                        out.append(sub.methods[attr])
                    stack.append(sub.name)
        unique: Dict[str, FunctionInfo] = {f.key: f for f in out}
        return list(unique.values())

    def _resolve_call(self, fn: FunctionInfo, node: ast.Call,
                      local_types: Dict[str, str]) -> CallSite:
        label = _dotted(node.func) or "<dynamic>"
        targets = self._targets_for(fn, node, local_types)
        if targets is not None and targets:
            site = CallSite(node, fn, targets, "project", label)
        elif targets is not None:
            site = CallSite(node, fn, [], "external", label)
        else:
            site = CallSite(node, fn, [], "unresolved", label)
            self._unresolved_sites.append(
                (fn.module.display_path, node.lineno, label)
            )
        self._counts[site.kind] += 1
        # thread targets ride along whatever the call itself resolved to
        thread_targets = self._thread_targets(fn, node, local_types)
        if thread_targets:
            site.targets = list({
                f.key: f for f in site.targets + thread_targets
            }.values())
            if site.kind != "project":
                self._counts[site.kind] -= 1
                self._counts["project"] += 1
                site.kind = "project"
        return site

    def _targets_for(self, fn, node, local_types
                     ) -> Optional[List[FunctionInfo]]:
        """Project targets; ``[]`` = external, ``None`` = unresolved."""
        func = node.func
        module = fn.module
        imports = self._imports.get(module.display_path, {})

        if isinstance(func, ast.Name):
            name = func.id
            # registry dispatch: creating "whichever connector the spec
            # names" fans out to every registered class's constructor
            if name in ("open_source",) and self._registry_classes:
                return self._registry_fanout()
            local = self.functions.get(f"{module.display_path}::{name}")
            if local is not None and local.class_name is None:
                return [local]
            cls = self.classes.get(f"{module.modname}.{name}")
            if cls is not None:
                return self._ctor_targets(cls)
            entry = imports.get(name)
            if entry is not None:
                return self._imported_targets(entry)
            if name in _BUILTIN_CALLS:
                return []
            return None

        if isinstance(func, ast.Attribute):
            attr = func.attr
            owner = func.value
            if attr == "create" and self._registry_classes and (
                (_dotted(owner) or "").lower().endswith(("registry", "_factories"))
                or (_dotted(owner) or "") == "REGISTRY"
            ):
                return self._registry_fanout()
            if isinstance(owner, ast.Name):
                if owner.id in ("self", "cls") and fn.class_name is not None:
                    cls = self._class_for(fn)
                    if cls is not None:
                        found = self._method_targets(cls, attr, virtual=False)
                        if found:
                            return found
                        # unknown attr on a fully-project class: dynamic
                        return None
                    return None
                entry = imports.get(owner.id)
                if entry is not None:
                    kind, target = entry
                    if kind == "module":
                        if target.split(".")[0] in _STDLIB_HINTS:
                            return []
                        mod = self.modules_by_name.get(target)
                        if mod is not None:
                            found = self.functions.get(
                                f"{mod.display_path}::{attr}"
                            )
                            if found is not None:
                                return [found]
                            cls = self.classes.get(f"{target}.{attr}")
                            if cls is not None:
                                return self._ctor_targets(cls)
                            return []  # project module, unknown attr: external-ish
                        return []
                    # symbol import used as receiver: ClassName.method(...)
                    cls = self.classes.get(target)
                    if cls is not None:
                        return self._method_targets(cls, attr, virtual=False)
                    if target.split(".")[0] in _STDLIB_HINTS:
                        return []
                    return None
                typed = local_types.get(owner.id)
                if typed is not None:
                    cls = self._lookup_class(module, typed)
                    if cls is not None:
                        found = self._method_targets(cls, attr)
                        if found:
                            return found
                    if typed.split(".")[0] in _STDLIB_HINTS:
                        return []
                    return None
                cls = self.classes.get(f"{module.modname}.{owner.id}")
                if cls is not None:
                    return self._method_targets(cls, attr, virtual=False)
                return None
            if (
                isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self"
                and fn.class_name is not None
            ):
                cls = self._class_for(fn)
                if cls is not None:
                    typed = cls.attr_types.get(owner.attr)
                    if typed is not None:
                        target_cls = self._lookup_class(module, typed)
                        if target_cls is not None:
                            found = self._method_targets(target_cls, attr)
                            if found:
                                return found
                        if typed.split(".")[0] in _STDLIB_HINTS:
                            return []
                return None
            dotted = _dotted(func)
            if dotted is not None and dotted.split(".")[0] in _STDLIB_HINTS:
                return []
            return None

        if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
            table = self._dispatch_tables.get(module.display_path, {}).get(
                func.value.id
            )
            if table:
                out: List[FunctionInfo] = []
                for name in table:
                    found = self.functions.get(
                        f"{module.display_path}::{name.rsplit('.', 1)[-1]}"
                    )
                    if found is not None:
                        out.append(found)
                if out:
                    return out
            return None

        return None

    def _imported_targets(self, entry) -> Optional[List[FunctionInfo]]:
        kind, target = entry
        if kind == "module":
            return [] if target.split(".")[0] in _STDLIB_HINTS else []
        modname, _, symbol = target.rpartition(".")
        if modname.split(".")[0] in _STDLIB_HINTS:
            return []
        mod = self.modules_by_name.get(modname)
        if mod is not None:
            found = self.functions.get(f"{mod.display_path}::{symbol}")
            if found is not None:
                return [found]
            cls = self.classes.get(target)
            if cls is not None:
                return self._ctor_targets(cls)
            return []
        return []  # import of non-project, non-stdlib code: external

    def _ctor_targets(self, cls: _ClassInfo) -> List[FunctionInfo]:
        found = self._method_targets(cls, "__init__", virtual=False)
        return found if found else []

    def _registry_fanout(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for cls in self._registry_classes:
            out.extend(self._ctor_targets(cls))
        return out

    def _thread_targets(self, fn, node, local_types) -> List[FunctionInfo]:
        dotted = _dotted(node.func) or ""
        if dotted.rsplit(".", 1)[-1] != "Thread":
            return []
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            value = keyword.value
            if isinstance(value, ast.Name):
                found = self.functions.get(
                    f"{fn.module.display_path}::{value.id}"
                )
                return [found] if found is not None else []
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and fn.class_name is not None
            ):
                cls = self._class_for(fn)
                if cls is not None:
                    return self._method_targets(cls, value.attr, virtual=False)
        return []

    # -- queries ------------------------------------------------------------

    def callees(self, key: str) -> Iterator[Tuple[CallSite, FunctionInfo]]:
        for site in self.calls.get(key, ()):
            for target in site.targets:
                yield site, target

    def registered_classes(self) -> List[str]:
        return sorted(
            f"{cls.module.modname}.{cls.name}"
            for cls in self._registry_classes
        )

    def stats(self) -> Dict[str, object]:
        """Call-resolution accounting — the soundness ledger CI watches."""
        total = sum(self._counts.values())
        unresolved = self._counts["unresolved"]
        return {
            "functions": len(self.functions),
            "classes": len(self.classes),
            "call_sites": total,
            "resolved_project": self._counts["project"],
            "external": self._counts["external"],
            "unresolved": unresolved,
            "unresolved_ratio": round(unresolved / total, 4) if total else 0.0,
        }

    def unresolved_sites(self) -> List[Tuple[str, int, str]]:
        return sorted(self._unresolved_sites)
