"""Pytest plugin: ``--lockwatch`` instruments every lock the suite creates.

Loaded from ``tests/conftest.py`` via ``pytest_plugins``.  With the flag
given, a global :class:`~repro.analysis.lockwatch.LockWatch` is
installed for the whole session; at the end it prints the acquisition
report and **fails the run on any lock-order inversion** (long holds and
blocked-while-locked events are reported but do not fail — wall-clock
noise on shared CI boxes would make them flaky gates).

Tests that deliberately provoke inversions (the regression tests in
``test_analysis_lockwatch.py``) use a *private* ``LockWatch`` whose
locks are built from raw primitives captured at import time, so they
stay invisible to the session watch.
"""

from __future__ import annotations

import pytest

_SESSION_WATCH = None


def pytest_addoption(parser) -> None:
    group = parser.getgroup("lockwatch")
    group.addoption(
        "--lockwatch",
        action="store_true",
        default=False,
        help="instrument threading locks for the whole session and fail "
             "on lock-order inversions",
    )
    group.addoption(
        "--lockwatch-long-hold",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="long-hold reporting threshold under --lockwatch "
             "(default 5.0; reported, never failing)",
    )


def pytest_configure(config) -> None:
    global _SESSION_WATCH
    if not config.getoption("--lockwatch"):
        return
    from repro.analysis.lockwatch import LockWatch

    _SESSION_WATCH = LockWatch(
        long_hold_threshold=config.getoption("--lockwatch-long-hold")
    )
    # sleep patching stays off for the suite: tests sleep under their own
    # private locks legitimately (timing fixtures), and the serve leg
    # already covers blocked-while-locked on the real runtime
    _SESSION_WATCH.install(patch_sleep=False)


def pytest_unconfigure(config) -> None:
    global _SESSION_WATCH
    if _SESSION_WATCH is not None:
        _SESSION_WATCH.uninstall()
        _SESSION_WATCH = None


@pytest.hookimpl(hookwrapper=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    yield
    if _SESSION_WATCH is None:
        return
    report = _SESSION_WATCH.report()
    terminalreporter.section("lockwatch")
    terminalreporter.write_line(_SESSION_WATCH.render_report())
    inversions = report["counts"].get("lock-order-inversion", 0)
    if inversions:
        terminalreporter.write_line(
            f"lockwatch: FAILING the session: {inversions} lock-order "
            f"inversion(s) detected", red=True,
        )


def pytest_sessionfinish(session, exitstatus) -> None:
    if _SESSION_WATCH is None:
        return
    report = _SESSION_WATCH.report()
    if report["counts"].get("lock-order-inversion", 0) and exitstatus == 0:
        session.exitstatus = 1
