"""StoryPivot reproduction: comparing and contrasting story evolution.

A full reimplementation of the system demonstrated in "StoryPivot:
Comparing and Contrasting Story Evolution" (SIGMOD 2015): per-source story
identification (temporal sliding-window and complete matching), cross-source
story alignment, story refinement, sketch-accelerated similarity, streaming
integration, synthetic GDELT/EventRegistry-style workloads with ground
truth, and the demo's exploration modules.

Quickstart::

    from repro import StoryPivot, StoryPivotConfig, mh17_corpus

    pivot = StoryPivot(StoryPivotConfig.temporal())
    result = pivot.run(mh17_corpus())
    for aligned in result.alignment.aligned.values():
        print(aligned.aligned_id, aligned.source_ids, len(aligned))
"""

from repro.core.config import StoryPivotConfig
from repro.core.pipeline import PivotResult, StoryPivot
from repro.core.stories import Story, StorySet
from repro.core.identification import (
    CompleteIdentifier,
    SinglePassIdentifier,
    TemporalIdentifier,
    make_identifier,
)
from repro.core.alignment import AlignedStory, Alignment, StoryAligner
from repro.core.refinement import StoryRefiner
from repro.core.streaming import (
    BoundedSeenSet,
    StreamProcessor,
    replay_out_of_order,
)
from repro.runtime import MetricsRegistry, RuntimeOptions, ShardedRuntime
from repro.eventdata.corpus import Corpus, GroundTruth
from repro.eventdata.models import Document, Snippet, Source
from repro.eventdata.handcrafted import mh17_corpus
from repro.eventdata.sourcegen import SourceSimulator, default_profiles, synthetic_corpus
from repro.eventdata.worldgen import WorldConfig, WorldGenerator
from repro.evaluation.harness import (
    MethodSpec,
    default_method_grid,
    run_experiment,
    sweep_events,
)
from repro.evaluation.metrics import pairwise_scores
from repro.kb import EntityLinker, KnowledgeBase, build_default_kb, story_context
from repro.analytics import detect_bursts, lifecycle, profile_sources
from repro.query import QueryEngine, parse_query
from repro.core.granularity import StoryHierarchy, cluster_themes
from repro.evaluation.diff import diff_alignments
from repro.evaluation.significance import bootstrap_f1_comparison
from repro.evaluation.tuning import tune

__version__ = "1.0.0"

__all__ = [
    "StoryPivot",
    "StoryPivotConfig",
    "PivotResult",
    "BoundedSeenSet",
    "MetricsRegistry",
    "RuntimeOptions",
    "ShardedRuntime",
    "Story",
    "StorySet",
    "TemporalIdentifier",
    "CompleteIdentifier",
    "SinglePassIdentifier",
    "make_identifier",
    "StoryAligner",
    "Alignment",
    "AlignedStory",
    "StoryRefiner",
    "StreamProcessor",
    "replay_out_of_order",
    "Corpus",
    "GroundTruth",
    "Snippet",
    "Document",
    "Source",
    "mh17_corpus",
    "synthetic_corpus",
    "SourceSimulator",
    "default_profiles",
    "WorldConfig",
    "WorldGenerator",
    "MethodSpec",
    "default_method_grid",
    "run_experiment",
    "sweep_events",
    "pairwise_scores",
    "KnowledgeBase",
    "build_default_kb",
    "EntityLinker",
    "story_context",
    "detect_bursts",
    "lifecycle",
    "profile_sources",
    "QueryEngine",
    "parse_query",
    "StoryHierarchy",
    "cluster_themes",
    "diff_alignments",
    "bootstrap_f1_comparison",
    "tune",
    "__version__",
]
