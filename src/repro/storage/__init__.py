"""Storage substrate: indexes and the partitioned event store.

Story identification needs, per source, (1) the snippets inside a temporal
window ``[t - ω, t + ω]`` (Figure 2b) and (2) candidate snippets sharing an
entity or term (to avoid scoring everything in the window).  The store
partitions snippets by source (the ``V_i`` of Section 2.1) and maintains a
temporal index and an inverted index per partition, with full support for
dynamic insertion and removal (documents can be added/removed in the demo).
"""

from repro.storage.temporal_index import TemporalIndex
from repro.storage.inverted_index import InvertedIndex
from repro.storage.window import SlidingWindow
from repro.storage.event_store import EventStore, SourcePartition

__all__ = [
    "TemporalIndex",
    "InvertedIndex",
    "SlidingWindow",
    "EventStore",
    "SourcePartition",
]
