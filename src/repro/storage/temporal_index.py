"""Temporal index: ordered (timestamp, id) pairs with range queries.

A thin wrapper over ``bisect`` on a sorted list.  Insertion is O(n) due to
list shifting but n here is a per-source partition, and removal/lookup stay
O(log n) to find positions — adequate for the corpus sizes of the paper's
demo and far simpler than a tree; the interface would let a B-tree drop in.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple


class TemporalIndex:
    """Sorted index of ``(timestamp, item_id)`` supporting window queries."""

    def __init__(self) -> None:
        self._entries: List[Tuple[float, str]] = []
        self._positions = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._positions

    def insert(self, item_id: str, timestamp: float) -> None:
        """Insert an item (ValueError on duplicate id)."""
        if item_id in self._positions:
            raise ValueError(f"item {item_id!r} already indexed")
        entry = (timestamp, item_id)
        bisect.insort(self._entries, entry)
        self._positions[item_id] = timestamp

    def remove(self, item_id: str) -> None:
        """Remove an item (KeyError if absent)."""
        timestamp = self._positions.pop(item_id)
        index = bisect.bisect_left(self._entries, (timestamp, item_id))
        # bisect_left lands exactly on the entry because entries are unique.
        del self._entries[index]

    def timestamp_of(self, item_id: str) -> float:
        return self._positions[item_id]

    def window(self, start: float, end: float) -> List[str]:
        """Item ids with ``start <= timestamp <= end``, in time order."""
        if end < start:
            return []
        lo = bisect.bisect_left(self._entries, (start, ""))
        hi = bisect.bisect_right(self._entries, (end, "￿"))
        return [item_id for _, item_id in self._entries[lo:hi]]

    def around(self, timestamp: float, radius: float) -> List[str]:
        """Ids within ``radius`` of ``timestamp`` — the ω-window of Fig. 2b."""
        return self.window(timestamp - radius, timestamp + radius)

    def before(self, timestamp: float, limit: Optional[int] = None) -> List[str]:
        """Ids strictly before ``timestamp``, most recent first."""
        hi = bisect.bisect_left(self._entries, (timestamp, ""))
        selected = self._entries[:hi][::-1]
        if limit is not None:
            selected = selected[:limit]
        return [item_id for _, item_id in selected]

    def items(self) -> Iterator[Tuple[float, str]]:
        """All (timestamp, id) pairs in time order."""
        return iter(list(self._entries))

    def span(self) -> Tuple[float, float]:
        """(min, max) timestamp (ValueError when empty)."""
        if not self._entries:
            raise ValueError("temporal index is empty")
        return self._entries[0][0], self._entries[-1][0]
