"""Inverted index: feature -> posting set of item ids.

Used per source partition to retrieve candidate snippets sharing at least
one entity or term with a query snippet, so that the matcher scores a small
candidate pool instead of everything in the temporal window.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, Iterable, List, Set, Tuple


class InvertedIndex:
    """Mapping from features to the item ids containing them."""

    def __init__(self) -> None:
        self._postings: Dict[Hashable, Set[str]] = defaultdict(set)
        self._features_of: Dict[str, Tuple[Hashable, ...]] = {}

    def __len__(self) -> int:
        """Number of indexed items (not features)."""
        return len(self._features_of)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._features_of

    @property
    def num_features(self) -> int:
        return len(self._postings)

    def insert(self, item_id: str, features: Iterable[Hashable]) -> None:
        """Index ``item_id`` under each feature (ValueError on duplicate)."""
        if item_id in self._features_of:
            raise ValueError(f"item {item_id!r} already indexed")
        feature_tuple = tuple(set(features))
        self._features_of[item_id] = feature_tuple
        for feature in feature_tuple:
            self._postings[feature].add(item_id)

    def remove(self, item_id: str) -> None:
        """Remove an item and prune empty postings (KeyError if absent)."""
        for feature in self._features_of.pop(item_id):
            posting = self._postings.get(feature)
            if posting is not None:
                posting.discard(item_id)
                if not posting:
                    del self._postings[feature]

    def posting(self, feature: Hashable) -> Set[str]:
        """Ids containing ``feature`` (a copy; empty set if unseen)."""
        return set(self._postings.get(feature, ()))

    def features_of(self, item_id: str) -> Tuple[Hashable, ...]:
        return self._features_of[item_id]

    def candidates(self, features: Iterable[Hashable]) -> Set[str]:
        """Union of postings — ids sharing >= 1 feature with the query."""
        found: Set[str] = set()
        for feature in set(features):
            found |= self._postings.get(feature, set())
        return found

    def ranked_candidates(
        self, features: Iterable[Hashable], min_overlap: int = 1
    ) -> List[Tuple[str, int]]:
        """Candidates with their feature-overlap count, highest first."""
        overlap: Counter = Counter()
        for feature in set(features):
            for item_id in self._postings.get(feature, ()):
                overlap[item_id] += 1
        return sorted(
            ((item_id, count) for item_id, count in overlap.items()
             if count >= min_overlap),
            key=lambda kv: (-kv[1], kv[0]),
        )
