"""The partitioned event store.

Snippets are partitioned by data source — the ``V_i ⊆ V`` of Section 2.1 —
and each partition maintains a temporal index plus an inverted index over
the snippet's match features (entities and stemmed terms).  The store
supports dynamic insertion *and removal* because the demo lets users add
and remove documents, and removing a source entirely must be cheap (drop
its partition).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import (
    DuplicateSnippetError,
    UnknownSnippetError,
    UnknownSourceError,
)
from repro.eventdata.models import Snippet, Source
from repro.storage.inverted_index import InvertedIndex
from repro.storage.temporal_index import TemporalIndex
from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import word_tokens


def match_terms(snippet: Snippet) -> Tuple[str, ...]:
    """The term features a snippet is matched on.

    Keywords (annotations) plus description words, stemmed, stopword-free,
    deduplicated with stable order.  The result is memoized on the snippet
    instance (snippets are immutable), because matchers call this on every
    pairwise comparison.
    """
    cached = snippet.__dict__.get("_match_terms")
    if cached is not None:
        return cached
    raw = list(snippet.keywords) + word_tokens(snippet.description)
    seen = []
    seen_set: Set[str] = set()
    for word in raw:
        lowered = word.lower()
        if lowered in STOPWORDS:
            continue
        stemmed = stem(lowered)
        if stemmed not in seen_set:
            seen_set.add(stemmed)
            seen.append(stemmed)
    result = tuple(seen)
    object.__setattr__(snippet, "_match_terms", result)
    return result


class SourcePartition:
    """All state the store keeps for one data source."""

    def __init__(self, source: Source) -> None:
        self.source = source
        self.snippets: Dict[str, Snippet] = {}
        self.temporal = TemporalIndex()
        self.entity_index = InvertedIndex()
        self.term_index = InvertedIndex()

    def __len__(self) -> int:
        return len(self.snippets)

    def insert(self, snippet: Snippet) -> None:
        if snippet.snippet_id in self.snippets:
            raise DuplicateSnippetError(snippet.snippet_id)
        self.snippets[snippet.snippet_id] = snippet
        self.temporal.insert(snippet.snippet_id, snippet.timestamp)
        self.entity_index.insert(snippet.snippet_id, snippet.entities)
        self.term_index.insert(snippet.snippet_id, match_terms(snippet))

    def remove(self, snippet_id: str) -> Snippet:
        if snippet_id not in self.snippets:
            raise UnknownSnippetError(snippet_id)
        snippet = self.snippets.pop(snippet_id)
        self.temporal.remove(snippet_id)
        self.entity_index.remove(snippet_id)
        self.term_index.remove(snippet_id)
        return snippet

    def in_window(self, timestamp: float, radius: float) -> List[Snippet]:
        """Snippets of this source within ``radius`` of ``timestamp``."""
        return [
            self.snippets[snippet_id]
            for snippet_id in self.temporal.around(timestamp, radius)
        ]

    def candidates(
        self,
        snippet: Snippet,
        radius: Optional[float] = None,
    ) -> List[Snippet]:
        """Snippets sharing an entity or term with ``snippet``.

        With ``radius`` the candidates are additionally restricted to the
        temporal window — the exact candidate set of temporal
        identification (Figure 2b).  The query snippet itself is excluded.
        """
        ids = self.entity_index.candidates(snippet.entities)
        ids |= self.term_index.candidates(match_terms(snippet))
        ids.discard(snippet.snippet_id)
        if radius is not None:
            in_window = set(self.temporal.around(snippet.timestamp, radius))
            ids &= in_window
        found = [self.snippets[snippet_id] for snippet_id in ids]
        return sorted(found, key=lambda s: (s.timestamp, s.snippet_id))


class EventStore:
    """Partitioned snippet store with per-source indexes."""

    def __init__(self) -> None:
        self._partitions: Dict[str, SourcePartition] = {}
        self._source_of: Dict[str, str] = {}

    # -- sources ----------------------------------------------------------

    def add_source(self, source: Source) -> None:
        if source.source_id not in self._partitions:
            self._partitions[source.source_id] = SourcePartition(source)

    def remove_source(self, source_id: str) -> List[Snippet]:
        """Drop a source and return the snippets that lived in it."""
        partition = self._partitions.pop(source_id, None)
        if partition is None:
            raise UnknownSourceError(source_id)
        removed = list(partition.snippets.values())
        for snippet in removed:
            del self._source_of[snippet.snippet_id]
        return removed

    @property
    def source_ids(self) -> List[str]:
        return sorted(self._partitions)

    def partition(self, source_id: str) -> SourcePartition:
        partition = self._partitions.get(source_id)
        if partition is None:
            raise UnknownSourceError(source_id)
        return partition

    # -- snippets ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._source_of)

    def __contains__(self, snippet_id: str) -> bool:
        return snippet_id in self._source_of

    def insert(self, snippet: Snippet) -> None:
        """Insert a snippet, creating its source partition on first sight."""
        if snippet.snippet_id in self._source_of:
            raise DuplicateSnippetError(snippet.snippet_id)
        if snippet.source_id not in self._partitions:
            self._partitions[snippet.source_id] = SourcePartition(
                Source(snippet.source_id, snippet.source_id)
            )
        self._partitions[snippet.source_id].insert(snippet)
        self._source_of[snippet.snippet_id] = snippet.source_id

    def insert_all(self, snippets: Iterable[Snippet]) -> None:
        for snippet in snippets:
            self.insert(snippet)

    def remove(self, snippet_id: str) -> Snippet:
        source_id = self._source_of.pop(snippet_id, None)
        if source_id is None:
            raise UnknownSnippetError(snippet_id)
        return self._partitions[source_id].remove(snippet_id)

    def get(self, snippet_id: str) -> Snippet:
        source_id = self._source_of.get(snippet_id)
        if source_id is None:
            raise UnknownSnippetError(snippet_id)
        return self._partitions[source_id].snippets[snippet_id]

    def snippets(self, source_id: Optional[str] = None) -> List[Snippet]:
        """All snippets (of one source, if given) in time order."""
        if source_id is not None:
            partition = self.partition(source_id)
            pool = partition.snippets.values()
        else:
            pool = (
                snippet
                for partition in self._partitions.values()
                for snippet in partition.snippets.values()
            )
        return sorted(pool, key=lambda s: (s.timestamp, s.snippet_id))
