"""Sliding window over a time-ordered stream.

The temporal identification mode (Figure 2b) compares an incoming snippet
``v`` only against snippets with ``t_v - ω <= t <= t_v + ω``.  For a stream
processed in time order the backward half is served by this window, which
evicts lazily as time advances; the forward half is naturally satisfied by
later arrivals being compared against ``v`` when *they* arrive.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Tuple


class SlidingWindow:
    """Keep the trailing ``width`` seconds of a time-ordered stream."""

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        self.width = width
        self._entries: Deque[Tuple[float, str]] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, str]]:
        return iter(self._entries)

    def push(self, item_id: str, timestamp: float) -> List[str]:
        """Append an item; returns the ids evicted by the advance.

        Items may arrive slightly out of order (bounded disorder); the
        window keys eviction off the *maximum* timestamp seen so far, so a
        late arrival never un-evicts — an item already older than the
        horizon is evicted immediately.
        """
        horizon = timestamp - self.width
        if self._entries:
            horizon = max(horizon, max(t for t, _ in self._entries) - self.width)
        evicted: List[str] = []
        if timestamp < horizon:
            return [item_id]
        self._entries.append((timestamp, item_id))
        while self._entries and self._entries[0][0] < horizon:
            _, old_id = self._entries.popleft()
            evicted.append(old_id)
        return evicted

    def ids(self) -> List[str]:
        """Current member ids, oldest first."""
        return [item_id for _, item_id in self._entries]

    def clear(self) -> None:
        self._entries.clear()
