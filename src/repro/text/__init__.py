"""Text-processing substrate.

StoryPivot consumes *information snippets* whose content is produced by a
black-box extraction pipeline (EventRegistry documents annotated by
OpenCalais in the paper).  This package provides every text primitive that
pipeline and the matchers need: tokenization, stopword filtering, stemming,
vocabulary management, TF-IDF weighting and similarity measures.
"""

from repro.text.tokenize import Token, sentences, tokenize, word_tokens
from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.text.stem import PorterStemmer, stem
from repro.text.vocab import Vocabulary
from repro.text.vectorize import BagOfWords, TfIdfVectorizer
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    overlap_coefficient,
    weighted_jaccard,
)

__all__ = [
    "Token",
    "tokenize",
    "word_tokens",
    "sentences",
    "STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "PorterStemmer",
    "stem",
    "Vocabulary",
    "BagOfWords",
    "TfIdfVectorizer",
    "cosine_similarity",
    "jaccard_similarity",
    "weighted_jaccard",
    "dice_similarity",
    "overlap_coefficient",
]
