"""Vocabulary: a bidirectional token <-> integer-id mapping.

Every vectorized component (TF-IDF, sketches, the inverted index) shares a
vocabulary so that term ids are stable across snippets and across sources.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """Grow-only mapping from terms to dense integer ids.

    A vocabulary can be *frozen*, after which unknown terms either raise
    ``KeyError`` (``add``) or map to ``None`` (``get``).  Freezing is used by
    evaluation harnesses that must guarantee train/apply feature parity.
    """

    def __init__(self, terms: Optional[Iterable[str]] = None) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._frozen = False
        if terms is not None:
            for term in terms:
                self.add(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    @property
    def frozen(self) -> bool:
        """Whether the vocabulary rejects new terms."""
        return self._frozen

    def freeze(self) -> None:
        """Disallow any further growth."""
        self._frozen = True

    def add(self, term: str) -> int:
        """Return the id of ``term``, assigning a fresh id if it is new.

        Raises ``KeyError`` for unseen terms on a frozen vocabulary.
        """
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        if self._frozen:
            raise KeyError(f"vocabulary is frozen; unknown term {term!r}")
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        return term_id

    def get(self, term: str) -> Optional[int]:
        """Return the id of ``term`` or ``None`` if unknown."""
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> str:
        """Return the term for ``term_id``; raises ``IndexError`` if absent."""
        return self._id_to_term[term_id]

    def encode(self, terms: Iterable[str], skip_unknown: bool = False) -> List[int]:
        """Map ``terms`` to ids, adding new terms unless frozen.

        With ``skip_unknown`` (only meaningful when frozen), unseen terms are
        dropped instead of raising.
        """
        ids: List[int] = []
        for term in terms:
            if self._frozen:
                term_id = self._term_to_id.get(term)
                if term_id is None:
                    if skip_unknown:
                        continue
                    raise KeyError(f"vocabulary is frozen; unknown term {term!r}")
                ids.append(term_id)
            else:
                ids.append(self.add(term))
        return ids

    def decode(self, ids: Iterable[int]) -> List[str]:
        """Map ids back to terms."""
        return [self._id_to_term[i] for i in ids]
