"""Porter stemmer, implemented from the original 1980 paper.

The annotator stems description keywords so that "investigation",
"investigations" and "investigated" collapse to one story feature.  The
implementation follows M. F. Porter, "An algorithm for suffix stripping",
*Program* 14(3), 1980, steps 1a-5b, including the departures Porter lists
(e.g. the ``(m>1 and (*S or *T)) ION ->`` rule in step 4).
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer; ``stem()`` is the only public entry point."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lower-cased).

        Words of length <= 2 are returned unchanged, as in Porter's
        reference implementation.
        """
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and predicates ------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """Porter's m: the number of VC sequences in the stem."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem)):
            is_vowel = not self._is_consonant(stem, i)
            if previous_was_vowel and not is_vowel:
                m += 1
            previous_was_vowel = is_vowel
        return m

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        """*o: stem ends cvc where the final c is not w, x or y."""
        if len(word) < 3:
            return False
        return (
            self._is_consonant(word, len(word) - 3)
            and not self._is_consonant(word, len(word) - 2)
            and self._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- rule application -------------------------------------------------

    def _replace(self, word: str, suffix: str, replacement: str, m_min: int) -> str:
        """Apply ``suffix -> replacement`` if measure of the stem > m_min."""
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > m_min:
            return stem + replacement
        return word

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            if word.endswith(suffix):
                return self._replace(word, suffix, replacement, 0)
        return word

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            if word.endswith(suffix):
                return self._replace(word, suffix, replacement, 0)
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
            return word
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word


_DEFAULT_STEMMER = PorterStemmer()


@lru_cache(maxsize=1 << 18)
def stem(word: str) -> str:
    """Shared, memoized stem of ``word``.

    Every subsystem on the hot match path (event store, query engine,
    TextRank, corpus filters, the pipeline's query helper) goes through
    this one table: vocabularies are small and Zipf-distributed, so the
    same words would otherwise be re-stemmed millions of times — once per
    module-private stemmer instance.

    >>> stem("investigations")
    'investig'
    >>> stem("crashes")
    'crash'
    """
    return _DEFAULT_STEMMER.stem(word)
