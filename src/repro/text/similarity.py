"""Similarity measures on sparse vectors and sets.

These are the primitives from which snippet-snippet, snippet-story and
story-story similarity (Sections 2.2 and 2.3 of the paper) are composed.
All functions return a value in ``[0, 1]`` and define the similarity of two
empty inputs as ``0.0`` — an empty snippet should never look like a match.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, Mapping

SparseVector = Mapping[int, float]


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine of the angle between sparse vectors ``a`` and ``b``.

    >>> cosine_similarity({1: 1.0}, {1: 2.0})
    1.0
    >>> cosine_similarity({1: 1.0}, {2: 1.0})
    0.0
    """
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(weight * b.get(term_id, 0.0) for term_id, weight in a.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return min(1.0, dot / (norm_a * norm_b))


def jaccard_similarity(a: AbstractSet, b: AbstractSet) -> float:
    """|a ∩ b| / |a ∪ b|; 0.0 when both sets are empty.

    >>> round(jaccard_similarity({1, 2}, {2, 3}), 3)
    0.333
    """
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


def weighted_jaccard(a: SparseVector, b: SparseVector) -> float:
    """Weighted (min/max) Jaccard similarity of non-negative sparse vectors.

    Used by story sketches, whose decayed term weights are frequencies
    rather than TF-IDF scores.
    """
    if not a or not b:
        return 0.0
    keys = set(a) | set(b)
    numerator = 0.0
    denominator = 0.0
    for key in keys:
        wa = a.get(key, 0.0)
        wb = b.get(key, 0.0)
        numerator += min(wa, wb)
        denominator += max(wa, wb)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def dice_similarity(a: AbstractSet, b: AbstractSet) -> float:
    """Sørensen–Dice coefficient: 2|a ∩ b| / (|a| + |b|)."""
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def overlap_coefficient(a: AbstractSet, b: AbstractSet) -> float:
    """|a ∩ b| / min(|a|, |b|) — forgiving when one side is much smaller.

    Entity overlap between a 2-entity snippet and a 40-entity story should
    not be punished for the story's breadth, so entity matching uses this
    instead of Jaccard.
    """
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def temporal_proximity(t1: float, t2: float, scale: float) -> float:
    """Exponential-decay closeness of two timestamps, in ``[0, 1]``.

    ``scale`` is the characteristic decay (in the same unit as the
    timestamps): at ``|t1 - t2| == scale`` the proximity is ``1/e``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return math.exp(-abs(t1 - t2) / scale)


def combine_weighted(scores: Dict[str, float], weights: Dict[str, float]) -> float:
    """Convex combination of named component ``scores`` by ``weights``.

    Components missing from ``scores`` contribute 0; weights are normalized
    so callers can pass any non-negative relative weighting.
    """
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(
        weight * scores.get(name, 0.0) for name, weight in weights.items()
    ) / total_weight
