"""TextRank keyword extraction (Mihalcea & Tarau 2004).

An alternative to TF-IDF ranking for the annotator's keyword channel:
content words become graph nodes, co-occurrence within a sliding window
adds edges, and PageRank scores rank the words.  Unlike TF-IDF it needs no
corpus statistics, so it behaves identically on the first document and the
millionth — useful when the extraction service must be stateless.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.text.stem import stem as stem_word
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import word_tokens


def _content_words(text: str, stem: bool) -> List[str]:
    words = [w for w in word_tokens(text) if w not in STOPWORDS and len(w) > 2]
    if stem:
        words = [stem_word(w) for w in words]
    return words


def cooccurrence_graph(
    words: Sequence[str], window: int = 3
) -> Dict[str, Dict[str, float]]:
    """Undirected weighted co-occurrence graph over ``words``.

    Two words are linked when they appear within ``window`` positions of
    each other; repeated co-occurrence increases the edge weight.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    graph: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for i, word in enumerate(words):
        for j in range(i + 1, min(i + window, len(words))):
            other = words[j]
            if other == word:
                continue
            graph[word][other] += 1.0
            graph[other][word] += 1.0
    return {node: dict(edges) for node, edges in graph.items()}


def pagerank(
    graph: Dict[str, Dict[str, float]],
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-6,
) -> Dict[str, float]:
    """Weighted PageRank with uniform teleport; converges or stops at cap."""
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    nodes = sorted(graph)
    if not nodes:
        return {}
    score = {node: 1.0 / len(nodes) for node in nodes}
    out_weight = {
        node: sum(graph[node].values()) or 1.0 for node in nodes
    }
    teleport = (1.0 - damping) / len(nodes)
    for _ in range(iterations):
        next_score = {}
        for node in nodes:
            incoming = 0.0
            for neighbor, weight in graph[node].items():
                incoming += score[neighbor] * weight / out_weight[neighbor]
            next_score[node] = teleport + damping * incoming
        delta = max(abs(next_score[n] - score[n]) for n in nodes)
        score = next_score
        if delta < tolerance:
            break
    return score


def textrank_keywords(
    text: str,
    max_keywords: int = 6,
    window: int = 3,
    stem: bool = True,
) -> List[Tuple[str, float]]:
    """Top keywords of ``text`` with their TextRank scores.

    >>> words = [w for w, _ in textrank_keywords(
    ...     "the crash investigation continued as crash investigators "
    ...     "searched the crash site", max_keywords=2)]
    >>> "crash" in words
    True
    """
    if max_keywords <= 0:
        raise ValueError("max_keywords must be positive")
    words = _content_words(text, stem)
    if not words:
        return []
    if len(set(words)) == 1:
        return [(words[0], 1.0)]
    graph = cooccurrence_graph(words, window=window)
    scores = pagerank(graph)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:max_keywords]


class TextRankAnnotator:
    """Drop-in keyword backend for the extraction annotator.

    Mirrors the keyword half of :class:`repro.extraction.annotate.Annotator`
    but is stateless: no corpus statistics, no warm-up drift.
    """

    def __init__(self, max_keywords: int = 6, window: int = 3) -> None:
        self.max_keywords = max_keywords
        self.window = window

    def keywords(self, text: str) -> Tuple[str, ...]:
        return tuple(
            word for word, _ in textrank_keywords(
                text, max_keywords=self.max_keywords, window=self.window
            )
        )
