"""Bag-of-words and TF-IDF vectorization.

Snippet contents are short (a title plus a paragraph), so vectors are kept
as sparse ``{term_id: weight}`` dictionaries rather than numpy arrays; the
matchers compute cosine similarity directly on these dictionaries.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import word_tokens
from repro.text.vocab import Vocabulary

SparseVector = Dict[int, float]


class BagOfWords:
    """Turn raw text into stemmed, stopword-free term-count dictionaries."""

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        use_stemming: bool = True,
        remove_stops: bool = True,
    ) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._use_stemming = use_stemming
        self._remove_stops = remove_stops

    def terms(self, text: str) -> List[str]:
        """Normalized terms of ``text`` (tokenized, filtered, stemmed)."""
        tokens = word_tokens(text)
        if self._remove_stops:
            tokens = [t for t in tokens if t not in STOPWORDS]
        if self._use_stemming:
            tokens = [stem(t) for t in tokens]
        return tokens

    def counts(self, text: str) -> Dict[int, int]:
        """Sparse term-id -> count mapping for ``text``."""
        if self.vocabulary.frozen:
            ids = self.vocabulary.encode(self.terms(text), skip_unknown=True)
        else:
            ids = self.vocabulary.encode(self.terms(text))
        return dict(Counter(ids))


class TfIdfVectorizer:
    """Incremental TF-IDF weighting over a growing corpus.

    Unlike scikit-learn's batch vectorizer, document frequencies update as
    snippets stream in, matching StoryPivot's incremental processing model.
    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so weights are
    defined even for terms seen in every document.
    """

    def __init__(self, bag: Optional[BagOfWords] = None) -> None:
        self.bag = bag if bag is not None else BagOfWords()
        self._document_frequency: Counter = Counter()
        self._num_documents = 0

    @property
    def num_documents(self) -> int:
        """Number of texts observed via :meth:`observe`."""
        return self._num_documents

    def observe(self, text: str) -> None:
        """Update document frequencies with one more text."""
        counts = self.bag.counts(text)
        self._document_frequency.update(counts.keys())
        self._num_documents += 1

    def idf(self, term_id: int) -> float:
        """Smoothed inverse document frequency of ``term_id``."""
        df = self._document_frequency.get(term_id, 0)
        return math.log((1.0 + self._num_documents) / (1.0 + df)) + 1.0

    def vector(self, text: str, normalize: bool = True) -> SparseVector:
        """TF-IDF vector of ``text`` under current corpus statistics.

        Term frequency is sub-linear (``1 + log tf``), the standard choice
        for short news text.  With ``normalize`` the vector has unit L2 norm.
        """
        counts = self.bag.counts(text)
        vector: SparseVector = {}
        for term_id, count in counts.items():
            tf = 1.0 + math.log(count)
            vector[term_id] = tf * self.idf(term_id)
        if normalize and vector:
            norm = math.sqrt(sum(w * w for w in vector.values()))
            if norm > 0:
                vector = {term_id: w / norm for term_id, w in vector.items()}
        return vector

    def fit_transform(
        self, texts: Sequence[str], normalize: bool = True
    ) -> List[SparseVector]:
        """Observe all ``texts`` first, then vectorize each of them."""
        for text in texts:
            self.observe(text)
        return [self.vector(text, normalize=normalize) for text in texts]


def merge_counts(vectors: Iterable[Dict[int, float]]) -> Dict[int, float]:
    """Sum sparse vectors term-wise (used to build story centroids)."""
    merged: Dict[int, float] = {}
    for vector in vectors:
        for term_id, weight in vector.items():
            merged[term_id] = merged.get(term_id, 0.0) + weight
    return merged
