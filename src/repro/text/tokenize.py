"""Tokenization primitives.

The extraction pipeline breaks documents into excerpts and excerpts into
tokens.  We keep tokenization deliberately simple and deterministic: words
are maximal runs of letters/digits (with internal apostrophes and hyphens),
lower-cased on request, with span information preserved so annotators can
map entities back into the original text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*")
_SENTENCE_RE = re.compile(r"[^.!?]+[.!?]?")


@dataclass(frozen=True)
class Token:
    """A single token with its position in the source text.

    ``text`` is the raw surface form; ``start``/``end`` are character offsets
    into the string that was tokenized (``end`` exclusive).
    """

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        """Lower-cased surface form."""
        return self.text.lower()

    def __len__(self) -> int:
        return self.end - self.start


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into :class:`Token` objects with character spans.

    >>> [t.text for t in tokenize("Plane crash over Ukraine!")]
    ['Plane', 'crash', 'over', 'Ukraine']
    """
    return [
        Token(match.group(0), match.start(), match.end())
        for match in _WORD_RE.finditer(text)
    ]


def word_tokens(text: str, lowercase: bool = True) -> List[str]:
    """Return plain word strings, lower-cased by default.

    This is the convenience entry point used by the vectorizer and matchers
    that do not need span information.
    """
    if lowercase:
        return [match.group(0).lower() for match in _WORD_RE.finditer(text)]
    return [match.group(0) for match in _WORD_RE.finditer(text)]


def sentences(text: str) -> Iterator[str]:
    """Yield sentence-like segments of ``text``.

    Sentence splitting only needs to be good enough for excerpt generation;
    we split on ``.!?`` and strip whitespace, skipping empty segments.
    """
    for match in _SENTENCE_RE.finditer(text):
        segment = match.group(0).strip()
        if segment:
            yield segment


def ngrams(tokens: List[str], n: int) -> Iterator[tuple]:
    """Yield successive ``n``-grams (as tuples) from ``tokens``.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def shingles(text: str, k: int = 3) -> set:
    """Return the set of ``k``-word shingles of ``text``.

    Shingles are the unit hashed by MinHash sketches.  For texts shorter
    than ``k`` words the full token tuple is returned as a single shingle so
    that no text maps to the empty set unless it has no tokens at all.
    """
    tokens = word_tokens(text)
    if not tokens:
        return set()
    if len(tokens) < k:
        return {tuple(tokens)}
    return set(ngrams(tokens, k))
