"""Per-client token-bucket rate limiting.

Each client (keyed by remote address) owns a token bucket that refills
continuously at ``rate`` tokens/second up to ``burst``.  A request
consumes one token; when the bucket is dry the limiter reports the time
until the next token, which the server surfaces as ``429`` with a
``Retry-After`` header.

The limiter caps the number of tracked clients (LRU) so an address scan
cannot grow memory without bound; an evicted client simply starts over
with a full bucket, which errs on the side of serving.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Tuple


class TokenBucket:
    """One client's bucket: continuous refill, capped at ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, now: float) -> Tuple[bool, float]:
        """Try to consume one token; (allowed, seconds-until-next-token)."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        deficit = 1.0 - self.tokens
        return False, deficit / self.rate if self.rate > 0 else float("inf")


class RateLimiter:
    """Thread-safe per-key token buckets with an LRU client cap.

    ``rate <= 0`` disables limiting (every request is allowed) so the
    server can be configured wide open for trusted/internal use.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 20.0,
        max_clients: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1.0 and rate > 0:
            raise ValueError("burst must allow at least one request")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, key: str) -> Tuple[bool, float]:
        """(allowed, retry_after_seconds) for one request from ``key``."""
        if not self.enabled:
            return True, 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[key] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            self._buckets.move_to_end(key)
            allowed, retry_after = bucket.take(now)
            if not allowed:
                self.rejected += 1
            return allowed, retry_after
