"""Endpoint handlers: pure functions from (ReadView, params) to JSON.

Routing and rendering are HTTP-free so they can be tested without a
socket: :func:`route` maps a path + query-string dict to a
:class:`RouteResult` holding a status code and a JSON-serializable
payload.  Every payload carries the generation of the view it was
rendered from — a handler receives the view *once*, so a response can
never mix two generations.

List endpoints paginate with an opaque cursor (``?limit=&cursor=``): the
cursor encodes the offset of the next page and round-trips unchanged
through clients.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import unquote

from repro.query.engine import QueryEngine
from repro.query.parser import QuerySyntaxError

from repro.server.views import ReadView

DEFAULT_PAGE = 20
MAX_PAGE = 200


@dataclass
class RouteResult:
    """Status + payload of one routed request."""

    status: int
    payload: Dict[str, object]


class ApiError(Exception):
    """A client error with an HTTP status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


# -- pagination cursors ----------------------------------------------------

def encode_cursor(offset: int) -> str:
    return base64.urlsafe_b64encode(f"o:{offset}".encode("ascii")).decode(
        "ascii"
    )


def decode_cursor(cursor: str) -> int:
    try:
        text = base64.urlsafe_b64decode(cursor.encode("ascii")).decode(
            "ascii"
        )
        prefix, _, value = text.partition(":")
        if prefix != "o":
            raise ValueError(text)
        offset = int(value)
    except (ValueError, binascii.Error, UnicodeDecodeError):
        raise ApiError(400, f"malformed cursor {cursor!r}")
    if offset < 0:
        raise ApiError(400, "cursor offset must be non-negative")
    return offset


def _page_params(params: Dict[str, str]) -> Tuple[int, int]:
    """(limit, offset) from ``?limit=&cursor=``, validated."""
    raw_limit = params.get("limit", "")
    try:
        limit = int(raw_limit) if raw_limit else DEFAULT_PAGE
    except ValueError:
        raise ApiError(400, f"limit must be an integer, got {raw_limit!r}")
    if limit <= 0:
        raise ApiError(400, "limit must be positive")
    limit = min(limit, MAX_PAGE)
    cursor = params.get("cursor", "")
    offset = decode_cursor(cursor) if cursor else 0
    return limit, offset


def _paginate(
    rows: Sequence[Dict[str, object]], limit: int, offset: int
) -> Tuple[List[Dict[str, object]], Optional[str]]:
    page = list(rows[offset:offset + limit])
    next_cursor = (
        encode_cursor(offset + limit) if offset + limit < len(rows) else None
    )
    return page, next_cursor


# -- endpoints -------------------------------------------------------------

def healthz(view: ReadView, params: Dict[str, str]) -> RouteResult:
    return RouteResult(200, {
        "status": "ok",
        "generation": view.generation,
        "dataset": view.dataset,
        "num_stories": len(view.stories),
    })


def list_stories(view: ReadView, params: Dict[str, str]) -> RouteResult:
    limit, offset = _page_params(params)
    page, next_cursor = _paginate(view.stories, limit, offset)
    return RouteResult(200, {
        "generation": view.generation,
        "total": len(view.stories),
        "stories": page,
        "next_cursor": next_cursor,
    })


def story_detail(
    view: ReadView, story_id: str, params: Dict[str, str]
) -> RouteResult:
    detail = view.story_details.get(story_id)
    if detail is None:
        raise ApiError(404, f"no integrated story {story_id!r}")
    return RouteResult(200, {
        "generation": view.generation,
        "story": detail,
    })


def story_snippets(
    view: ReadView, story_id: str, params: Dict[str, str]
) -> RouteResult:
    rows = view.story_snippets.get(story_id)
    if rows is None:
        raise ApiError(404, f"no integrated story {story_id!r}")
    limit, offset = _page_params(params)
    page, next_cursor = _paginate(rows, limit, offset)
    return RouteResult(200, {
        "generation": view.generation,
        "story_id": story_id,
        "total": len(rows),
        "snippets": page,
        "next_cursor": next_cursor,
    })


def list_sources(view: ReadView, params: Dict[str, str]) -> RouteResult:
    return RouteResult(200, {
        "generation": view.generation,
        "sources": view.sources,
    })


def source_stories(
    view: ReadView, source_id: str, params: Dict[str, str]
) -> RouteResult:
    rows = view.source_stories.get(source_id)
    if rows is None:
        raise ApiError(404, f"no source {source_id!r}")
    limit, offset = _page_params(params)
    page, next_cursor = _paginate(rows, limit, offset)
    return RouteResult(200, {
        "generation": view.generation,
        "source_id": source_id,
        "total": len(rows),
        "stories": page,
        "next_cursor": next_cursor,
    })


def stats(view: ReadView, params: Dict[str, str]) -> RouteResult:
    return RouteResult(200, {
        "generation": view.generation,
        "stats": view.stats,
    })


def query(view: ReadView, params: Dict[str, str]) -> RouteResult:
    text = params.get("q", "").strip()
    if not text:
        raise ApiError(400, "missing or empty query parameter 'q'")
    limit, offset = _page_params(params)
    engine = QueryEngine(view.alignment)  # O(1): vocab cached per alignment
    try:
        # fetch one extra hit to learn whether a next page exists
        hits = engine.execute(text, limit=limit + 1, offset=offset)
    except QuerySyntaxError as exc:
        raise ApiError(400, f"bad query: {exc}")
    except ValueError as exc:
        raise ApiError(400, str(exc))
    next_cursor = encode_cursor(offset + limit) if len(hits) > limit else None
    results = [
        {
            "story": view.story_details[hit.story.aligned_id],
            "relevance": hit.relevance,
            "matched": list(hit.matched),
        }
        for hit in hits[:limit]
    ]
    return RouteResult(200, {
        "generation": view.generation,
        "query": text,
        "results": results,
        "next_cursor": next_cursor,
    })


# -- routing ---------------------------------------------------------------

def route(view: ReadView, path: str, params: Dict[str, str]) -> RouteResult:
    """Dispatch one request path against ``view``.

    Raises :class:`ApiError` for client errors (bad paths, unknown ids,
    malformed parameters).
    """
    parts = [unquote(p) for p in path.strip("/").split("/") if p]
    if not parts:
        return RouteResult(200, {
            "generation": view.generation,
            "endpoints": sorted(ENDPOINTS),
        })
    head = parts[0]
    if head == "healthz" and len(parts) == 1:
        return healthz(view, params)
    if head == "stats" and len(parts) == 1:
        return stats(view, params)
    if head == "query" and len(parts) == 1:
        return query(view, params)
    if head == "stories":
        if len(parts) == 1:
            return list_stories(view, params)
        if len(parts) == 2:
            return story_detail(view, parts[1], params)
        if len(parts) == 3 and parts[2] == "snippets":
            return story_snippets(view, parts[1], params)
    if head == "sources":
        if len(parts) == 1:
            return list_sources(view, params)
        if len(parts) == 2 and parts[1] in view.source_stories:
            raise ApiError(
                404, f"unknown endpoint /sources/{parts[1]}; "
                     f"did you mean /sources/{parts[1]}/stories?"
            )
        if len(parts) == 3 and parts[2] == "stories":
            return source_stories(view, parts[1], params)
    raise ApiError(404, f"unknown endpoint {path!r}")


ENDPOINTS = (
    "/healthz",
    "/metricz",
    "/tracez",
    "/storyz/{id}/history",
    "/subscribez?story=...&entity=...&source=...",
    "/stats",
    "/stories",
    "/stories/{id}",
    "/stories/{id}/snippets",
    "/sources",
    "/sources/{id}/stories",
    "/query?q=...",
)
