"""``storypivot-api`` — serve the read-path HTTP API from the shell.

Three modes over the same endpoints:

* **static** (default): run the full pipeline over the input corpus once,
  materialize one :class:`~repro.server.views.ReadView` and serve it;
* ``--follow``: ingest the corpus through a live
  :class:`~repro.runtime.runtime.ShardedRuntime` *while serving* — a
  background refresher rebuilds and atomically swaps the view as
  ingestion advances, so clients watch the story set grow;
* ``--demo``: the built-in MH17 two-source corpus (either mode).

Examples::

    storypivot-api --demo                       # demo corpus on :8321
    storypivot-api corpus.jsonl --port 9000 --rate-limit 50 --burst 100
    storypivot-api --synthetic 500 --follow --refresh-interval 0.5
    curl -s localhost:8321/stories | python -m json.tool
    curl -s localhost:8321/metricz?format=text
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Optional, Sequence

from repro.core.config import StoryPivotConfig
from repro.core.pipeline import StoryPivot
from repro.errors import StoryPivotError
from repro.eventdata.models import DAY
from repro.obs import DecisionLog, SpanStore, Tracer
from repro.obs.fleet import FleetCollector
from repro.obs.propagate import make_node_id
from repro.obs.slo import SLOEngine, default_objectives
from repro.push import EventBus
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.runtime import RuntimeOptions, ShardedRuntime

from repro.server.app import StoryPivotAPI
from repro.server.views import ViewRefresher, ViewStore

DEFAULT_PORT = 8321


def build_parser(prog: str = "storypivot-api") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Serve the StoryPivot read-path HTTP API.",
    )
    parser.add_argument("corpus", nargs="?", default=None,
                        help="corpus file (JSONL or GDELT TSV)")
    parser.add_argument("--demo", action="store_true",
                        help="use the built-in MH17 demo corpus")
    parser.add_argument("--synthetic", type=int, default=None, metavar="N",
                        help="generate a synthetic corpus with N events")
    parser.add_argument("--source", default=None, metavar="SPEC",
                        help="serve a live source connector (requires "
                             "--follow): scheme:locator, e.g. "
                             "jsonl:events.jsonl, rss:feed.xml, "
                             "gdelt:export.tsv, sim:500")
    parser.add_argument("--sources", type=int, default=5,
                        help="sources for --synthetic (default 5)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--si", choices=["temporal", "complete", "single_pass"],
                        default="temporal", help="identification mode")
    parser.add_argument("--window-days", type=float, default=None,
                        help="sliding-window radius ω in days")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--cache-size", type=int, default=512, metavar="N",
                        help="response cache entries (0 disables; default 512)")
    parser.add_argument("--rate-limit", type=float, default=0.0, metavar="RPS",
                        help="per-client requests/second (0 = unlimited)")
    parser.add_argument("--burst", type=float, default=20.0,
                        help="rate-limiter burst size (default 20)")
    parser.add_argument("--follow", action="store_true",
                        help="serve while ingesting through the sharded "
                             "runtime; the view refreshes as data arrives")
    parser.add_argument("--workers", "-j", type=int, default=2, metavar="N",
                        help="shard workers for --follow (default 2)")
    parser.add_argument("--refresh-interval", type=float, default=1.0,
                        metavar="SEC", help="--follow view rebuild cadence")
    parser.add_argument("--lag-budget", type=float, default=None,
                        metavar="SEC",
                        help="--follow staleness budget: past this, data "
                             "requests are shed with 503 + Retry-After "
                             "(default: serve stale indefinitely)")
    parser.add_argument("--access-log", action="store_true",
                        help="write JSON access log lines to stderr")
    parser.add_argument("--trace-sample", type=float, default=0.0,
                        metavar="RATE",
                        help="head-sampling rate in [0, 1] for pipeline and "
                             "request traces (error traces are always kept; "
                             "default 0.0)")
    parser.add_argument("--wal-dir", default=None, metavar="DIR",
                        help="--follow: state directory for WAL/checkpoints; "
                             "the decision log and sampled traces are "
                             "exported next to them as JSONL")
    parser.add_argument("--replication-port", type=int, default=None,
                        metavar="PORT",
                        help="--follow + --wal-dir: also ship WAL segments "
                             "and snapshots to followers on this port "
                             "(0 = ephemeral); see storypivot-replica")
    parser.add_argument("--push-queue", type=int, default=256, metavar="N",
                        help="per-subscriber event queue capacity for "
                             "/subscribez (default 256)")
    parser.add_argument("--push-policy", default="drop",
                        choices=["block", "drop", "sample"],
                        help="default backpressure policy for slow "
                             "subscribers (default drop; block still "
                             "bounds the wait, see DESIGN)")
    parser.add_argument("--push-ring", type=int, default=4096, metavar="N",
                        help="replay ring capacity for resume after "
                             "reconnect (default 4096 events)")
    parser.add_argument("--max-subscribers", type=int, default=4096,
                        metavar="N",
                        help="concurrent /subscribez streams before new "
                             "ones are refused with 503 (default 4096)")
    parser.add_argument("--chaos", default=None, metavar="PROFILE",
                        help="--follow: inject deterministic faults into "
                             "the feed, shards and WAL (off, default, "
                             "feed-flap, poison, torn-wal)")
    parser.add_argument("--lockwatch", action="store_true",
                        help="instrument every lock and print an "
                             "order-inversion report at shutdown")
    parser.add_argument("--node-id", default=None, metavar="ID",
                        help="fleet identity stamped on spans, /clusterz "
                             "rows and the X-StoryPivot-Node header "
                             "(default: role@host:port)")
    parser.add_argument("--trace-export-mb", type=int, default=64,
                        metavar="MB",
                        help="rotate the JSONL trace export past this "
                             "size, keeping --trace-keep sealed files "
                             "(default 64)")
    parser.add_argument("--trace-keep", type=int, default=3, metavar="N",
                        help="sealed trace-export files retained after "
                             "rotation (default 3)")
    return parser


def _make_config(args: argparse.Namespace) -> StoryPivotConfig:
    factory = {
        "temporal": StoryPivotConfig.temporal,
        "complete": StoryPivotConfig.complete,
        "single_pass": StoryPivotConfig.single_pass,
    }[args.si]
    overrides = {}
    if args.window_days is not None:
        overrides["window"] = args.window_days * DAY
        overrides["decay_half_life"] = args.window_days * DAY
    return factory(**overrides)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.cli import _load_corpus  # deferred: cli dispatches widely

    connector = None
    if args.source is not None:
        if args.corpus or args.demo or args.synthetic is not None:
            parser.exit(2, "error: --source replaces the corpus input; "
                           "give one or the other\n")
        if not args.follow:
            parser.exit(2, "error: --source requires --follow (a live "
                           "connector feeds the runtime while serving)\n")
    elif not (args.corpus or args.demo or args.synthetic is not None):
        parser.exit(2, "error: no input: give a corpus file, --demo, "
                       "--synthetic N, or --source SPEC with --follow\n")
    if args.replication_port is not None and not (args.follow and args.wal_dir):
        parser.exit(2, "error: --replication-port requires --follow and "
                       "--wal-dir (followers tail the per-shard WAL)\n")
    if args.chaos is not None and not args.follow:
        parser.exit(2, "error: --chaos requires --follow\n")
    tsv_skip_reasons: dict = {}
    try:
        if args.source is not None:
            from repro.connect import open_source, source_corpus_shell

            connector = open_source(args.source)
            corpus = source_corpus_shell(args.source, connector)
        else:
            corpus = _load_corpus(args, skip_reasons=tsv_skip_reasons)
        config = _make_config(args)
    except (OSError, StoryPivotError) as exc:
        parser.exit(2, f"error: {exc}\n")

    lockwatch = None
    if args.lockwatch:
        from repro.analysis.lockwatch import LockWatch

        # installed before the runtime builds its object graph so every
        # shard/queue/metric/breaker lock created below is instrumented
        lockwatch = LockWatch().install()

    store = ViewStore(dataset=corpus.name)
    runtime = None
    refresher = None
    feeder = None
    replication = None
    injector = None

    node_id = args.node_id or make_node_id(
        "leader" if args.follow else "api", args.port or None
    )
    export_path = (
        os.path.join(args.wal_dir, "traces.jsonl") if args.wal_dir else None
    )
    span_store = SpanStore(
        export_path=export_path,
        export_max_bytes=args.trace_export_mb * 1024 * 1024,
        export_keep_files=args.trace_keep,
    )
    tracer = Tracer(
        sample_rate=args.trace_sample, store=span_store, node_id=node_id
    )

    if args.follow:
        runtime = ShardedRuntime(
            config,
            RuntimeOptions(num_shards=args.workers, wal_dir=args.wal_dir),
            tracer=tracer,
        ).start()
        # TSV rows skipped at load time surface on /metricz alongside the
        # live-connector reject tallies (same metric family, same reasons)
        for reason, count in sorted(tsv_skip_reasons.items()):
            runtime.metrics.counter(
                "connect.rejected", connector="gdelt-tsv", reason=reason
            ).inc(count)
        if args.chaos is not None:
            from repro.resilience.faults import FaultInjector, resolve_profile

            try:
                profile = resolve_profile(args.chaos)
            except StoryPivotError as exc:
                runtime.stop()
                parser.exit(2, f"error: {exc}\n")
            injector = FaultInjector(
                seed=args.seed, profile=profile, metrics=runtime.metrics
            )
            for shard in runtime._shards:
                shard.fault_hook = injector.shard_fault_hook(shard.shard_id)
                if shard.wal is not None and profile.torn_write_rate:
                    shard.wal = injector.wrap_wal(shard.wal, shard.shard_id)
        if args.replication_port is not None:
            from repro.replication import ReplicationServer
            from repro.replication.follower import source_meta_record

            replication = ReplicationServer(
                runtime,
                host=args.host,
                port=args.replication_port,
                dataset=corpus.name,
                sources=source_meta_record(corpus),
                tracer=tracer,
            ).start()
        decisions = runtime.decisions
        bus = EventBus(
            replay_capacity=args.push_ring,
            queue_capacity=args.push_queue,
            policy=args.push_policy,
            max_subscribers=args.max_subscribers,
            metrics=runtime.metrics,
            tracer=tracer,
        ).attach(decisions)
        refresher = ViewRefresher(
            runtime, store, interval=args.refresh_interval, corpus=corpus,
            lag_budget=args.lag_budget, metrics=runtime.metrics,
            tracer=tracer, decisions=decisions,
            # generation = accepted-snippet count whenever followers may
            # be attached, so leader and follower ETags agree per
            # generation rather than per refresh tick
            pin_generations=replication is not None,
            bus=bus,
        ).start()

        def _feed() -> None:
            if connector is not None:
                from repro.connect import ConnectorStream

                runtime.consume(ConnectorStream(
                    connector, runtime=runtime, injector=injector
                ))
                return
            snippets = corpus.snippets_by_publication()
            if injector is not None:
                from repro.connect import build_resilient_feed

                snippets = build_resilient_feed(snippets, injector=injector)
            runtime.consume(snippets)

        feeder = threading.Thread(
            target=_feed, name="storypivot-feeder", daemon=True,
        )
        feeder.start()
        metrics = runtime.metrics
    else:
        decisions = DecisionLog()
        metrics = MetricsRegistry()
        bus = EventBus(
            replay_capacity=args.push_ring,
            queue_capacity=args.push_queue,
            policy=args.push_policy,
            max_subscribers=args.max_subscribers,
            metrics=metrics,
            tracer=tracer,
        ).attach(decisions)
        pivot = StoryPivot(config, decision_log=decisions)
        with tracer.start_trace("pipeline.run", dataset=corpus.name):
            result = pivot.run(corpus)
        view = store.install(result, corpus=corpus)
        # static mode still serves /subscribez: the stream carries the
        # one generation event plus any history replay a cursor asks for
        bus.note_view(view)

    span_store.bind_metrics(metrics)
    # the fleet plane: /clusterz on any node that leads followers, and a
    # burn-rate SLO engine on every node (its ticker is the cadence the
    # 5m/1h windows are evaluated over between /sloz polls)
    fleet = None
    if replication is not None:
        fleet = FleetCollector(
            metrics, node_id, role="leader",
            replication=replication, store=store,
        )
    slo = SLOEngine(default_objectives(
        metrics, refresher=refresher, runtime=runtime,
        staleness_limit=args.lag_budget,
    )).start(interval=2.0)

    api = StoryPivotAPI(
        store,
        host=args.host,
        port=args.port,
        metrics=metrics,
        cache_entries=args.cache_size,
        rate_limit=args.rate_limit,
        burst=args.burst,
        access_log=sys.stderr if args.access_log else None,
        refresher=refresher,
        runtime=runtime,
        tracer=tracer,
        decisions=decisions,
        replication=replication,
        bus=bus,
        node_id=node_id,
        fleet=fleet,
        slo=slo,
    )
    api.start()
    print(f"serving {corpus.name} on {api.address} "
          f"(generation {store.generation})", flush=True)
    if replication is not None:
        print(f"replicating on {replication.address}", flush=True)

    stop = threading.Event()

    def _shutdown(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        print("shutting down: draining in-flight requests", flush=True)
        slo.stop()
        api.close()
        if replication is not None:
            replication.close()
        if refresher is not None:
            refresher.stop()
        if feeder is not None:
            feeder.join(timeout=5.0)
        if runtime is not None:
            runtime.stop()
        if lockwatch is not None:
            lockwatch.uninstall()
        if injector is not None and runtime is not None:
            # same accounting line the chaos-smoke CI jobs grep for:
            # every arrival accepted, deduplicated, shed, or quarantined
            stats = runtime.stats()
            counts = injector.counts()
            injected = sum(counts.values())
            accounted = (
                stats["accepted"] + stats["duplicates"]
                + stats["dropped"] + stats["quarantined"]
                + stats["rejected"]
            )
            # rejects never counted as arrived (turned away at admission),
            # so connector arrivals = arrived + rejected on both sides
            total_arrived = stats["arrived"] + stats["rejected"]
            verdict = "OK" if accounted == total_arrived else "MISMATCH"
            detail = ", ".join(
                f"{kind}={counts[kind]}" for kind in sorted(counts)
            ) or "none"
            print(
                f"chaos[{injector.profile.name}] seed={args.seed}: "
                f"{injected} fault(s) injected ({detail}); accounting "
                f"{total_arrived} arrived = {stats['accepted']} accepted "
                f"+ {stats['duplicates']} dup + {stats['dropped']} dropped "
                f"+ {stats['quarantined']} quarantined "
                f"+ {stats['rejected']} rejected -> {verdict}",
                flush=True,
            )
        if lockwatch is not None:
            print(lockwatch.render_report(), flush=True)
        span_store.close()
    return 0


def _console_entry() -> int:
    try:
        return main()
    except BrokenPipeError:
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)


if __name__ == "__main__":
    raise SystemExit(_console_entry())
