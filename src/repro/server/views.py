"""Immutable materialized read views for the HTTP API.

The server never serves straight from pivot/alignment structures: every
response is rendered from a :class:`ReadView` — a frozen, fully
materialized snapshot of one :class:`~repro.core.pipeline.PivotResult`
(story listings, per-source listings, snippet rows, statistics) built
once and then only *read*.  A :class:`ViewStore` holds the current view
behind a single attribute that is swapped atomically, so request handlers
grab the view once, render everything from it, and can never observe a
torn mixture of two generations — ingestion and serving share no locks.

``generation`` is a monotonically increasing counter bumped on every
swap; it keys the response cache, feeds ETags, and is echoed in the
``X-StoryPivot-Generation`` response header.

:class:`ViewRefresher` rebuilds the view off a live
:class:`~repro.runtime.runtime.ShardedRuntime`: it polls the runtime's
accepted count on the realignment cadence and, when ingestion has
advanced, merges the shards (a read-only snapshot under the shard locks),
runs alignment and swaps in the fresh view.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.core.alignment import AlignedStory, Alignment
from repro.core.pipeline import PivotResult
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Snippet, format_timestamp
from repro.obs.trace import NULL_TRACER


def _snippet_record(snippet: Snippet, role: str) -> Dict[str, object]:
    return {
        "id": snippet.snippet_id,
        "source": snippet.source_id,
        "timestamp": snippet.timestamp,
        "time": format_timestamp(snippet.timestamp),
        "description": snippet.description,
        "entities": sorted(snippet.entities),
        "keywords": list(snippet.keywords),
        "role": role,
        "url": snippet.url,
    }


def canonicalize_result_ids(result: PivotResult) -> Dict[str, str]:
    """Rewrite a result's story and aligned ids to content-derived ones.

    Live ids come from process-global counters, so a leader and a
    follower materializing the *same* replicated state would still label
    its stories differently — and their view payloads (hence ETags)
    would disagree.  Re-keying per-source stories through
    :func:`~repro.core.persistence.canonical_story_ids` and renumbering
    aligned stories by their smallest member id makes the ids a pure
    function of story content, so equivalent results render
    byte-identically on every node.

    Mutates ``result`` in place; call only after ``finish()``, on a
    result whose story sets are a standalone merge (never on live shard
    state).  Returns the live→canonical id mapping so callers can teach
    other components (e.g. the DecisionLog) about the rename.
    """
    from repro.core.persistence import canonical_story_ids

    mapping: Dict[str, str] = {}
    for story_set in result.story_sets.values():
        renamed = canonical_story_ids(story_set)
        mapping.update(renamed)
        # two-phase: a canonical target id may currently be held by a
        # *different* story (restored from a canonical checkpoint)
        for old_id in renamed:
            story_set.rebind_story_id(old_id, "\x00" + old_id)
        for old_id, new_id in renamed.items():
            story_set.rebind_story_id("\x00" + old_id, new_id)
    # Story objects are shared with the alignment, so member ids are
    # already canonical — renumber the aligned stories and re-key maps
    alignment = result.alignment
    ordered = sorted(
        alignment.aligned.values(),
        key=lambda a: min(a.story_ids) if a.stories else a.aligned_id,
    )
    alignment.aligned = {}
    alignment.story_to_aligned = {}
    for index, aligned in enumerate(ordered):
        aligned.aligned_id = f"c'{index:06d}"
        alignment.aligned[aligned.aligned_id] = aligned
        for story in aligned.stories:
            alignment.story_to_aligned[story.story_id] = aligned.aligned_id
    alignment.edge_scores = {
        tuple(sorted((mapping.get(a, a), mapping.get(b, b)))): score
        for (a, b), score in alignment.edge_scores.items()
    }
    return mapping


def _story_summary(aligned: AlignedStory) -> Dict[str, object]:
    start, end = aligned.date_range()
    return {
        "id": aligned.aligned_id,
        "sources": aligned.source_ids,
        "num_sources": len(aligned.source_ids),
        "num_snippets": len(aligned),
        "entities": [name for name, _ in aligned.top_entities(3)],
        "description": [term for term, _ in aligned.top_terms(3)],
        "start": start,
        "end": end,
    }


def _story_detail(aligned: AlignedStory, alignment: Alignment) -> Dict[str, object]:
    start, end = aligned.date_range()
    return {
        "id": aligned.aligned_id,
        "sources": aligned.source_ids,
        "story_ids": aligned.story_ids,
        "num_snippets": len(aligned),
        "entities": [
            {"name": name, "count": count}
            for name, count in aligned.top_entities(5)
        ],
        "description": [
            {"term": term, "count": count}
            for term, count in aligned.top_terms(9)
        ],
        "start": start,
        "end": end,
        "start_timestamp": aligned.start,
        "end_timestamp": aligned.end,
    }


class ReadView:
    """One frozen, fully materialized snapshot of the pivot state.

    Everything a handler needs is precomputed into plain lists and dicts
    at build time; after construction the view is never mutated, so any
    number of request threads can read it without synchronization.
    """

    def __init__(
        self,
        result: PivotResult,
        generation: int,
        dataset: str = "corpus",
        corpus: Optional[Corpus] = None,
    ) -> None:
        self.generation = generation
        self.dataset = dataset
        self.built_at = time.time()
        #: trace id of the view.refresh that built this view (set by the
        #: refresher after install; None for static/empty views)
        self.trace_id: Optional[str] = None
        alignment = result.alignment
        self.alignment = alignment  # query engines bind to this

        ranked = sorted(
            alignment.aligned.values(),
            key=lambda a: (-len(a), a.aligned_id),
        )
        self.stories: List[Dict[str, object]] = [
            _story_summary(a) for a in ranked
        ]
        self.story_details: Dict[str, Dict[str, object]] = {
            a.aligned_id: _story_detail(a, alignment) for a in ranked
        }
        self.story_snippets: Dict[str, List[Dict[str, object]]] = {
            a.aligned_id: [
                _snippet_record(s, alignment.role(s.snippet_id))
                for s in a.snippets()
            ]
            for a in ranked
        }

        source_meta = dict(corpus.sources) if corpus is not None else {}
        self.source_stories: Dict[str, List[Dict[str, object]]] = {}
        self.sources: List[Dict[str, object]] = []
        for source_id in sorted(result.story_sets):
            story_set = result.story_sets[source_id]
            rows = []
            for story in story_set.stories_by_size():
                start, end = story.date_range()
                rows.append({
                    "id": story.story_id,
                    "num_snippets": len(story),
                    "start": start,
                    "end": end,
                    "aligned_id": alignment.story_to_aligned.get(
                        story.story_id
                    ),
                })
            self.source_stories[source_id] = rows
            meta = source_meta.get(source_id)
            self.sources.append({
                "id": source_id,
                "name": meta.name if meta is not None else source_id,
                "kind": meta.kind if meta is not None else "unknown",
                "num_stories": len(story_set),
                "num_snippets": story_set.num_snippets,
            })

        entities = set()
        timestamps: List[float] = []
        for aligned in ranked:
            entities |= set(aligned.entity_profile())
            timestamps.append(aligned.start)
            timestamps.append(aligned.end)
        self.stats: Dict[str, object] = {
            "dataset": dataset,
            "num_sources": len(result.story_sets),
            "num_snippets": sum(
                s.num_snippets for s in result.story_sets.values()
            ),
            "num_stories": result.num_stories,
            "num_integrated": result.num_integrated,
            "num_cross_source": len(alignment.cross_source_stories()),
            "num_entities": len(entities),
            "start": format_timestamp(min(timestamps)) if timestamps else None,
            "end": format_timestamp(max(timestamps)) if timestamps else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReadView(generation={self.generation}, "
            f"stories={len(self.stories)})"
        )


_EMPTY_RESULT = None


def empty_view() -> ReadView:
    """Generation-0 view served before the first build completes."""
    global _EMPTY_RESULT
    if _EMPTY_RESULT is None:
        _EMPTY_RESULT = PivotResult(
            story_sets={}, alignment=Alignment(), refinement=None
        )
    return ReadView(_EMPTY_RESULT, generation=0, dataset="empty")


class ViewStore:
    """Atomic holder of the current :class:`ReadView`.

    Readers call :meth:`current` — a single attribute read, no lock —
    while builders call :meth:`install`/:meth:`swap` under an internal
    lock that only serializes *writers*.  Generations are strictly
    monotonic: a swap never publishes an older view.
    """

    def __init__(self, dataset: str = "corpus") -> None:
        self.dataset = dataset
        self._lock = threading.Lock()
        self._view = empty_view()

    def current(self) -> ReadView:
        return self._view

    @property
    def generation(self) -> int:
        return self._view.generation

    def install(
        self,
        result: PivotResult,
        corpus: Optional[Corpus] = None,
        generation: Optional[int] = None,
    ) -> ReadView:
        """Build a view from ``result`` at the next generation and swap.

        An explicit ``generation`` pins the view to an external counter
        (replication pins it to the accepted-snippet count, so a leader
        and its followers assign the *same* generation to views built
        from the same ingested prefix — which makes their ETags
        comparable and monotonic reads possible across replicas).  A
        pinned generation that does not advance past the current view is
        a stale build: the current view is returned unchanged.
        """
        with self._lock:
            if generation is None:
                generation = self._view.generation + 1
            elif generation <= self._view.generation:
                return self._view
            view = ReadView(
                result,
                generation=generation,
                dataset=self.dataset,
                corpus=corpus,
            )
            self._view = view
        return view

    def swap(self, view: ReadView) -> ReadView:
        """Publish a pre-built view; refuses to move generations backwards."""
        with self._lock:
            if view.generation <= self._view.generation:
                raise ValueError(
                    f"generation must advance: have "
                    f"{self._view.generation}, got {view.generation}"
                )
            self._view = view
        return view


class ViewRefresher:
    """Background rebuilds of a :class:`ViewStore` off a live runtime.

    Polls ``runtime.accepted`` every ``interval`` seconds; when ingestion
    has advanced since the last build (or on :meth:`refresh` being called
    directly), takes a read-only merged snapshot of the shards, runs
    alignment/refinement on it, and swaps the result in.  The runtime is
    never blocked for longer than its own ``merged_pivot`` locking.

    Degradation contract: a rebuild failure never takes serving down —
    the last good view keeps being served, marked **stale**.
    :meth:`staleness` reports how far behind it is (0.0 when current),
    :meth:`health` summarizes it for ``/healthz``, and when a
    ``lag_budget`` is configured :meth:`should_shed` tells the server to
    answer data requests with 503 + Retry-After instead of serving
    arbitrarily old responses as if they were fresh.
    """

    def __init__(
        self,
        runtime,
        store: ViewStore,
        interval: float = 1.0,
        corpus: Optional[Corpus] = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
        lag_budget: Optional[float] = None,
        metrics=None,
        tracer=None,
        decisions=None,
        pin_generations: bool = False,
        bus=None,
    ) -> None:
        self.runtime = runtime
        self.store = store
        self.interval = interval
        self.corpus = corpus
        self.on_error = on_error
        self.lag_budget = lag_budget
        self.metrics = metrics
        #: push EventBus notified after each installed view (it rebuilds
        #: its entity/alignment filter indexes and publishes a
        #: ``generation`` event to every subscriber)
        self.bus = bus
        self._notified_generation = -1
        #: pin view generations to the runtime's accepted-snippet count
        #: (replication mode: leader and followers then agree on what
        #: generation N means)
        self.pin_generations = pin_generations
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: decision log receiving "aligned"/"refined" events from rebuilds;
        #: defaults to the runtime's always-on log
        self.decisions = (
            decisions
            if decisions is not None
            else getattr(runtime, "decisions", None)
        )
        self._built_at_count = -1
        self._built_at_wall: Optional[float] = None
        self._started_at_wall = time.time()
        self._consecutive_failures = 0
        self._last_error: Optional[str] = None
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def refresh(self, force: bool = False) -> ReadView:
        """Rebuild now (if ingestion advanced, or ``force``); returns current."""
        accepted = self.runtime.accepted
        if not force and accepted == self._built_at_count:
            return self.store.current()
        root = self.tracer.start_trace("view.refresh", accepted=accepted)
        # link the ingest traces this rebuild folds in (same degradation
        # idiom as the process-executor boundary: ids, not live spans)
        recent = getattr(self.runtime, "recent_traces", None)
        if recent is not None:
            ids = recent()
            if ids:
                root.set(links=list(ids))
        try:
            with self.tracer.attach(root):
                merged = self.runtime.merged_pivot()
                if self.decisions is not None:
                    merged.refiner.decisions = self.decisions
                result = merged.finish()
                if self.pin_generations:
                    # replication mode: ids must be a function of story
                    # content, or leader and follower ETags diverge
                    mapping = canonicalize_result_ids(result)
                    if self.decisions is not None and mapping:
                        # history by canonical id must reach the events
                        # recorded under the live id it renamed
                        self.decisions.set_aliases(
                            {new: old for old, new in mapping.items()}
                        )
                view = self.store.install(
                    result,
                    corpus=self.corpus,
                    generation=accepted if self.pin_generations else None,
                )
                if self.decisions is not None:
                    self.decisions.note_alignment(result.alignment)
                if (
                    self.bus is not None
                    and view.generation > self._notified_generation
                ):
                    self.bus.note_view(view)
                    self._notified_generation = view.generation
            root.set(generation=view.generation, stories=len(view.stories))
        finally:
            root.end()
        view.trace_id = root.trace_id or None
        self._built_at_count = accepted
        self._built_at_wall = time.time()
        self._consecutive_failures = 0
        self._last_error = None
        return view

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self.refresh()
            except Exception as exc:  # keep serving the last good view
                self._consecutive_failures += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                if self.metrics is not None:
                    self.metrics.counter("view.refresh_errors").inc()
                if self.on_error is not None:
                    self.on_error(exc)
            if self.metrics is not None:
                self.metrics.gauge("view.stale_seconds").set(
                    round(self.staleness(), 3)
                )

    # -- degradation signals ----------------------------------------------

    def staleness(self) -> float:
        """Seconds the served view trails the runtime (0.0 when current).

        The view is stale while ingestion has advanced past the last
        successful build, or while rebuilds are failing; the age is
        measured from that last successful build (or serving start when
        nothing was ever built).
        """
        behind = self.runtime.accepted != self._built_at_count
        if not behind and self._consecutive_failures == 0:
            return 0.0
        reference = self._built_at_wall
        if reference is None:
            reference = self._started_at_wall
        return max(0.0, time.time() - reference)

    def should_shed(self) -> bool:
        """Has the view fallen past the configured lag budget?"""
        return (
            self.lag_budget is not None
            and self.staleness() > self.lag_budget
        )

    def health(self) -> dict:
        """Refresher component health for ``/healthz``."""
        stale = self.staleness()
        if self.should_shed():
            status = "unhealthy"
        elif self._consecutive_failures > 0 or (
            stale > max(3.0 * self.interval, 1.0)
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "stale_seconds": round(stale, 3),
            "built_generation": self.store.generation,
            "consecutive_failures": self._consecutive_failures,
            "last_error": self._last_error,
            "lag_budget": self.lag_budget,
        }

    def start(self) -> "ViewRefresher":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="storypivot-view-refresher",
                daemon=True,
            )
            self._thread.start()
        return self

    def poke(self) -> None:
        """Ask the refresher to check for new data immediately."""
        self._wake.set()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
