"""Generation-keyed LRU response cache with ETag support.

Responses are immutable for a given view generation — the ReadView never
mutates — so the cache key is simply ``(generation, canonical request
key)`` and invalidation is free: a realignment bumps the generation and
every old entry stops being reachable, then ages out of the LRU.

ETags are strong and derived from the response body (plus the
generation), so ``If-None-Match`` revalidation answers 304 from the
cache without re-rendering, and a client that held a tag across a
generation bump transparently gets the fresh body.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple


def make_etag(generation: int, body: bytes) -> str:
    """Strong ETag for ``body`` rendered at ``generation``."""
    digest = hashlib.sha256(body).hexdigest()[:20]
    return f'"g{generation}-{digest}"'


class CachedResponse:
    """One rendered response: body bytes, content type and ETag."""

    __slots__ = ("body", "content_type", "etag", "generation")

    def __init__(
        self, body: bytes, content_type: str, etag: str, generation: int
    ) -> None:
        self.body = body
        self.content_type = content_type
        self.etag = etag
        self.generation = generation


class ResponseCache:
    """Thread-safe LRU over rendered responses, keyed by generation.

    ``max_entries <= 0`` disables caching entirely (every lookup misses
    and puts are dropped) — the bench harness uses that to measure the
    uncached path.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, str], CachedResponse]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, generation: int, key: str) -> Optional[CachedResponse]:
        if self.max_entries <= 0:
            return None
        with self._lock:
            entry = self._entries.get((generation, key))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((generation, key))
            self.hits += 1
            return entry

    def put(
        self,
        generation: int,
        key: str,
        body: bytes,
        content_type: str = "application/json",
    ) -> CachedResponse:
        entry = CachedResponse(
            body, content_type, make_etag(generation, body), generation
        )
        if self.max_entries <= 0:
            return entry
        with self._lock:
            self._entries[(generation, key)] = entry
            self._entries.move_to_end((generation, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def purge_stale(self, current_generation: int) -> int:
        """Drop entries from superseded generations; returns count removed."""
        with self._lock:
            stale = [
                k for k in self._entries if k[0] != current_generation
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
