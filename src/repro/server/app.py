"""The HTTP application: ThreadingHTTPServer over a ViewStore.

Request flow (all stdlib, no locks on the read path):

1. rate limiter — dry bucket answers ``429`` with ``Retry-After``;
2. grab the current :class:`~repro.server.views.ReadView` **once** — the
   whole response renders from that snapshot, and its generation is
   echoed in ``X-StoryPivot-Generation``;
3. response cache keyed ``(generation, path+query)`` — a hit skips
   rendering entirely; ``If-None-Match`` matching the entry's ETag
   short-circuits to ``304``;
4. miss: route through :mod:`repro.server.handlers`, serialize once
   (``sort_keys`` for byte-stable ETags), cache, respond.

Every request is instrumented into a
:class:`~repro.runtime.metrics.MetricsRegistry` (latency histogram,
status counters, cache hit/miss, in-flight gauge) exposed at
``/metricz`` in JSON or, via ``?format=text``, through the same
``render_table`` helper the ``storypivot-serve --stats`` view uses.
Access logs are structured JSON lines.  :meth:`StoryPivotAPI.close`
drains in-flight requests before tearing the listener down.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.obs.decisions import format_event, merge_histories
from repro.obs.fleet import federate_payload
from repro.obs.propagate import extract_context, make_node_id
from repro.obs.slo import render_slo_table
from repro.obs.trace import Tracer
from repro.push.bus import PushError
from repro.push.transport import (
    DEFAULT_HEARTBEAT_SECONDS,
    SSE_HEADERS,
    parse_last_event_id,
    stream,
)
from repro.runtime.metrics import (
    MetricsRegistry,
    prometheus_render,
    render_table,
)

from repro.server.cache import ResponseCache
from repro.server.handlers import ApiError, route
from repro.server.ratelimit import RateLimiter
from repro.server.views import ViewStore

#: content type Prometheus scrapers send in Accept and expect back
PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

JSON_TYPE = "application/json"


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class StoryPivotAPI:
    """The read-path API server.

    ``store`` supplies the current materialized view; ``metrics`` may be
    shared with a live runtime so ``/metricz`` exposes ingestion and
    serving counters side by side.
    """

    def __init__(
        self,
        store: ViewStore,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        cache_entries: int = 512,
        rate_limit: float = 0.0,
        burst: float = 20.0,
        access_log: Optional[IO[str]] = None,
        refresher=None,
        runtime=None,
        tracer=None,
        decisions=None,
        replication=None,
        bus=None,
        node_id=None,
        fleet=None,
        slo=None,
    ) -> None:
        self.store = store
        self.refresher = refresher
        self.runtime = runtime
        #: push EventBus serving /subscribez (None = push disabled)
        self.bus = bus
        #: leader-side ReplicationServer whose shipping health should be
        #: surfaced in /healthz (followers report through runtime instead)
        self.replication = replication
        #: leader-side FleetCollector serving /clusterz (None = 404)
        self.fleet = fleet
        #: SLOEngine serving /sloz and the slo /healthz component
        self.slo = slo
        self.host = host
        self._requested_port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # a real tracer even when nothing is exported: every response then
        # carries an X-Trace-Id clients can quote in bug reports
        self.tracer = tracer if tracer is not None else Tracer(sample_rate=0.0)
        if self.tracer.enabled and self.tracer.metrics is None:
            self.tracer.metrics = self.metrics
        #: fleet identity echoed in X-StoryPivot-Node and the federate
        #: envelope; defaults to the tracer's (the CLI sets both)
        self.node_id = (
            node_id
            or getattr(self.tracer, "node_id", None)
            or make_node_id(getattr(runtime, "role", None) or "node")
        )
        self.decisions = (
            decisions
            if decisions is not None
            else getattr(runtime, "decisions", None)
        )
        self.cache = ResponseCache(cache_entries)
        self.limiter = RateLimiter(rate=rate_limit, burst=burst)
        self._access_log = access_log
        self._log_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._draining = False
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.time()
        # pre-register the serving metrics operators expect in every export
        self.metrics.counter("http.requests")
        self.metrics.histogram("http.latency_seconds")
        self.metrics.counter("http.cache.hits")
        self.metrics.counter("http.cache.misses")
        self.metrics.counter("http.not_modified")
        self.metrics.counter("http.ratelimited")
        self.metrics.counter("http.shed")
        self.metrics.counter("http.warming")
        self.metrics.counter("http.bytes_sent")
        self.metrics.gauge("http.inflight")

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StoryPivotAPI":
        if self._server is not None:
            return self
        api = self

        class Handler(_ApiRequestHandler):
            app = api

        server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        # in-flight draining is handled by close(); handler threads must
        # not block interpreter exit if a keep-alive client lingers
        server.daemon_threads = True
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="storypivot-api",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, drain in-flight, tear down."""
        if self._server is None:
            return
        self._draining = True
        # end push streams first: SSE handler threads count as in-flight
        # requests and only exit once their queues close, so draining the
        # bus (goodbye event + queue close) is what lets the in-flight
        # wait below actually reach zero
        if self.bus is not None:
            self.bus.drain()
        deadline = time.monotonic() + drain_timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.01)
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "StoryPivotAPI":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bookkeeping used by the handler ----------------------------------

    def _enter_request(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self.metrics.gauge("http.inflight").set(self._inflight)

    def _exit_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self.metrics.gauge("http.inflight").set(self._inflight)

    def _record(self, status: int, elapsed: float, sent: int) -> None:
        self.metrics.counter("http.requests").inc()
        self.metrics.counter(f"http.status.{status}").inc()
        self.metrics.histogram("http.latency_seconds").observe(elapsed)
        self.metrics.counter("http.bytes_sent").inc(sent)

    def _log(self, record: dict) -> None:
        if self._access_log is None:
            return
        line = json.dumps(record, sort_keys=True)
        with self._log_lock:
            self._access_log.write(line + "\n")
            self._access_log.flush()

    def _health_payload(self):
        """Compose /healthz from runtime + refresher component health.

        Returns ``(http_status, payload)``: ``ok`` and ``degraded`` both
        answer 200 (degraded still serves, just stale or partial),
        ``unhealthy`` answers 503 so load balancers rotate away.
        """
        view = self.store.current()
        components = {}
        statuses = []
        role = getattr(self.runtime, "role", None)
        if self.runtime is not None:
            component = self.runtime.health()
            # a follower's runtime *is* its replication state (cursor
            # lag, breaker, bootstrap) — name the component accordingly
            key = "replication" if role == "follower" else "runtime"
            components[key] = component
            statuses.append(component["status"])
        if self.replication is not None:
            component = self.replication.health()
            components["replication"] = component
            statuses.append(component["status"])
            role = role or "leader"
        if self.refresher is not None:
            component = self.refresher.health()
            components["view"] = component
            statuses.append(component["status"])
        if self.slo is not None:
            self.slo.observe()
            component = self.slo.health()
            components["slo"] = component
            statuses.append(component["status"])
        if "unhealthy" in statuses:
            status = "unhealthy"
        elif "degraded" in statuses:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "role": role or "leader",
            "node": self.node_id,
            "generation": view.generation,
            "dataset": view.dataset,
            "num_stories": len(view.stories),
            "components": components,
        }
        return (503 if status == "unhealthy" else 200), payload

    def _metricz_payload(self, fmt: str = "json", federate: bool = False) -> bytes:
        self.metrics.gauge("http.cache.entries").set(len(self.cache))
        self.metrics.gauge("http.cache.hit_rate").set(self.cache.hit_rate)
        self.metrics.gauge("view.generation").set(self.store.generation)
        if self.bus is not None:
            # per-subscriber lag/depth/drop gauges, scrape-time fresh
            self.bus.refresh_metrics()
        if federate:
            # the machine view the FleetCollector scrapes: the snapshot
            # wrapped in a self-describing envelope (who, role, when)
            return _json_bytes(federate_payload(
                self.metrics, self.node_id,
                role=getattr(self.runtime, "role", None)
                or ("leader" if self.replication is not None else "serve"),
                generation=self.store.generation,
            ))
        snapshot = self.metrics.snapshot()
        if fmt == "prometheus":
            return prometheus_render(snapshot).encode("utf-8")
        if fmt == "text":
            return (render_table(snapshot) + "\n").encode("utf-8")
        return _json_bytes(snapshot)

    def _tracez_payload(self, limit: int = 20) -> dict:
        """Recent traces + slow leaderboard + per-stage percentiles."""
        payload = {
            "enabled": bool(self.tracer.enabled),
            "sample_rate": getattr(self.tracer, "sample_rate", 0.0),
        }
        span_store = getattr(self.tracer, "store", None)
        if span_store is None:
            payload.update({
                "finalized": 0, "dropped_partial": 0, "recent": [],
                "slow_traces": [], "stages": {}, "events": {},
            })
            return payload
        payload.update(span_store.tracez_payload(
            limit=limit, slow_board=getattr(self.tracer, "slow", None),
        ))
        return payload

    def _storyz_payload(self, story_id: str) -> dict:
        """Decision history for one story — per-source or aligned id.

        An aligned id resolves through the current view to its member
        per-source stories, whose histories are interleaved by sequence
        number; a per-source id replays directly (including events of
        stories it absorbed).
        """
        log = self.decisions
        if log is None:
            raise ApiError(404, "no decision log attached to this server")
        view = self.store.current()
        detail = view.story_details.get(story_id)
        if detail is not None:
            events = merge_histories(
                log.history(member) for member in detail["story_ids"]
            )
        else:
            events = log.history(story_id)
        if not events:
            raise ApiError(404, f"no decision history for story {story_id!r}")
        return {
            "story_id": story_id,
            "aligned": detail is not None,
            "num_events": len(events),
            "events": events,
            "formatted": [format_event(event) for event in events],
        }


class _ApiRequestHandler(BaseHTTPRequestHandler):
    """One request: rate-limit, snapshot the view, serve from cache."""

    app: StoryPivotAPI  # bound by StoryPivotAPI.start()
    protocol_version = "HTTP/1.1"
    server_version = "StoryPivotAPI/1.0"
    # buffer the whole response and disable Nagle: an unbuffered wfile
    # sends headers and body as separate small segments, and the
    # Nagle/delayed-ACK interaction then stalls every response ~40ms
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # the default handler logs to stderr; we emit structured access logs
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # a client that vanishes mid-stream (killed SSE subscriber) breaks
    # the pipe; base-class plumbing then re-touches wfile in
    # handle_one_request's trailing flush and in finish()'s close, and
    # that second failure would escape to socketserver's handle_error
    # traceback printer.  A gone client is normal operation here.
    def handle(self) -> None:
        try:
            super().handle()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def finish(self) -> None:
        try:
            super().finish()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_GET(self) -> None:
        app = self.app
        # a traced caller (another node, an instrumented client) hands
        # us its traceparent: this request then *continues* that trace
        # — the follower-read case where http.request parents into the
        # leader-side trace.  Absent, malformed or foreign headers all
        # fall through to a fresh local root.
        remote = extract_context(self.headers)
        if remote is not None:
            root = app.tracer.start_remote(
                "http.request", remote, path=self.path
            )
        else:
            root = app.tracer.start_trace("http.request", path=self.path)
        self._trace_id = root.trace_id or None
        self._request_id = self.headers.get("X-Request-Id")
        with app.tracer.attach(root):
            try:
                self._handle_get(root)
            finally:
                root.end()

    def _handle_get(self, root) -> None:
        app = self.app
        app._enter_request()
        started = time.perf_counter()
        status, sent, generation, cache_state = 500, 0, -1, "-"
        try:
            if app._draining:
                status, sent = self._send_error_json(
                    503, "server is shutting down", close=True
                )
                return
            allowed, retry_after = app.limiter.allow(
                self.client_address[0] if self.client_address else "?"
            )
            if not allowed:
                app.metrics.counter("http.ratelimited").inc()
                status, sent = self._send_error_json(
                    429, "rate limit exceeded",
                    extra_headers={
                        "Retry-After": str(max(1, int(retry_after + 0.999)))
                    },
                )
                return
            split = urlsplit(self.path)
            params = dict(parse_qsl(split.query))

            if split.path.rstrip("/") == "/metricz":
                fmt = params.get("format", "")
                if not fmt and "version=0.0.4" in self.headers.get(
                    "Accept", ""
                ):
                    fmt = "prometheus"
                federate = params.get("federate", "") not in ("", "0")
                body = app._metricz_payload(fmt or "json", federate=federate)
                content_type = {
                    "prometheus": PROMETHEUS_TYPE,
                    "text": "text/plain",
                }.get("json" if federate else fmt, JSON_TYPE)
                generation = app.store.generation
                status, sent = self._send_body(
                    200, body, content_type, generation, etag=None
                )
                return

            if split.path.rstrip("/") == "/clusterz":
                if app.fleet is None:
                    status, sent = self._send_error_json(
                        404, "fleet federation is not enabled on this "
                             "node (no FleetCollector attached)",
                    )
                    return
                generation = app.store.generation
                fmt = params.get("format", "")
                if not fmt and "version=0.0.4" in self.headers.get(
                    "Accept", ""
                ):
                    fmt = "prometheus"
                if fmt == "prometheus":
                    status, sent = self._send_body(
                        200, app.fleet.prometheus().encode("utf-8"),
                        PROMETHEUS_TYPE, generation, etag=None,
                    )
                    return
                status, sent = self._send_body(
                    200, _json_bytes(app.fleet.clusterz_payload()),
                    JSON_TYPE, generation, etag=None,
                )
                return

            if split.path.rstrip("/") == "/sloz":
                if app.slo is None:
                    status, sent = self._send_error_json(
                        404, "no SLO engine attached to this server",
                    )
                    return
                app.slo.observe()
                generation = app.store.generation
                payload = app.slo.evaluate()
                if params.get("format") == "text":
                    body = (render_slo_table(payload) + "\n").encode("utf-8")
                    status, sent = self._send_body(
                        200, body, "text/plain", generation, etag=None
                    )
                    return
                status, sent = self._send_body(
                    200, _json_bytes(payload), JSON_TYPE, generation,
                    etag=None,
                )
                return

            if split.path.rstrip("/") == "/tracez":
                try:
                    limit = int(params.get("limit", "20"))
                except ValueError:
                    limit = 20
                generation = app.store.generation
                status, sent = self._send_body(
                    200, _json_bytes(app._tracez_payload(limit=limit)),
                    JSON_TYPE, generation, etag=None,
                )
                return

            parts = [p for p in split.path.strip("/").split("/") if p]
            if parts and parts[0] == "storyz":
                # live endpoint: the decision log advances without
                # generation bumps, so it must bypass the response cache
                generation = app.store.generation
                if len(parts) >= 3 and parts[-1] == "history":
                    story_id = "/".join(unquote(p) for p in parts[1:-1])
                    try:
                        payload = app._storyz_payload(story_id)
                    except ApiError as exc:
                        status, sent = self._send_error_json(
                            exc.status, exc.message, generation=generation
                        )
                        return
                    status, sent = self._send_body(
                        200, _json_bytes(payload), JSON_TYPE, generation,
                        etag=None,
                    )
                    return
                status, sent = self._send_error_json(
                    404, "use /storyz/<story_id>/history",
                    generation=generation,
                )
                return

            if split.path.rstrip("/") == "/subscribez":
                if app.bus is None:
                    status, sent = self._send_error_json(
                        404, "push subscriptions are not enabled "
                             "on this server",
                    )
                    return
                generation = app.store.generation
                status, sent = self._serve_subscribe(params, root)
                return

            if split.path.rstrip("/") == "/healthz" and (
                app.refresher is not None or app.runtime is not None
            ):
                # live mode: health changes without generation bumps, so
                # it must bypass the generation-keyed response cache
                http_status, payload = app._health_payload()
                generation = app.store.generation
                status, sent = self._send_body(
                    http_status, _json_bytes(payload), JSON_TYPE,
                    generation, etag=None,
                )
                return

            view = app.store.current()  # the one snapshot read
            generation = view.generation
            tail = split.path.strip("/")
            is_data = tail not in ("", "healthz")
            stale_headers = None
            if app.refresher is not None:
                stale = app.refresher.staleness()
                # a follower's data is additionally stale by however far
                # its replication cursor trails the leader
                lag_seconds = getattr(app.runtime, "lag_seconds", None)
                if callable(lag_seconds):
                    stale += lag_seconds()
                stale_headers = {
                    "X-StoryPivot-Stale-Seconds": f"{stale:.3f}"
                }
            if is_data and view.generation == 0:
                # nothing materialized yet: a clean 503, not a rendering
                # crash against the empty placeholder view
                app.metrics.counter("http.warming").inc()
                status, sent = self._send_error_json(
                    503, "service warming up: no view materialized yet",
                    generation=0, extra_headers={"Retry-After": "1"},
                )
                return
            if (
                is_data
                and app.refresher is not None
                and app.refresher.should_shed()
            ):
                app.metrics.counter("http.shed").inc()
                retry_sec = max(1, int(app.refresher.interval + 0.999))
                status, sent = self._send_error_json(
                    503, "view is past the lag budget; shedding load",
                    generation=generation,
                    extra_headers={"Retry-After": str(retry_sec)},
                )
                return
            cache_key = f"{split.path}?{split.query}"
            entry = app.cache.get(view.generation, cache_key)
            if entry is not None:
                cache_state = "hit"
                app.metrics.counter("http.cache.hits").inc()
            else:
                cache_state = "miss"
                app.metrics.counter("http.cache.misses").inc()
                try:
                    result = route(view, split.path, params)
                except ApiError as exc:
                    status, sent = self._send_error_json(
                        exc.status, exc.message, generation=generation
                    )
                    return
                body = _json_bytes(result.payload)
                if result.status == 200:
                    entry = app.cache.put(
                        view.generation, cache_key, body, JSON_TYPE
                    )
                else:  # non-200 routed responses are not cached
                    status, sent = self._send_body(
                        result.status, body, JSON_TYPE, generation,
                        etag=None, extra_headers=stale_headers,
                    )
                    return

            if_none_match = self.headers.get("If-None-Match", "")
            if entry.etag and entry.etag in if_none_match:
                app.metrics.counter("http.not_modified").inc()
                status, sent = self._send_body(
                    304, b"", entry.content_type, generation,
                    etag=entry.etag, extra_headers=stale_headers,
                )
                return
            status, sent = self._send_body(
                200, entry.body, entry.content_type, generation,
                etag=entry.etag, extra_headers=stale_headers,
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away mid-response
        except Exception as exc:  # never take the worker thread down
            root.record_error(exc)
            try:
                status, sent = self._send_error_json(
                    500, f"internal error: {exc}"
                )
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass
        finally:
            elapsed = time.perf_counter() - started
            root.set(status=status, cache=cache_state)
            app._record(status, elapsed, sent)
            app._log({
                "ts": round(time.time(), 3),
                "client": self.client_address[0] if self.client_address else "?",
                "method": "GET",
                "path": self.path,
                "status": status,
                "bytes": sent,
                "ms": round(elapsed * 1000.0, 3),
                "generation": generation,
                "cache": cache_state,
                "trace_id": self._trace_id,
            })
            app._exit_request()

    # -- push subscriptions -------------------------------------------------

    def _serve_subscribe(self, params: dict, root):
        """``/subscribez``: SSE stream (default) or long-poll batch.

        Admission composes with everything the data path already has:
        the rate limiter ran before we got here, draining answered 503
        at the top, and under lag pressure new subscriptions are shed
        *first* — at half the ``--lag-budget``, before data requests
        shed at the full budget — because a refused subscription is one
        cheap 503 while an admitted one is an open stream competing with
        the refresher for the lifetime of the connection.
        """
        app = self.app
        bus = app.bus
        story = params.get("story") or None
        entity = params.get("entity") or None
        source = params.get("source") or None
        refresher = app.refresher
        if (
            refresher is not None
            and refresher.lag_budget is not None
            and refresher.staleness() > 0.5 * refresher.lag_budget
        ):
            app.metrics.counter("http.shed").inc()
            retry_sec = max(1, int(refresher.interval + 0.999))
            return self._send_error_json(
                503, "view lag approaching budget; "
                     "new subscriptions are shed first",
                generation=app.store.generation,
                extra_headers={"Retry-After": str(retry_sec)},
                close=True,
            )
        mode = params.get("mode", "sse")
        if mode == "poll":
            return self._serve_poll(params, story, entity, source)
        if mode != "sse":
            return self._send_error_json(
                400, f"unknown mode {mode!r}; use mode=sse or mode=poll"
            )
        last_cursor = parse_last_event_id(
            self.headers.get("Last-Event-ID") or params.get("cursor")
        )
        try:
            capacity = (
                max(1, min(int(params["capacity"]), 8192))
                if "capacity" in params else None
            )
            max_events = (
                max(1, int(params["limit"])) if "limit" in params else None
            )
            heartbeat = min(
                60.0,
                max(0.05, float(params.get(
                    "heartbeat", DEFAULT_HEARTBEAT_SECONDS
                ))),
            )
        except ValueError:
            return self._send_error_json(
                400, "capacity, limit and heartbeat must be numeric"
            )
        try:
            sub = bus.subscribe(
                story=story, entity=entity, source=source,
                queue_capacity=capacity,
                policy=params.get("policy") or None,
                last_cursor=last_cursor,
            )
        except PushError as exc:
            if exc.status == 503:
                app.metrics.counter("http.shed").inc()
            return self._send_error_json(
                exc.status, exc.message, close=True
            )
        self.send_response(200)
        for name, value in SSE_HEADERS:
            self.send_header(name, value)
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        self.send_header(
            "X-StoryPivot-Generation", str(app.store.generation)
        )
        self.send_header("X-StoryPivot-Subscription", sub.name)
        self.close_connection = True  # the stream IS the rest of the body
        self.end_headers()
        self.wfile.flush()
        root.set(subscription=sub.name, resumed=sub.resumed)
        try:
            reason = stream(
                sub, self.wfile,
                heartbeat=heartbeat,
                tracer=app.tracer,
                max_events=max_events,
            )
        finally:
            # whether the stream ended cleanly or the client vanished
            # mid-write, the subscription must not outlive the socket
            bus.unsubscribe(sub)
        root.set(end=reason, delivered=sub.read)
        return 200, 0

    def _serve_poll(self, params: dict, story, entity, source):
        """Stateless long-poll leg: one bounded batch per request."""
        app = self.app
        try:
            cursor = int(params.get("cursor", "0"))
            wait = min(30.0, max(0.0, float(params.get("wait", "0"))))
            limit = int(params.get("limit", "100"))
        except ValueError:
            return self._send_error_json(
                400, "cursor, wait and limit must be numeric"
            )
        payload = app.bus.poll(
            cursor, story=story, entity=entity, source=source,
            timeout=wait, limit=limit,
        )
        return self._send_body(
            200, _json_bytes(payload), JSON_TYPE,
            app.store.generation, etag=None,
        )

    def do_HEAD(self) -> None:
        # close the connection: clients must not guess at body framing
        self._send_error_json(405, "only GET is supported", close=True)

    do_POST = do_PUT = do_DELETE = do_PATCH = do_HEAD

    # -- response writing --------------------------------------------------

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        generation: int,
        etag: Optional[str],
        extra_headers: Optional[dict] = None,
        close: bool = False,
    ):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        if self.app.node_id:
            self.send_header("X-StoryPivot-Node", self.app.node_id)
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        if generation >= 0:
            self.send_header("X-StoryPivot-Generation", str(generation))
        if etag:
            self.send_header("ETag", etag)
            self.send_header("Cache-Control", "private, must-revalidate")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        if body and status != 304:
            self.wfile.write(body)
            return status, len(body)
        return status, 0

    def _send_error_json(
        self,
        status: int,
        message: str,
        generation: int = -1,
        extra_headers: Optional[dict] = None,
        close: bool = False,
    ):
        body = _json_bytes({"error": message, "status": status})
        return self._send_body(
            status, body, JSON_TYPE, generation, etag=None,
            extra_headers=extra_headers, close=close,
        )
