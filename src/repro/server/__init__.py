"""repro.server — the read-path HTTP API over materialized views.

Serves the five demo modules plus the query box as JSON endpoints
(``/stories``, ``/stories/{id}``, ``/stories/{id}/snippets``,
``/sources``, ``/sources/{id}/stories``, ``/stats``, ``/query``,
``/healthz``, ``/metricz``) from immutable :class:`ReadView` snapshots
that are rebuilt off the ingestion runtime and swapped atomically —
request handlers never lock against ingestion and every response is
snapshot-consistent.  Layers: generation-keyed response cache with ETag
revalidation, per-client token-bucket rate limiting, structured access
logs and request metrics.  See ``storypivot-api`` for the CLI.
"""

from repro.server.app import StoryPivotAPI
from repro.server.cache import CachedResponse, ResponseCache, make_etag
from repro.server.handlers import (
    ApiError,
    ENDPOINTS,
    RouteResult,
    decode_cursor,
    encode_cursor,
    route,
)
from repro.server.ratelimit import RateLimiter, TokenBucket
from repro.server.views import ReadView, ViewRefresher, ViewStore, empty_view

__all__ = [
    "ApiError",
    "CachedResponse",
    "ENDPOINTS",
    "RateLimiter",
    "ReadView",
    "ResponseCache",
    "RouteResult",
    "StoryPivotAPI",
    "TokenBucket",
    "ViewRefresher",
    "ViewStore",
    "decode_cursor",
    "empty_view",
    "encode_cursor",
    "make_etag",
    "route",
]
