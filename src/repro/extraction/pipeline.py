"""The end-to-end extraction pipeline: Document → Snippet(s).

Mirrors Figure 1(a): documents are split into excerpts, each excerpt is
annotated, and the excerpt text plus its annotations form the snippet
content.  Excerpts that carry no signal (no entities and no keywords) are
dropped; optionally, all excerpts of a document collapse into a single
snippet (one event per article — the granularity GDELT uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import ExtractionError
from repro.extraction.annotate import Annotation, Annotator, Gazetteer
from repro.extraction.excerpts import Excerpt, split_document
from repro.eventdata.corpus import Corpus
from repro.eventdata.models import Document, Snippet


@dataclass
class ExtractionConfig:
    """Pipeline knobs."""

    max_excerpt_chars: int = 600
    max_keywords: int = 6
    one_snippet_per_document: bool = True
    min_signal: int = 1  # minimum #entities + #keywords to keep an excerpt
    keyword_method: str = "tfidf"  # or "textrank" (stateless)


class ExtractionPipeline:
    """Turn documents into information snippets using the annotator."""

    def __init__(
        self,
        gazetteer: Gazetteer,
        config: Optional[ExtractionConfig] = None,
    ) -> None:
        self.config = config if config is not None else ExtractionConfig()
        self.annotator = Annotator(
            gazetteer,
            max_keywords=self.config.max_keywords,
            keyword_method=self.config.keyword_method,
        )

    def extract(self, document: Document) -> List[Snippet]:
        """Extract snippets from one document.

        The snippet timestamp is the document's publication time — with raw
        documents, publication is the best available estimate of occurrence
        (repositories like GDELT refine it later; our simulator's direct
        path carries true occurrence times instead).
        """
        excerpts = split_document(document, self.config.max_excerpt_chars)
        if not excerpts:
            raise ExtractionError(
                f"document {document.document_id!r} produced no excerpts"
            )
        annotated: List[tuple] = []
        for excerpt in excerpts:
            annotation = self.annotator.annotate(excerpt.text)
            signal = len(annotation.entities) + len(annotation.keywords)
            if signal >= self.config.min_signal:
                annotated.append((excerpt, annotation))
        if not annotated:
            return []
        if self.config.one_snippet_per_document:
            return [self._merge_to_snippet(document, annotated)]
        return [
            self._excerpt_to_snippet(document, excerpt, annotation)
            for excerpt, annotation in annotated
        ]

    def extract_corpus(
        self, documents: Iterable[Document], name: str = "extracted"
    ) -> Corpus:
        """Run the pipeline over a document collection into a fresh corpus.

        Sources are synthesized from the documents' source ids.
        """
        from repro.eventdata.models import Source

        corpus = Corpus(name)
        seen_sources = set()
        for document in documents:
            if document.source_id not in seen_sources:
                corpus.add_source(Source(document.source_id, document.source_id))
                seen_sources.add(document.source_id)
            corpus.add_document(document)
            for snippet in self.extract(document):
                corpus.add_snippet(snippet)
        return corpus

    # -- helpers ---------------------------------------------------------

    def _excerpt_to_snippet(
        self, document: Document, excerpt: Excerpt, annotation: Annotation
    ) -> Snippet:
        return Snippet(
            snippet_id=f"{document.document_id}#e{excerpt.index}",
            source_id=document.source_id,
            timestamp=document.published,
            description=" ".join(annotation.keywords[:3]) or excerpt.text[:60],
            entities=frozenset(annotation.entities),
            keywords=annotation.keywords,
            text=excerpt.text,
            document_id=document.document_id,
            url=document.url,
        )

    def _merge_to_snippet(self, document: Document, annotated: List[tuple]) -> Snippet:
        entities: set = set()
        keywords: List[str] = []
        texts: List[str] = []
        for excerpt, annotation in annotated:
            entities.update(annotation.entities)
            for keyword in annotation.keywords:
                if keyword not in keywords:
                    keywords.append(keyword)
            texts.append(excerpt.text)
        keywords = keywords[: self.config.max_keywords * 2]
        return Snippet(
            snippet_id=f"{document.document_id}#all",
            source_id=document.source_id,
            timestamp=document.published,
            description=" ".join(keywords[:3]) or document.title,
            entities=frozenset(entities),
            keywords=tuple(keywords),
            text=" ".join(texts),
            document_id=document.document_id,
            url=document.url,
        )
