"""Split documents into excerpts.

"It first collects textual excerpts from documents ... and breaks their
text down based on paragraphs, title, etc." (Section 2.1).  The title is
always its own excerpt; the body splits on blank-line paragraph boundaries,
and over-long paragraphs split further on sentence boundaries so no excerpt
exceeds ``max_chars``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eventdata.models import Document
from repro.text.tokenize import sentences


@dataclass(frozen=True)
class Excerpt:
    """A contiguous piece of one document."""

    document_id: str
    index: int
    kind: str  # "title" | "paragraph"
    text: str


def _split_long_paragraph(paragraph: str, max_chars: int) -> List[str]:
    """Greedily pack sentences into chunks of at most ``max_chars``."""
    chunks: List[str] = []
    current = ""
    for sentence in sentences(paragraph):
        if not current:
            current = sentence
        elif len(current) + 1 + len(sentence) <= max_chars:
            current = f"{current} {sentence}"
        else:
            chunks.append(current)
            current = sentence
    if current:
        chunks.append(current)
    return chunks or [paragraph]


def split_document(document: Document, max_chars: int = 600) -> List[Excerpt]:
    """Break ``document`` into title + paragraph excerpts.

    >>> from repro.eventdata.models import Document
    >>> doc = Document("d1", "s1", "A title", "Para one.\\n\\nPara two.", 0.0)
    >>> [e.kind for e in split_document(doc)]
    ['title', 'paragraph', 'paragraph']
    """
    if max_chars <= 0:
        raise ValueError("max_chars must be positive")
    excerpts: List[Excerpt] = []
    index = 0
    title = document.title.strip()
    if title:
        excerpts.append(Excerpt(document.document_id, index, "title", title))
        index += 1
    for raw_paragraph in document.body.split("\n\n"):
        paragraph = " ".join(raw_paragraph.split())
        if not paragraph:
            continue
        if len(paragraph) <= max_chars:
            pieces = [paragraph]
        else:
            pieces = _split_long_paragraph(paragraph, max_chars)
        for piece in pieces:
            excerpts.append(Excerpt(document.document_id, index, "paragraph", piece))
            index += 1
    return excerpts
