"""Extraction pipeline: documents → excerpts → annotations → snippets.

The paper treats extraction as a black box: EventRegistry provides
documents, the text is "broken down based on paragraphs, title, etc.", and
Open Calais annotates each excerpt with entities and keywords; the excerpt
text plus its annotations form the snippet content (Section 2.1,
Figure 1(a)).  This package implements that black box.
"""

from repro.extraction.excerpts import Excerpt, split_document
from repro.extraction.annotate import Annotation, Annotator, Gazetteer
from repro.extraction.pipeline import ExtractionPipeline

__all__ = [
    "Excerpt",
    "split_document",
    "Annotation",
    "Annotator",
    "Gazetteer",
    "ExtractionPipeline",
]
