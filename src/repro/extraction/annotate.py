"""Annotation: the OpenCalais stand-in.

Given an excerpt, the annotator produces the same outputs the paper gets
from Open Calais — the entities mentioned and salient keywords.  Entity
recognition is gazetteer-based (longest-match over the known entity
universe, including multi-word names like "Malaysia Airlines"); keyword
extraction ranks stemmed content words by corpus-relative TF-IDF salience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import Token, tokenize
from repro.text.vectorize import TfIdfVectorizer


@dataclass(frozen=True)
class EntityMention:
    """One gazetteer hit inside a text."""

    code: str
    surface: str
    start: int
    end: int


@dataclass
class Annotation:
    """The annotator's output for one excerpt."""

    entities: Tuple[str, ...]
    keywords: Tuple[str, ...]
    mentions: List[EntityMention] = field(default_factory=list)


class Gazetteer:
    """Longest-match multi-word entity recognizer over a code -> name map.

    Matching is case-insensitive on full-token boundaries.  Both the
    display name ("Ukraine") and the code itself ("UKR") are recognized, as
    GDELT-style exports mention actors by code.
    """

    def __init__(self, universe: Dict[str, str]) -> None:
        self._phrase_to_code: Dict[Tuple[str, ...], str] = {}
        self._max_len = 1
        for code, name in universe.items():
            name_tokens = tuple(t.lower for t in tokenize(name))
            if name_tokens:
                self._phrase_to_code[name_tokens] = code
                self._max_len = max(self._max_len, len(name_tokens))
            self._phrase_to_code[(code.lower(),)] = code

    def find(self, text: str) -> List[EntityMention]:
        """All non-overlapping entity mentions, longest match first."""
        tokens = tokenize(text)
        mentions: List[EntityMention] = []
        i = 0
        while i < len(tokens):
            matched = False
            for length in range(min(self._max_len, len(tokens) - i), 0, -1):
                phrase = tuple(t.lower for t in tokens[i : i + length])
                code = self._phrase_to_code.get(phrase)
                if code is not None:
                    start = tokens[i].start
                    end = tokens[i + length - 1].end
                    mentions.append(
                        EntityMention(code, text[start:end], start, end)
                    )
                    i += length
                    matched = True
                    break
            if not matched:
                i += 1
        return mentions


class Annotator:
    """OpenCalais-like annotator: entities + keywords for an excerpt.

    Keyword salience adapts as excerpts stream through (the TF-IDF corpus
    statistics are incremental), so early annotations are coarser than late
    ones — just like a service whose language model was trained on prior
    traffic.
    """

    def __init__(
        self,
        gazetteer: Gazetteer,
        max_keywords: int = 6,
        vectorizer: Optional[TfIdfVectorizer] = None,
        keyword_method: str = "tfidf",
    ) -> None:
        if max_keywords <= 0:
            raise ValueError("max_keywords must be positive")
        if keyword_method not in ("tfidf", "textrank"):
            raise ValueError(
                f"keyword_method must be 'tfidf' or 'textrank', "
                f"got {keyword_method!r}"
            )
        self.gazetteer = gazetteer
        self.max_keywords = max_keywords
        self.keyword_method = keyword_method
        self._vectorizer = vectorizer if vectorizer is not None else TfIdfVectorizer()

    def annotate(self, text: str) -> Annotation:
        """Annotate one excerpt with entities and ranked keywords."""
        mentions = self.gazetteer.find(text)
        entities = tuple(sorted({m.code for m in mentions}))

        # Mask entity surfaces so names don't dominate the keyword list.
        masked = list(text)
        for mention in mentions:
            for i in range(mention.start, mention.end):
                masked[i] = " "
        masked_text = "".join(masked)

        if self.keyword_method == "textrank":
            from repro.text.textrank import textrank_keywords

            keywords = tuple(
                word for word, _ in textrank_keywords(
                    masked_text, max_keywords=self.max_keywords
                )
            )
        else:
            self._vectorizer.observe(masked_text)
            vector = self._vectorizer.vector(masked_text, normalize=False)
            vocabulary = self._vectorizer.bag.vocabulary
            ranked = sorted(
                vector.items(), key=lambda kv: (-kv[1], vocabulary.term(kv[0]))
            )
            keywords = tuple(
                vocabulary.term(term_id)
                for term_id, _ in ranked[: self.max_keywords]
            )
        return Annotation(entities=entities, keywords=keywords, mentions=mentions)

    def keyword_stems(self, words: Sequence[str]) -> Set[str]:
        """Stem ``words`` minus stopwords (helper for matching/evaluation)."""
        return {
            stem(w.lower())
            for w in words
            if w.lower() not in STOPWORDS
        }
